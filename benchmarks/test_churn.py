"""Churn-maintenance performance acceptance: refresh beats re-mine.

The tentpole promise of incremental maintenance (``docs/serving.md``):
migrating a frequency skeleton across a small dataset delta (<= 5%
churn) is at least **3x faster** than cold-mining the mutated dataset —
because the delta pass touches only the delta's transactions and the
levelwise completion probes only candidates the base skeleton never
counted.  Correctness (bit-identity with the cold build) is proven in
the fast lane (``tests/test_delta_differential.py``); this file prices
it at benchmark scale.
"""

import random
import time

from repro.datagen.workloads import quickstart_workload
from repro.serve import build_skeleton, refresh_skeleton

REPEATS = 3
REFRESH_SPEEDUP_FLOOR = 3.0
N_TRANSACTIONS = 3000
CHURN = 100  # appended + deleted transactions: ~5% of the base


def _min_wall(fn, repeats=REPEATS):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_refresh_at_most_5pct_churn_at_least_3x_faster_than_cold():
    workload = quickstart_workload(n_transactions=N_TRANSACTIONS)
    db = workload.db
    domain = workload.domains["S"]
    min_count = db.min_count(0.02)
    skeleton = build_skeleton(db, domain, min_count)

    rng = random.Random(42)
    universe = sorted(db.item_universe())
    lengths = [len(t) for t in db.transactions if t]
    appended = [
        tuple(sorted(rng.sample(universe,
                                min(rng.choice(lengths), len(universe)))))
        for _ in range(CHURN // 2)
    ]
    db2, delta_a = db.append(appended)
    db3, delta_b = db2.delete(rng.sample(range(len(db2)), CHURN // 2))
    assert delta_a.churn_fraction + delta_b.churn_fraction <= 0.05

    def refresh():
        mid, _ = refresh_skeleton(skeleton, db2, delta_a)
        final, _ = refresh_skeleton(mid, db3, delta_b)
        return final

    refreshed = refresh()
    cold = build_skeleton(db3, domain, refreshed.min_count)
    assert refreshed.supports == cold.supports
    assert refreshed.border == cold.border

    refresh_wall = _min_wall(refresh)
    cold_wall = _min_wall(
        lambda: build_skeleton(db3, domain, refreshed.min_count)
    )
    speedup = cold_wall / refresh_wall
    print(f"\nchurn maintenance: cold re-mine {cold_wall:.4f}s, "
          f"two-delta refresh {refresh_wall:.4f}s -> {speedup:.1f}x")
    assert speedup >= REFRESH_SPEEDUP_FLOOR, (
        f"refresh only {speedup:.2f}x faster than cold "
        f"(refresh {refresh_wall:.4f}s vs cold {cold_wall:.4f}s)"
    )
