"""Perf-trend record and regression gate.

This benchmark measures the repo's headline serving and kernel figures
— warm-hit latency quantiles (from the serving telemetry histograms,
not a side stopwatch), replay throughput, the bitmap counting-kernel
speedup, and the churn-refresh speedup — and commits them as a
``BENCH_10.json`` trend record at the repo root
(:mod:`repro.bench.trend`).  PR 10 adds the multi-tenant query
server's load figure: a 10k-query, 8-client-thread HTTP replay of
interleaved tenant refinement sessions against an in-process
:mod:`repro.serve.server`, with end-to-end p50/p99/throughput — and
hard assertions that the concurrency machinery actually engaged
(single-flight dedup hits > 0, a coalesced batch wider than 1).

The gate then compares the fresh record against the newest prior
``BENCH_*.json``: any shared metric that moves the wrong way by more
than 20% fails the run.  Metrics new to this record (the ``server_*``
line) have no prior — they pass through and become the baseline the
*next* benchmark PR is judged against.
"""

import random
import statistics
import time
from itertools import combinations
from pathlib import Path

from repro.bench.trend import TrendRecord, gate
from repro.datagen.workloads import fig8a_workload, quickstart_workload
from repro.mining.backends import BitmapBackend, HybridBackend
from repro.serve import (
    QueryServer,
    QueryService,
    build_skeleton,
    refresh_skeleton,
    start_server,
)
from repro.serve.replay import replay, session_requests, summarize

REPO_ROOT = Path(__file__).resolve().parent.parent
TREND_PATH = REPO_ROOT / "BENCH_10.json"
TREND_LABEL = "PR10-concurrent-server"

REPLAY_QUERIES = 10_000
REPLAY_TRANSACTIONS = 600
KERNEL_TRANSACTIONS = 6_000
KERNEL_REPS = 3
CHURN_TRANSACTIONS = 3_000
CHURN = 100
CHURN_REPEATS = 3
SERVER_QUERIES = 10_000
SERVER_THREADS = 8


def _warm_replay_metrics():
    """Warm-hit p50/p99 and qps on a 10k-query replay, read from the
    service's own telemetry — the trend gates the instrumented figures
    users actually see in ``repro stats``, not a parallel stopwatch."""
    workload = quickstart_workload(n_transactions=REPLAY_TRANSACTIONS)
    cfq = workload.cfq()
    service = QueryService()
    cold = service.execute(workload.db, cfq)
    assert cold.cache_info["source"] == "cold"

    start = time.perf_counter()
    for __ in range(REPLAY_QUERIES):
        warm = service.execute(workload.db, cfq)
    wall = time.perf_counter() - start
    assert warm.cache_info["source"] == "result-cache"

    latency = service.telemetry.outcome_latencies()["warm-memory"]
    assert latency["count"] == REPLAY_QUERIES
    return {
        "warm_hit_p50_seconds": latency["p50"],
        "warm_hit_p99_seconds": latency["p99"],
        "replay_qps": REPLAY_QUERIES / wall,
    }


def _bitmap_count_speedup():
    """Median counting-only speedup of the bitmap kernel over the serial
    hybrid on one warm, counting-bound level-2 batch (the
    ``test_backend_ablation`` guard at trend scale)."""
    workload = fig8a_workload(
        50.0, n_transactions=KERNEL_TRANSACTIONS, n_items=600
    )
    transactions = workload.db.transactions
    min_count = workload.db.min_count(0.010)
    universe = sorted({item for t in transactions for item in t})
    hybrid = HybridBackend()
    singles = hybrid.count(transactions, [(i,) for i in universe], 1)
    frequent = [item for (item,), s in singles.items() if s >= min_count]
    candidates = list(combinations(frequent, 2))

    medians = {}
    reference = None
    for name, backend in (("hybrid", hybrid), ("bitmap", BitmapBackend())):
        backend.count(transactions, candidates, 2)  # warm-up / matrix pack
        timings = []
        for __ in range(KERNEL_REPS):
            start = time.perf_counter()
            support = backend.count(transactions, candidates, 2)
            timings.append(time.perf_counter() - start)
        if reference is None:
            reference = support
        else:
            assert support == reference
        medians[name] = statistics.median(timings)
    return medians["hybrid"] / medians["bitmap"]


def _churn_refresh_speedup():
    """Two-delta skeleton refresh vs cold re-mine (the ``test_churn``
    acceptance measurement, shared scale)."""
    workload = quickstart_workload(n_transactions=CHURN_TRANSACTIONS)
    db = workload.db
    domain = workload.domains["S"]
    skeleton = build_skeleton(db, domain, db.min_count(0.02))

    rng = random.Random(42)
    universe = sorted(db.item_universe())
    lengths = [len(t) for t in db.transactions if t]
    appended = [
        tuple(sorted(rng.sample(universe,
                                min(rng.choice(lengths), len(universe)))))
        for _ in range(CHURN // 2)
    ]
    db2, delta_a = db.append(appended)
    db3, delta_b = db2.delete(rng.sample(range(len(db2)), CHURN // 2))

    def refresh():
        mid, __ = refresh_skeleton(skeleton, db2, delta_a)
        final, __ = refresh_skeleton(mid, db3, delta_b)
        return final

    refreshed = refresh()

    def min_wall(fn):
        best = float("inf")
        for __ in range(CHURN_REPEATS):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    refresh_wall = min_wall(refresh)
    cold_wall = min_wall(
        lambda: build_skeleton(db3, domain, refreshed.min_count)
    )
    return cold_wall / refresh_wall


def _server_replay_metrics():
    """End-to-end load figure for the multi-tenant query server: 10k
    requests over 8 persistent client connections, interleaved tenant
    refinement sessions (``min_step=1`` — step 0's megabyte answers
    measure payload shuffling, not serving).  The report must show the
    sharing machinery engaged, not just that the server survived."""
    workload = quickstart_workload(n_transactions=REPLAY_TRANSACTIONS)
    core = QueryServer(
        QueryService(telemetry=True), workload.db, workload.domains
    )
    requests = session_requests(
        workload, SERVER_QUERIES, steps=4, min_step=1
    )
    with start_server(core, port=0, workers=SERVER_THREADS) as handle:
        start = time.perf_counter()
        outcomes = replay(handle.url, requests, threads=SERVER_THREADS)
        report = summarize(outcomes, time.perf_counter() - start)

    assert report.n_ok == SERVER_QUERIES, report.as_dict()
    assert report.dedup_responses > 0, "single-flight never deduped"
    assert report.coalesce_max_width > 1, "no batch ever coalesced"
    return report


def test_trend_record_and_gate():
    record = TrendRecord(label=TREND_LABEL)
    record.meta["replay_queries"] = REPLAY_QUERIES
    record.meta["replay_transactions"] = REPLAY_TRANSACTIONS

    replay = _warm_replay_metrics()
    record.add("warm_hit_p50_seconds", replay["warm_hit_p50_seconds"],
               unit="s", direction="lower")
    record.add("warm_hit_p99_seconds", replay["warm_hit_p99_seconds"],
               unit="s", direction="lower")
    record.add("replay_qps", replay["replay_qps"],
               unit="1/s", direction="higher")
    # The kernel speedup is a ratio of an interpreter-bound loop to a
    # memory-bandwidth-bound kernel; across container placements the
    # same commit has measured anywhere from ~5.4x to ~9.1x, so the
    # metric declares a wide noise band (a *real* kernel regression
    # shows up as the ratio collapsing toward 1, far past this).
    record.add("bitmap_count_speedup", _bitmap_count_speedup(),
               direction="higher", noise=0.5)
    record.add("churn_refresh_speedup", _churn_refresh_speedup(),
               direction="higher")

    server = _server_replay_metrics()
    record.meta["server_queries"] = SERVER_QUERIES
    record.meta["server_threads"] = SERVER_THREADS
    record.meta["server_replay"] = server.as_dict()
    record.add("server_p50_seconds", server.p50, unit="s",
               direction="lower")
    record.add("server_p99_seconds", server.p99, unit="s",
               direction="lower")
    record.add("server_qps", server.qps, unit="1/s", direction="higher")

    record.write(str(TREND_PATH))
    print(f"\ntrend record written to {TREND_PATH}:")
    for name, metric in sorted(record.metrics.items()):
        unit = f" {metric.unit}" if metric.unit else ""
        print(f"  {name} = {metric.value:g}{unit} ({metric.direction} "
              "is better)")

    regressions, prior_path = gate(str(TREND_PATH))
    if prior_path is None:
        print("no prior BENCH_*.json — first record, gate soft-passes")
        return
    assert not regressions, "\n".join(
        [f"regressed vs {prior_path}:"]
        + [f"  {r.describe()}" for r in regressions]
    )
    print(f"gate vs {prior_path}: all shared metrics within 20%")
