"""Theorem 4 / Corollary 2: ccc-optimality of the optimizer's strategy,
and the FM / Apriori+ contrast of Section 6.2.
"""

from repro.bench.experiments import ExperimentResult
from repro.constraints.parser import parse_constraint
from repro.core.ccc import audit_ccc
from repro.core.optimizer import CFQOptimizer
from repro.core.query import CFQ
from repro.datagen.workloads import quickstart_workload
from repro.db.domain import Domain
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.mining.cap import cap_mine
from repro.mining.fm import full_materialization

import numpy as np


def _audit_quickstart():
    workload = quickstart_workload(n_transactions=400)
    cfq = workload.cfq()
    return audit_ccc(workload.db, cfq)


def test_optimizer_is_ccc_optimal_for_quasi_succinct(benchmark, record):
    result, report = benchmark.pedantic(_audit_quickstart, rounds=1, iterations=1)
    assert report.ccc_optimal, report.describe()
    assert report.condition2
    record(
        ExperimentResult(
            experiment="ccc audit: optimizer on quasi-succinct query",
            headers=["cond1_valid_only", "cond1_complete", "cond2", "ccc_optimal"],
            rows=[[report.condition1_mgf, report.condition1_complete,
                   report.condition2, report.ccc_optimal]],
            paper="Corollary 2: ccc-optimal for 1-var succinct + 2-var "
            "quasi-succinct constraints",
        )
    )


def test_fm_counts_few_but_checks_exponentially(benchmark, record):
    """Section 6.2: FM satisfies condition (1) while violating (2)."""
    rng = np.random.RandomState(5)
    n = 10
    catalog_prices = {i: int(rng.randint(1, 100)) for i in range(n)}
    from repro.db.catalog import ItemCatalog

    domain = Domain.items(ItemCatalog({"Price": catalog_prices}))
    transactions = [
        tuple(sorted(rng.choice(n, size=rng.randint(2, 6), replace=False)))
        for __ in range(60)
    ]
    db = TransactionDatabase(transactions)
    constraint = parse_constraint("max(S.Price) <= 70")

    fm_counters = OpCounters()
    fm = benchmark.pedantic(
        full_materialization,
        args=("S", domain, db.transactions, 5, [constraint]),
        kwargs={"counters": fm_counters},
        rounds=1,
        iterations=1,
    )
    cap_counters = OpCounters()
    cap = cap_mine("S", domain, db.transactions, 5, [constraint],
                   counters=cap_counters)
    assert fm.all_sets() == cap.all_sets()
    # FM checks exponentially many sets; CAP checks only singletons.
    assert fm_counters.total_checks >= 2 ** n - 1
    assert cap_counters.constraint_checks_larger == 0
    assert cap_counters.constraint_checks_singleton <= n
    record(
        ExperimentResult(
            experiment="Section 6.2: FM vs CAP constraint-check counts "
            "(same answers)",
            headers=["strategy", "constraint_checks", "sets_counted"],
            rows=[
                ["FM", fm_counters.total_checks, fm_counters.total_counted],
                ["CAP", cap_counters.total_checks, cap_counters.total_counted],
            ],
            paper="FM performs 2^N constraint checks in the worst case; "
            "ccc condition (2) caps checks at N",
        )
    )
