"""Overhead of the observability layer's disabled (no-op) path.

The tracer's contract (see ``docs/observability.md``) is that an
instrumented build with tracing *off* stays within 3% of an
uninstrumented one.  Two measurements back that up on the
backend-ablation workload:

1. **Analytic bound** — a disabled call site costs one
   ``NULL_TRACER.span()`` method call; measure that cost directly,
   multiply by a 10x-padded count of the call sites one mining run
   executes, and compare against the run's wall time.  Spans are opened
   per *level*, never per candidate, so the product is orders of
   magnitude below 3%.
2. **Empirical sanity** — min-of-repeats wall time with the default
   (disabled) tracer must not exceed a fully *enabled* tracer run by
   more than measurement noise, and the enabled run itself bounds the
   worst case.
"""

import time

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import fig8a_workload
from repro.obs.trace import NULL_TRACER, Tracer

REPEATS = 5
OVERHEAD_BUDGET = 0.03
CALL_SITE_PADDING = 10


def _workload():
    workload = fig8a_workload(50.0, n_items=200, n_transactions=800)
    return workload, workload.cfq()


def _min_wall(fn, repeats=REPEATS):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_noop_tracer_overhead_under_3_percent():
    workload, cfq = _workload()

    def run_disabled():
        CFQOptimizer(cfq).execute(workload.db)

    run_disabled()  # warm-up
    baseline = _min_wall(run_disabled)

    # Count the instrumented call sites one run executes: every span an
    # enabled run records, plus its events, is one disabled-path call.
    tracer = Tracer()
    CFQOptimizer(cfq).execute(workload.db, tracer=tracer)
    spans = list(tracer.walk())
    call_sites = len(spans) + sum(len(s.events) for s in spans)

    # Cost of one disabled call site (span open + close + one set()).
    n = 200_000
    start = time.perf_counter()
    for __ in range(n):
        with NULL_TRACER.span("x", a=1) as span:
            span.set(b=2)
    per_call = (time.perf_counter() - start) / n

    disabled_overhead = per_call * call_sites * CALL_SITE_PADDING
    assert disabled_overhead < OVERHEAD_BUDGET * baseline, (
        f"disabled-path cost {disabled_overhead * 1e6:.1f}us "
        f"({call_sites} call sites x{CALL_SITE_PADDING} padding) exceeds "
        f"{OVERHEAD_BUDGET:.0%} of the {baseline * 1e3:.1f}ms baseline"
    )


def test_disabled_not_slower_than_enabled():
    """Sanity: the disabled path must never cost more than full tracing
    (generous 15% noise allowance — these are sub-second runs)."""
    workload, cfq = _workload()

    def run(tracer):
        CFQOptimizer(cfq).execute(workload.db, tracer=tracer)

    run(None)  # warm-up
    disabled = _min_wall(lambda: run(None))
    enabled = _min_wall(lambda: run(Tracer()))
    assert disabled <= enabled * 1.15, (
        f"disabled tracing ({disabled:.3f}s) slower than enabled "
        f"({enabled:.3f}s)"
    )
