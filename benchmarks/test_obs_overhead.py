"""Overhead of the observability and guardrail layers' disabled paths.

The tracer's contract (see ``docs/observability.md``) is that an
instrumented build with tracing *off* stays within 3% of an
uninstrumented one; the run guard (see ``docs/run-lifecycle.md``) makes
the same promise for a run with no :class:`RunGuard`.  Two measurement
styles back each up on the backend-ablation workload:

1. **Analytic bound** — a disabled call site costs one
   ``NULL_TRACER.span()`` method call (tracer) or one ``is not None``
   branch / ``NULL_GUARD`` no-op call (guard); measure those costs
   directly, multiply by a 10x-padded count of the call sites one
   mining run executes, and compare against the run's wall time.
   Spans and guard checks are per *level* or per *transaction*, never
   per candidate probe, so the products are orders of magnitude below
   3%.
2. **Empirical sanity** — min-of-repeats wall time with the feature
   disabled must not exceed a fully *enabled* run by more than
   measurement noise, and the enabled run itself bounds the worst case.
"""

import time

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import fig8a_workload
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.guard import NULL_GUARD, RunGuard

REPEATS = 5
OVERHEAD_BUDGET = 0.03
CALL_SITE_PADDING = 10


def _workload():
    workload = fig8a_workload(50.0, n_items=200, n_transactions=800)
    return workload, workload.cfq()


def _min_wall(fn, repeats=REPEATS):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_noop_tracer_overhead_under_3_percent():
    workload, cfq = _workload()

    def run_disabled():
        CFQOptimizer(cfq).execute(workload.db)

    run_disabled()  # warm-up
    baseline = _min_wall(run_disabled)

    # Count the instrumented call sites one run executes: every span an
    # enabled run records, plus its events, is one disabled-path call.
    tracer = Tracer()
    CFQOptimizer(cfq).execute(workload.db, tracer=tracer)
    spans = list(tracer.walk())
    call_sites = len(spans) + sum(len(s.events) for s in spans)

    # Cost of one disabled call site (span open + close + one set()).
    n = 200_000
    start = time.perf_counter()
    for __ in range(n):
        with NULL_TRACER.span("x", a=1) as span:
            span.set(b=2)
    per_call = (time.perf_counter() - start) / n

    disabled_overhead = per_call * call_sites * CALL_SITE_PADDING
    assert disabled_overhead < OVERHEAD_BUDGET * baseline, (
        f"disabled-path cost {disabled_overhead * 1e6:.1f}us "
        f"({call_sites} call sites x{CALL_SITE_PADDING} padding) exceeds "
        f"{OVERHEAD_BUDGET:.0%} of the {baseline * 1e3:.1f}ms baseline"
    )


def test_disabled_not_slower_than_enabled():
    """Sanity: the disabled path must never cost more than full tracing
    (generous 15% noise allowance — these are sub-second runs)."""
    workload, cfq = _workload()

    def run(tracer):
        CFQOptimizer(cfq).execute(workload.db, tracer=tracer)

    run(None)  # warm-up
    disabled = _min_wall(lambda: run(None))
    enabled = _min_wall(lambda: run(Tracer()))
    assert disabled <= enabled * 1.15, (
        f"disabled tracing ({disabled:.3f}s) slower than enabled "
        f"({enabled:.3f}s)"
    )


def test_no_guard_overhead_under_3_percent():
    """Analytic bound for the guard-disabled hot path.

    With no guard, the counting kernels pay one ``tick is not None``
    branch per transaction visit, and the lattice/engine layers pay one
    ``NULL_GUARD`` no-op method call per level-ish event.  Both costs
    are measured directly and multiplied by 10x-padded counts of how
    often one run executes them.
    """
    workload, cfq = _workload()

    def run_disabled():
        return CFQOptimizer(cfq).execute(workload.db)

    run_disabled()  # warm-up
    baseline = _min_wall(run_disabled)
    result = run_disabled()

    # Hot-path sites: one branch per transaction per counting scan.
    transaction_visits = result.counters.scans * len(workload.db)
    # Level-ish sites: every full check a live guard would perform
    # (level boundaries, candidate batches, in-loop strides).
    guard = RunGuard(deadline_seconds=3600.0)
    CFQOptimizer(cfq).execute(workload.db, guard=guard)
    level_calls = guard.telemetry()["consumed"]["checks"]

    # Marginal cost of the instrumentation: time the loop with and
    # without the instrumented statements and subtract, so the loop
    # scaffolding itself (which exists either way) doesn't count.
    n = 1_000_000
    start = time.perf_counter()
    for __ in range(n):
        pass
    empty_loop = time.perf_counter() - start

    tick = None
    sink = 0
    start = time.perf_counter()
    for __ in range(n):
        if tick is not None:
            sink += 1
    per_branch = max(0.0, (time.perf_counter() - start) - empty_loop) / n

    # Cost of one NULL_GUARD no-op call site (three calls per iteration).
    n = 200_000
    start = time.perf_counter()
    for __ in range(n):
        pass
    empty_loop = time.perf_counter() - start
    start = time.perf_counter()
    for __ in range(n):
        NULL_GUARD.check("x")
        NULL_GUARD.tick(1)
        NULL_GUARD.level_completed("S", 1)
    per_null_site = max(0.0, (time.perf_counter() - start) - empty_loop) / n

    disabled_overhead = CALL_SITE_PADDING * (
        per_branch * transaction_visits + per_null_site * level_calls
    )
    assert disabled_overhead < OVERHEAD_BUDGET * baseline, (
        f"guard-disabled cost {disabled_overhead * 1e6:.1f}us "
        f"({transaction_visits} transaction visits, {level_calls} "
        f"level calls, x{CALL_SITE_PADDING} padding) exceeds "
        f"{OVERHEAD_BUDGET:.0%} of the {baseline * 1e3:.1f}ms baseline"
    )


def test_no_guard_not_slower_than_armed_guard():
    """Sanity: running without a guard must never cost more than running
    with a live (never-tripping) one."""
    workload, cfq = _workload()

    def run(guard):
        CFQOptimizer(cfq).execute(workload.db, guard=guard)

    run(None)  # warm-up
    disabled = _min_wall(lambda: run(None))
    armed = _min_wall(
        lambda: run(RunGuard(deadline_seconds=3600.0,
                             max_memory_mb=1024 * 1024))
    )
    assert disabled <= armed * 1.15, (
        f"guard-free run ({disabled:.3f}s) slower than armed guard "
        f"({armed:.3f}s)"
    )
