"""Shared fixtures for the benchmark suite.

Every benchmark prints its reproduced table (next to the paper's
reference numbers) and appends it to ``benchmarks/results.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves a reviewable artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

import pytest

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def experiment_log():
    entries: List[str] = []
    yield entries
    if entries:
        RESULTS_PATH.write_text("\n\n".join(entries) + "\n")


@pytest.fixture
def record(experiment_log):
    """Print an ExperimentResult and persist it to results.txt."""

    def _record(result) -> None:
        text = result.render()
        experiment_log.append(text)
        print("\n" + text)

    return _record
