"""Figure 1: the characterization of 2-var constraints.

The classifier's anti-monotonicity and quasi-succinctness verdicts are
verified *empirically*: anti-monotone rows admit no Definition-4
counterexample on any scenario, non-anti-monotone rows admit one on some
scenario, and quasi-succinct rows reduce to sound 1-var conditions whose
tightness holds wherever a singleton witness argument applies (see
DESIGN.md on the tightness caveat for subset/equality rows).
"""

import pytest

from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.classify import classify_twovar
from repro.core.empirical import (
    pairwise_anti_monotone_counterexample,
    reduction_soundness_tightness,
)
from repro.datagen.tiny import tiny_scenario

# (constraint, anti-monotone?, quasi-succinct?) — Figure 1 verbatim.
# Rows involving sum/avg owe their "not anti-monotone" verdict to
# possibly-negative domains (Section 3 places no sign restriction), so
# their counterexample search includes negative attribute values.
FIGURE_1_ROWS = [
    ("disjoint(S.A, T.B)", True, True),
    ("overlaps(S.A, T.B)", False, True),
    ("S.A subset T.B", False, True),
    ("S.A not subset T.B", False, True),
    ("S.A = T.B", False, True),
    ("max(S.A) <= min(T.B)", True, True),
    ("min(S.A) <= min(T.B)", False, True),
    ("max(S.A) <= max(T.B)", False, True),
    ("min(S.A) <= max(T.B)", False, True),
    ("sum(S.A) <= max(T.B)", False, False),
    ("sum(S.A) <= sum(T.B)", False, False),
    ("avg(S.A) <= avg(T.B)", False, False),
]

# (seed, value_range) scenario grid: mixed magnitudes, skewed sides, tiny
# value vocabularies and negative values, so both AM proofs and AM
# refutations get a fair shot.  Figure 1's anti-monotone column is w.r.t.
# BOTH variables, so both sides are searched for counterexamples.
SCENARIOS = [
    (0, (0, 9)),
    (1, (0, 9)),
    (2, (0, 4)),
    (3, (2, 12)),
    (4, (-5, 9)),
    (5, (0, 2)),
    (6, (0, 1)),
    (7, (-3, 14)),
]


def _verify_figure1():
    mismatches = []
    for text, expect_am, expect_qs in FIGURE_1_ROWS:
        view = TwoVarView.of(parse_constraint(text))
        props = classify_twovar(view)
        if props.anti_monotone != expect_am or props.quasi_succinct != expect_qs:
            mismatches.append(f"{text}: classifier disagrees with Figure 1")
            continue
        found_counterexample = False
        for seed, value_range in SCENARIOS:
            scenario = tiny_scenario(seed, n_s=5, n_t=5, value_range=value_range)
            witness = pairwise_anti_monotone_counterexample(view, scenario.domains)
            if expect_am and witness is not None:
                mismatches.append(
                    f"{text}: unexpected AM counterexample {witness}"
                )
                break
            found_counterexample = found_counterexample or witness is not None
            if expect_qs:
                sound, __, __, __ = reduction_soundness_tightness(
                    view, "S", scenario.domains, list(scenario.frequent["T"])
                )
                if not sound:
                    mismatches.append(f"{text}: reduction not sound on seed {seed}")
                    break
        if not expect_am and not found_counterexample:
            mismatches.append(f"{text}: expected an AM counterexample, found none")
    return mismatches


def test_figure1_characterization(benchmark, record):
    mismatches = benchmark.pedantic(_verify_figure1, rounds=1, iterations=1)
    assert mismatches == [], mismatches

    from repro.bench.experiments import ExperimentResult

    rows = [
        [text, "yes" if am else "no", "yes" if qs else "no", "verified"]
        for text, am, qs in FIGURE_1_ROWS
    ]
    record(
        ExperimentResult(
            experiment="Figure 1: 2-var characterization "
            "(empirically verified over random scenarios)",
            headers=["constraint", "anti-monotone", "quasi-succinct", "status"],
            rows=rows,
            paper="Figure 1 table, reproduced row for row",
        )
    )
