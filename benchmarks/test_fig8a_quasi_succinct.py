"""Figure 8(a) + the Section 7.1 level table.

Single 2-var quasi-succinct constraint ``max(S.Price) <= min(T.Price)``;
speedup over Apriori+ as a function of the price-range overlap.  Paper:
~4x at 16.6% overlap falling monotonically to >1.5x at 83.4%.
"""

from repro.bench.experiments import (
    FIG8A_OVERLAPS,
    fig8a_level_table,
    fig8a_speedups,
)


def test_fig8a_speedup_curve(benchmark, record):
    result = benchmark.pedantic(
        fig8a_speedups, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    from repro.bench.report import render_series

    print()
    print(
        render_series(
            "Figure 8(a) speedup curve",
            result.column("overlap_pct"),
            [result.column("speedup")],
            ["quasi-succinct"],
        )
    )
    speedups = result.column("speedup")
    assert len(speedups) == len(FIG8A_OVERLAPS)
    # The optimized strategy always wins.
    assert all(s > 1.0 for s in speedups)
    # Selectivity shape: less overlap => more pruning => larger speedup.
    assert speedups == sorted(speedups, reverse=True)
    # Order-of-magnitude agreement with the paper's endpoints.
    assert speedups[0] >= 2.5
    assert speedups[-1] >= 1.2


def test_fig8a_level_table(benchmark, record):
    result = benchmark.pedantic(
        fig8a_level_table, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    # Each entry is "valid/total": valid never exceeds total, and the
    # constrained computation terminates no later than Apriori+ does.
    for row in result.rows:
        for cell in row[1:]:
            if not cell:
                continue
            valid, total = (int(x) for x in cell.split("/"))
            assert valid <= total
