"""Section 7.1's range table.

At 50% overlap, narrowing the S.Price range makes the 2-var constraint
more selective and the speedup larger.  Paper: [300,1000] -> 1.52x,
[400,1000] -> 1.84x, [500,1000] -> 2.07x.
"""

from repro.bench.experiments import fig8a_range_table


def test_fig8a_range_table(benchmark, record):
    result = benchmark.pedantic(
        fig8a_range_table, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    speedups = result.column("speedup")
    assert all(s > 1.0 for s in speedups)
    # Narrower S range (later rows) => more selective => larger speedup.
    assert speedups == sorted(speedups)
