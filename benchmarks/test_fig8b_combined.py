"""Figure 8(b): 2-var constraint on top of 1-var constraints.

Three strategies: Apriori+ (y=1), CAP with only the 1-var price
constraints (flat in Type overlap), and the optimizer additionally
exploiting quasi-succinctness of ``S.Type = T.Type`` (large, decreasing
with overlap).  Paper: 1-var only ~1.5x flat; combined ~20x at 20%
overlap, ~6x at 40%.
"""

from repro.bench.experiments import FIG8B_OVERLAPS, fig8b_speedups


def test_fig8b_three_strategies(benchmark, record):
    result = benchmark.pedantic(
        fig8b_speedups, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    from repro.bench.report import render_series

    print()
    print(
        render_series(
            "Figure 8(b) speedup curves",
            result.column("overlap_pct"),
            [result.column("speedup_1var_only"),
             result.column("speedup_1var_2var")],
            ["1-var only", "1-var + 2-var"],
        )
    )
    cap_only = result.column("speedup_1var_only")
    combined = result.column("speedup_1var_2var")
    assert len(combined) == len(FIG8B_OVERLAPS)
    # The 2-var optimization strictly helps at every overlap.
    for one_var, both in zip(cap_only, combined):
        assert both > one_var
    # The 1-var-only curve does not depend on Type overlap (within noise).
    assert max(cap_only) / min(cap_only) < 2.0
    # The combined curve decreases with overlap and dominates strongly at
    # low overlap, as in the paper.
    assert combined == sorted(combined, reverse=True)
    assert combined[0] / cap_only[0] >= 2.0
