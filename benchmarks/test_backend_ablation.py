"""Counting-backend ablation: hybrid vs hash tree vs vertical TID-lists
vs transaction-sharded parallel counting.

Not a paper experiment per se — the paper's C code used the hash tree of
[2] — but the backend abstraction lets the reproduction show that the
*relative* speedups of Section 7 are counting-backend-independent, and
the parallel row measures the wall-clock win of sharding the dominant
counting cost across worker processes.
"""

import os

from repro.bench.experiments import backend_table

PARALLEL_WORKERS = 4


def test_backend_ablation(benchmark, record):
    result = benchmark.pedantic(
        backend_table,
        kwargs={"scale": "full", "parallel_workers": PARALLEL_WORKERS},
        rounds=1,
        iterations=1,
    )
    record(result)
    assert len(result.rows) == 4
    probes = result.column("probe_count")
    assert all(p > 0 for p in probes)
    answers = result.column("frequent_valid_sets")
    assert len(set(answers)) == 1  # identical answers across backends
    backends = result.column("backend")
    assert f"parallel[{PARALLEL_WORKERS}]" in backends
    # The parallel backend's probe metering must equal the serial hybrid's
    # exactly — sharding changes wall time, never the measured work.
    by_name = dict(zip(backends, probes))
    assert by_name[f"parallel[{PARALLEL_WORKERS}]"] == by_name["hybrid"]
    speedups = dict(zip(backends, result.column("speedup_vs_hybrid")))
    parallel_speedup = speedups[f"parallel[{PARALLEL_WORKERS}]"]
    assert parallel_speedup > 0
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        # Only meaningful with real cores to shard across; single-CPU CI
        # boxes still record the (sub-unit) figure above.
        assert parallel_speedup > 1.3
