"""Counting-backend ablation: hybrid vs hash tree vs vertical TID-lists
vs the vectorized bitmap kernel vs transaction-sharded parallel counting
(hybrid and bitmap shard kernels).

Not a paper experiment per se — the paper's C code used the hash tree of
[2] — but the backend abstraction lets the reproduction show that the
*relative* speedups of Section 7 are counting-backend-independent, the
parallel rows measure the wall-clock effect of sharding the dominant
counting cost across worker processes, and the bitmap rows measure the
vectorized kernel.  ``count_speedup`` (counting-only wall time, measured
through a transparent proxy around every ``backend.count`` call) is the
honest kernel comparison — whole-run wall time is bounded below by the
non-counting pipeline, which no kernel can touch.

``test_bitmap_kernel_speedup`` is the tentpole guard: on a
counting-bound Figure 8(a) batch (12k transactions, the full frequent
level-2 candidate set, warm matrix) the bitmap kernel must count at
least 5x faster than the serial hybrid — while returning bit-identical
supports, asserted in the same breath.
"""

import os
import statistics
from itertools import combinations
from time import perf_counter

from repro.bench.experiments import ExperimentResult, backend_table
from repro.datagen.workloads import fig8a_workload
from repro.mining.backends import BitmapBackend, HybridBackend

PARALLEL_WORKERS = 4

#: The kernel guard's scale.  At 4k transactions the per-batch protocol
#: costs (index build, result-dict fill) still eat into the kernel win;
#: by 12k the batch is counting-bound and the measured advantage holds a
#: comfortable margin over the 5x floor.
KERNEL_GUARD_TRANSACTIONS = 12_000
KERNEL_GUARD_REPS = 5
KERNEL_MIN_SPEEDUP = 5.0


def test_backend_ablation(benchmark, record):
    result = benchmark.pedantic(
        backend_table,
        kwargs={"scale": "full", "parallel_workers": PARALLEL_WORKERS},
        rounds=1,
        iterations=1,
    )
    record(result)
    assert len(result.rows) == 6
    probes = result.column("probe_count")
    assert all(p > 0 for p in probes)
    answers = result.column("frequent_valid_sets")
    assert len(set(answers)) == 1  # identical answers across backends
    backends = result.column("backend")
    assert f"parallel[{PARALLEL_WORKERS}]" in backends
    assert "bitmap" in backends
    assert f"parallel[{PARALLEL_WORKERS}]+bitmap" in backends
    # Sharding changes wall time, never the measured work: each parallel
    # row's probe metering must equal its serial kernel's exactly (the
    # bitmap meter is additive over transaction partitions by design).
    by_name = dict(zip(backends, probes))
    assert by_name[f"parallel[{PARALLEL_WORKERS}]"] == by_name["hybrid"]
    assert by_name[f"parallel[{PARALLEL_WORKERS}]+bitmap"] == by_name["bitmap"]
    count_seconds = result.column("count_seconds")
    assert all(s > 0 for s in count_seconds)
    speedups = dict(zip(backends, result.column("speedup_vs_hybrid")))
    parallel_speedup = speedups[f"parallel[{PARALLEL_WORKERS}]"]
    assert parallel_speedup > 0
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        # Only meaningful with real cores to shard across; single-CPU CI
        # boxes still record the (sub-unit) figure above.
        assert parallel_speedup > 1.3


def _kernel_speedup_table():
    """Median counting-only time of hybrid vs bitmap on one warm,
    counting-bound level-2 batch of the Figure 8(a) workload."""
    workload = fig8a_workload(
        50.0, n_transactions=KERNEL_GUARD_TRANSACTIONS, n_items=600
    )
    db = workload.db
    transactions = db.transactions
    min_count = db.min_count(0.010)
    universe = sorted({item for t in transactions for item in t})
    hybrid = HybridBackend()
    singles = hybrid.count(transactions, [(i,) for i in universe], 1)
    frequent = [item for (item,), s in singles.items() if s >= min_count]
    candidates = list(combinations(frequent, 2))
    assert len(candidates) >= 1000, "guard batch must be counting-bound"

    bitmap = BitmapBackend()
    reference = None
    rows = []
    medians = {}
    for name, backend in (("hybrid", hybrid), ("bitmap", bitmap)):
        # One untimed warm-up rep per kernel: the bitmap side pays its
        # one-time matrix pack and bit-expansion caches there, the
        # hybrid side warms the interpreter — the timed reps then
        # measure steady-state counting only.
        backend.count(transactions, candidates, 2)
        timings = []
        support = None
        for __ in range(KERNEL_GUARD_REPS):
            start = perf_counter()
            support = backend.count(transactions, candidates, 2)
            timings.append(perf_counter() - start)
        if reference is None:
            reference = support
        else:
            assert support == reference  # bit-identical while faster
        medians[name] = statistics.median(timings)
        rows.append([name, round(medians[name], 4)])
    for row in rows:
        row.append(round(medians["hybrid"] / medians[row[0]], 2))
    return ExperimentResult(
        experiment=(
            "Bitmap kernel speedup guard (Figure 8(a), 50% overlap, "
            f"N={KERNEL_GUARD_TRANSACTIONS}, {len(candidates)} level-2 "
            f"candidates, median of {KERNEL_GUARD_REPS})"
        ),
        headers=["kernel", "median_count_seconds", "speedup_vs_hybrid"],
        rows=rows,
        notes=[
            "warm kernels: one untimed warm-up rep per backend pays the "
            "bitmap's one-time matrix pack (cached by content digest)",
            "supports asserted bit-identical between the kernels",
        ],
    )


def test_bitmap_kernel_speedup(benchmark, record):
    result = benchmark.pedantic(
        _kernel_speedup_table, rounds=1, iterations=1
    )
    record(result)
    speedups = dict(
        zip(result.column("kernel"), result.column("speedup_vs_hybrid"))
    )
    assert speedups["bitmap"] >= KERNEL_MIN_SPEEDUP, speedups
