"""Counting-backend ablation: hybrid vs hash tree vs vertical TID-lists.

Not a paper experiment per se — the paper's C code used the hash tree of
[2] — but the backend abstraction lets the reproduction show that the
*relative* speedups of Section 7 are counting-backend-independent.
"""

from repro.bench.experiments import backend_table


def test_backend_ablation(benchmark, record):
    result = benchmark.pedantic(
        backend_table, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 3
    probes = result.column("probe_count")
    assert all(p > 0 for p in probes)
    answers = result.column("frequent_valid_sets")
    assert len(set(answers)) == 1  # identical answers across backends
