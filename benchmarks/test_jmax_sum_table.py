"""Section 7.3: optimizing ``sum(S.Price) <= sum(T.Price)`` with Jmax.

S prices are Normal(1000, 100); the mean T price sweeps 400..1000.  The
lower the T prices, the more selective the constraint and the larger the
speedup of iterative ``V^k`` pruning over Apriori+.  Paper: 3.14x / 1.91x
/ 1.36x / 1.11x for means 400 / 600 / 800 / 1000.
"""

from repro.bench.experiments import JMAX_MEANS, jmax_table


def test_jmax_speedup_table(benchmark, record):
    result = benchmark.pedantic(
        jmax_table, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    speedups = result.column("speedup")
    bounds = result.column("final_bound")
    assert len(speedups) == len(JMAX_MEANS)
    assert all(s >= 1.0 for s in speedups)
    # More selective (lower T mean) => larger speedup; monotone
    # non-increasing across the sweep.
    assert all(a >= b for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] > speedups[-1]
    # The final bound scales with the T price mean.
    assert all(a < b for a, b in zip(bounds, bounds[1:]))
    # Jmax prunes the S lattice: optimizer counts strictly fewer S-sets.
    counted = result.column("s_sets_counted")
    base = result.column("s_sets_base")
    assert all(c < b for c, b in zip(counted, base))
