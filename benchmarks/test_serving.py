"""Serving-layer performance acceptance: warm speedup and disabled cost.

Two promises back the serving layer (``docs/serving.md``):

1. **Warm speedup** — answering a repeated query from the fingerprinted
   result cache is at least 5x faster than mining it cold (in practice
   orders of magnitude: a warm hit is a JSON parse plus plan rebuild).
2. **Disabled overhead** — a run that does not opt into serving pays at
   most 3% over the pre-serving engine.  The integration added exactly
   two kinds of call sites to the uncached path: the optimizer's
   ``cacheable`` gate (one ``cache is not None`` conjunction per run)
   and the engine's ``support_oracle is not None`` branch (one per
   (variable, level) counting pass).  Both are measured directly,
   multiplied by 10x-padded per-run counts, and compared against the
   cold run's wall time — mirroring the observability-overhead
   methodology next door.
"""

import time

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.serve import QueryService

REPEATS = 5
OVERHEAD_BUDGET = 0.03
WARM_SPEEDUP_FLOOR = 5.0
CALL_SITE_PADDING = 10


def _workload():
    workload = quickstart_workload(n_transactions=1500)
    return workload, workload.cfq()


def _min_wall(fn, repeats=REPEATS):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_repeated_query_warm_speedup_at_least_5x():
    workload, cfq = _workload()
    service = QueryService()

    start = time.perf_counter()
    cold = service.execute(workload.db, cfq)
    cold_wall = time.perf_counter() - start
    assert cold.cache_info["source"] == "cold"

    def warm_run():
        warm = service.execute(workload.db, cfq)
        assert warm.cache_info["source"] == "result-cache"

    warm_wall = _min_wall(warm_run)
    speedup = cold_wall / warm_wall
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm serving only {speedup:.1f}x faster than cold "
        f"({warm_wall * 1e3:.1f}ms vs {cold_wall * 1e3:.1f}ms)"
    )


def test_batch_session_beats_per_step_cold_mining():
    """The shared-scan batch (skeleton build included) must beat mining
    every refinement step cold — the headline serving-workload claim.

    The skeleton is mined *unconstrained* at the weakest threshold, so
    a very short session can lose to constraint-pruned cold runs; the
    shared scan amortizes from a handful of steps on (an 8-step session
    wins by ~1.4x at this scale, and the margin grows with both session
    length and database size)."""
    from repro.datagen.workloads import refinement_queries

    workload, __ = _workload()
    session = refinement_queries(workload, steps=8)

    start = time.perf_counter()
    for cfq in session:
        CFQOptimizer(cfq).execute(workload.db)
    cold_total = time.perf_counter() - start

    service = QueryService()
    start = time.perf_counter()
    report = service.execute_batch(workload.db, session)
    batch_total = time.perf_counter() - start

    assert all(item.source == "skeleton" for item in report.items)
    assert batch_total < cold_total, (
        f"batch ({batch_total:.3f}s incl. skeleton build "
        f"{report.skeleton_build_seconds:.3f}s) not faster than "
        f"per-step cold mining ({cold_total:.3f}s)"
    )


def test_disabled_serving_overhead_under_3_percent():
    """Analytic bound on what the serving integration costs a run that
    never opts in (no ``cache``, no ``support_oracle``)."""
    workload, cfq = _workload()

    def run_disabled():
        return CFQOptimizer(cfq).execute(workload.db)

    run_disabled()  # warm-up
    baseline = _min_wall(run_disabled)
    result = run_disabled()

    # Call sites per run: the cacheable gate fires once; the oracle
    # branch fires once per (var, level) counting pass.
    counting_passes = len(result.counters.support_counted)
    call_sites = 1 + counting_passes

    # Cost of one such site: an `x is not None` test plus a short-circuit
    # conjunction, measured on the real shapes.
    cache = None
    oracle = None
    n = 1_000_000
    start = time.perf_counter()
    for __ in range(n):
        if cache is not None and oracle is None:  # pragma: no cover
            raise AssertionError
        if oracle is not None:  # pragma: no cover
            raise AssertionError
    per_site = (time.perf_counter() - start) / n

    overhead = per_site * call_sites * CALL_SITE_PADDING
    assert overhead < OVERHEAD_BUDGET * baseline, (
        f"disabled serving cost {overhead * 1e6:.2f}us "
        f"({call_sites} sites x{CALL_SITE_PADDING} padding) exceeds "
        f"{OVERHEAD_BUDGET:.0%} of the {baseline * 1e3:.1f}ms baseline"
    )


def test_disabled_not_slower_than_cache_enabled_cold_run():
    """Empirical sanity: an uncached run must not exceed a cache-enabled
    cold run (which does strictly more: fingerprint, serialize, store) by
    more than measurement noise (generous 15% for sub-second runs)."""
    workload, cfq = _workload()

    def run_disabled():
        CFQOptimizer(cfq).execute(workload.db)

    def run_enabled_cold():
        service = QueryService()  # fresh service: always a cold miss
        service.execute(workload.db, cfq)

    run_disabled()  # warm-up
    disabled = _min_wall(run_disabled)
    enabled = _min_wall(run_enabled_cold)
    assert disabled <= enabled * 1.15, (
        f"uncached run ({disabled:.3f}s) slower than cache-enabled cold "
        f"run ({enabled:.3f}s)"
    )
