"""Ablations over the design choices DESIGN.md calls out:

* quasi-succinct reduction on/off (Figure 8(a) workload);
* iterative Jmax pruning on/off (Section 7.3 workload);
* dovetailed shared scans vs sequential lattices (scan counts).
"""

from repro.bench.experiments import ablation_table


def test_ablations(benchmark, record):
    result = benchmark.pedantic(
        ablation_table, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    rows = {row[1]: (row[2], row[3]) for row in result.rows}
    on, off = rows["quasi-succinct reduction"]
    assert on > off
    on, off = rows["iterative Jmax pruning"]
    assert on > off
    dovetail_scans, sequential_scans = rows["dovetailed shared scans"]
    assert dovetail_scans < sequential_scans
    fixpoint, one_round = rows["iterated reduction (extension)"]
    assert fixpoint >= one_round
