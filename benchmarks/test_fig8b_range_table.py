"""Section 7.2's range table.

Widening the 1-var ranges reduces both strategies' speedups, but hits
CAP (1-var only) harder, so the ratio between the combined and 1-var-only
speedups widens.  Paper: ratios 4.17 / 4.0 / 1.875 from widest to
narrowest ranges.
"""

from repro.bench.experiments import fig8b_range_table


def test_fig8b_range_table(benchmark, record):
    result = benchmark.pedantic(
        fig8b_range_table, kwargs={"scale": "full"}, rounds=1, iterations=1
    )
    record(result)
    one_var = result.column("speedup_1var")
    combined = result.column("speedup_1and2var")
    ratios = result.column("ratio")
    # Rows go widest -> narrowest: 1-var speedup grows as its constraints
    # get more selective.
    assert one_var == sorted(one_var)
    # The 2-var optimization helps at every range setting.
    assert all(r > 1.0 for r in ratios)
    assert all(c > o for c, o in zip(combined, one_var))
