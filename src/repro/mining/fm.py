"""The full-materialization (FM) strategy of Section 6.2.

FM is the paper's counterexample showing that minimizing support counting
alone does not make a strategy good: it first *checks every subset of the
universe* against the constraints (2^N constraint checks), then counts
support only for the valid ones, in ascending cardinality.  FM therefore
satisfies condition (1) of ccc-optimality while grossly violating
condition (2) — which is exactly what the ccc audit demonstrates on it.

Only meant for tiny universes; the implementation refuses N > 22.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.ast import Constraint
from repro.constraints.evaluate import evaluate_all
from repro.db.domain import Domain
from repro.db.stats import OpCounters
from repro.errors import ExecutionError
from repro.mining.counting import count_candidates, frequent_only
from repro.mining.itemsets import Itemset, all_nonempty_subsets
from repro.mining.lattice import LatticeResult


def full_materialization(
    var: str,
    domain: Domain,
    transactions: Sequence[Tuple[int, ...]],
    min_count: int,
    constraints: Sequence[Constraint] = (),
    counters: Optional[OpCounters] = None,
) -> LatticeResult:
    """Run the FM strategy for one variable (1-var constraints only).

    Returns the same frequent valid sets CAP would, with wildly different
    operation counts — the point of the exercise.
    """
    if len(domain.elements) > 22:
        raise ExecutionError(
            f"FM enumerates 2^N subsets; N={len(domain.elements)} is too large"
        )
    counters = counters if counters is not None else OpCounters()
    domains = {var: domain}

    valid_by_level: Dict[int, List[Itemset]] = {}
    for subset in all_nonempty_subsets(domain.elements):
        counters.record_check(len(subset))
        if evaluate_all(constraints, {var: subset}, domains):
            valid_by_level.setdefault(len(subset), []).append(subset)

    frequent: Dict[int, Dict[Itemset, int]] = {}
    level1_supports: Dict[int, int] = {}
    counted: Dict[int, int] = {}
    known_infrequent: Set[Itemset] = set()
    for k in sorted(valid_by_level):
        # Frequency is anti-monotone regardless of constraints, so FM may
        # still skip candidates with a known-infrequent subset.
        candidates = [
            c for c in valid_by_level[k]
            if k == 1
            or not any(sub in known_infrequent for sub in combinations(c, k - 1))
        ]
        if not candidates:
            break
        counters.record_scan(len(transactions))
        support = count_candidates(transactions, candidates, k, counters, var)
        counted[k] = len(candidates)
        freq = frequent_only(support, min_count)
        frequent[k] = freq
        if k == 1:
            level1_supports = {c[0]: n for c, n in freq.items()}
        known_infrequent.update(c for c, n in support.items() if n < min_count)

    return LatticeResult(
        var=var,
        frequent=frequent,
        level1_supports=level1_supports,
        counted_per_level=counted,
    )
