"""Vectorized bitmap support counting (vertical uint64 layout).

The pure-Python kernels bound every backend at interpreter speed: the
ablation showed ``parallel[4]`` *losing* to the serial hybrid because
sharding only multiplies a slow per-transaction loop.  This module packs
the vertical layout into machine words so support counting becomes a
handful of numpy array ops:

* the dataset becomes an ``(items + 1) x ceil(N / 64)`` uint64 matrix —
  row ``r`` holds item ``r``'s transaction-membership bits, one bit per
  TID, little-endian within each word; row ``0`` is reserved all-zero so
  items absent from the matrix resolve to support 0;
* a candidate's support is the popcount of the AND of its items' rows;
* a whole uniform candidate batch is counted by one of two vectorized
  kernels: a chunked gather + ``bitwise_and`` + ``bitwise_count`` pass
  over preallocated work buffers (any ``k``), or — for dense level-2
  batches — a single BLAS Gram matrix over the referenced rows' bit
  expansions (``popcount(a & b)`` is the dot product of the rows' 0/1
  vectors; see :func:`_try_pairs_gemm` for the exactness argument).

Matrices are built once per transaction-list *content* and cached by
digest (the same scheme as
:class:`~repro.mining.backends.VerticalBackend`'s TID-list cache), so
the per-level cost is only the matrix ops.

Metering semantics (answer-meaningful, shard-additive)
------------------------------------------------------
Counting work is metered on ``counters.subset_tests`` in **bit-probe
units**: counting one candidate of size ``k`` over ``N`` transactions
examines each of the ``k`` item rows' ``N`` membership bits exactly once
(the word-wise AND + popcount pass), i.e. ``k * N`` elementary probes —
the bitmap analogue of the hybrid kernel's containment probes.  The
figure is a deterministic function of the candidate list and ``N``
alone; it never depends on cache state (matrix builds are one-time
layout costs, excluded just as ``VerticalBackend`` excludes TID-list
builds) or on the data distribution.

Because the per-candidate term is linear in ``N``, the metering is
**exactly additive over any partition of the transaction list**:
``k * N_1 + ... + k * N_w == k * N``.  This is what lets
:class:`~repro.mining.backends.ParallelBackend` shard the bitmap kernel
over TID ranges with merged counters bit-identical to a serial bitmap
run — unlike the vertical TID-list kernel, whose intersection metering
depends on per-shard TID-list *sizes* and does not sum to the serial
figure (see :mod:`repro.mining.vertical`).  The candidate-set ledger
(``record_counted``) follows the same rules as every other backend.

The numpy path is the production kernel; a pure-Python big-int fallback
(one arbitrary-precision mask per item, ``int.bit_count`` popcounts)
implements the identical contract for environments without numpy and
serves as an in-tree cross-check for the property suite.
"""

from __future__ import annotations

import time
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.stats import BitmapStats, OpCounters
from repro.errors import ExecutionError
from repro.itemsets import Itemset

try:  # gated: the kernel degrades to the big-int path without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

HAVE_NUMPY = _np is not None

try:  # optional: halves the Gram-kernel flops when scipy is present
    from scipy.linalg.blas import ssyrk as _ssyrk
except ImportError:  # pragma: no cover - depends on environment
    _ssyrk = None

#: ``int.bit_count`` landed in 3.10; the project floor is 3.9.
_INT_POPCOUNT = (
    int.bit_count if hasattr(int, "bit_count")
    else (lambda value: bin(value).count("1"))
)


def popcount_words(words):
    """Per-element popcount of a uint64 array.

    Uses ``numpy.bitwise_count`` when available (numpy >= 2.0); older
    numpys fall back to a byte-view lookup table — same results, a few
    times slower, still fully vectorized.
    """
    if hasattr(_np, "bitwise_count"):
        return _np.bitwise_count(words)
    table = _popcount_table()
    return table[words.view(_np.uint8)].reshape(*words.shape, 8).sum(axis=-1)


_POPCOUNT_TABLE = None


def _popcount_table():
    global _POPCOUNT_TABLE
    if _POPCOUNT_TABLE is None:
        _POPCOUNT_TABLE = _np.array(
            [_INT_POPCOUNT(v) for v in range(256)], dtype=_np.uint16
        )
    return _POPCOUNT_TABLE


class BitmapMatrix:
    """Per-item transaction bitmaps for one transaction list.

    ``kind`` is ``"numpy"`` (uint64 matrix + item->row index, row 0
    all-zero) or ``"int"`` (one Python big-int mask per item).  Both
    representations cover exactly ``n_transactions`` bits; tail bits of
    the last word are zero by construction (bits are only ever set for
    TIDs below ``n_transactions``), so popcounts never see phantom
    transactions — the ragged-tail property the kernel suite checks.
    """

    __slots__ = ("kind", "n_transactions", "n_words", "item_index",
                 "matrix", "masks", "row_lookup", "bits_f32",
                 "n_physical", "tid_phys")

    def __init__(self, kind, n_transactions, n_words,
                 item_index=None, matrix=None, masks=None):
        self.kind = kind
        self.n_transactions = n_transactions
        self.n_words = n_words
        self.item_index = item_index
        self.matrix = matrix
        self.masks = masks
        #: lazy item-id -> row translation array (False once found unusable)
        self.row_lookup = None
        #: lazy float32 bit expansion of ``matrix`` for the Gram kernel
        self.bits_f32 = None
        #: physical bit positions in use (>= n_transactions once deltas
        #: have punched holes; fresh builds are dense)
        self.n_physical = n_transactions
        #: logical TID -> physical bit position (``None`` = identity).
        #: Set by :func:`update_bitmap`, whose deletions zero a column
        #: without compacting — later deltas must know where each
        #: surviving logical transaction's bit lives.
        self.tid_phys = None


def build_bitmap(
    transactions: Sequence[Tuple[int, ...]],
    use_numpy: Optional[bool] = None,
) -> BitmapMatrix:
    """Pack ``transactions`` into a :class:`BitmapMatrix`.

    ``use_numpy`` forces a representation (the property suite
    cross-checks the two); the default picks numpy when available.
    """
    if use_numpy is None:
        use_numpy = HAVE_NUMPY
    if use_numpy and not HAVE_NUMPY:
        raise ExecutionError(
            "numpy is not available; bitmap counting falls back to the "
            "big-int kernel (use_numpy=False)"
        )
    n = len(transactions)
    n_words = (n + 63) >> 6
    if not use_numpy:
        masks: Dict[int, int] = {}
        for tid, transaction in enumerate(transactions):
            bit = 1 << tid
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
        return BitmapMatrix("int", n, n_words, masks=masks)
    items = sorted({i for t in transactions for i in t})
    item_index = {item: row for row, item in enumerate(items, start=1)}
    matrix = _np.zeros((len(items) + 1, n_words), dtype=_np.uint64)
    rows: List[int] = []
    tids: List[int] = []
    for tid, transaction in enumerate(transactions):
        for item in transaction:
            rows.append(item_index[item])
            tids.append(tid)
    if rows:
        row_vec = _np.asarray(rows, dtype=_np.intp)
        tid_vec = _np.asarray(tids, dtype=_np.uint64)
        word_vec = (tid_vec >> _np.uint64(6)).astype(_np.intp)
        bit_vec = _np.uint64(1) << (tid_vec & _np.uint64(63))
        _np.bitwise_or.at(matrix, (row_vec, word_vec), bit_vec)
    return BitmapMatrix("numpy", n, n_words, item_index=item_index,
                        matrix=matrix)


def update_bitmap(
    bitmap: BitmapMatrix,
    added: Sequence[Tuple[int, ...]],
    removed_tids: Sequence[int] = (),
) -> BitmapMatrix:
    """Derive the bitmap of ``base + added - removed`` without repacking.

    Copy-on-write: the input matrix (possibly still cached under the old
    content digest) is never mutated.  Deletions **zero the TID's bit
    column without compacting** — a zeroed bit contributes nothing to any
    row-AND popcount, so supports come out exactly as a fresh build of
    the mutated list would produce them — and appends claim fresh
    physical bit positions past ``n_physical``.  The logical-to-physical
    TID map (:attr:`BitmapMatrix.tid_phys`) keeps chained deltas sound:
    ``n_transactions`` stays the *logical* count, so probe metering
    (``probes * n_transactions``) remains bit-identical to cold counting.

    ``removed_tids`` are logical TIDs of the *base* list, matching
    :class:`~repro.db.delta.DatasetDelta` semantics.
    """
    n_old = bitmap.n_transactions
    removed = sorted(set(removed_tids))
    for tid in removed:
        if not 0 <= tid < n_old:
            raise ExecutionError(
                f"update_bitmap: TID {tid} out of range for bitmap of "
                f"{n_old} transactions"
            )
    added = [tuple(t) for t in added]
    phys = bitmap.tid_phys  # None = identity
    removed_phys = [tid if phys is None else phys[tid] for tid in removed]
    drop = set(removed)
    if phys is None:
        survivors_phys = [t for t in range(n_old) if t not in drop]
    else:
        survivors_phys = [phys[t] for t in range(n_old) if t not in drop]
    n_physical = bitmap.n_physical + len(added)
    new_tid_phys = survivors_phys + list(
        range(bitmap.n_physical, n_physical)
    )
    n_words = (n_physical + 63) >> 6

    if bitmap.kind == "int":
        masks = dict(bitmap.masks)
        if removed_phys:
            clear = 0
            for p in removed_phys:
                clear |= 1 << p
            keep = ~clear
            masks = {item: mask & keep for item, mask in masks.items()}
        for offset, transaction in enumerate(added):
            bit = 1 << (bitmap.n_physical + offset)
            for item in transaction:
                masks[item] = masks.get(item, 0) | bit
        out = BitmapMatrix("int", len(new_tid_phys), n_words, masks=masks)
    else:
        item_index = dict(bitmap.item_index)
        new_items = sorted(
            {i for t in added for i in t} - item_index.keys()
        )
        n_rows_old = bitmap.matrix.shape[0]
        matrix = _np.zeros(
            (n_rows_old + len(new_items), n_words), dtype=_np.uint64
        )
        matrix[:n_rows_old, :bitmap.n_words] = bitmap.matrix
        for row, item in enumerate(new_items, start=n_rows_old):
            item_index[item] = row
        if removed_phys:
            pos = _np.asarray(removed_phys, dtype=_np.uint64)
            clear = _np.zeros(n_words, dtype=_np.uint64)
            _np.bitwise_or.at(
                clear,
                (pos >> _np.uint64(6)).astype(_np.intp),
                _np.uint64(1) << (pos & _np.uint64(63)),
            )
            # Row 0 (the reserved all-zero row) is unaffected by &= ~clear.
            matrix &= ~clear
        rows: List[int] = []
        positions: List[int] = []
        for offset, transaction in enumerate(added):
            p = bitmap.n_physical + offset
            for item in transaction:
                rows.append(item_index[item])
                positions.append(p)
        if rows:
            row_vec = _np.asarray(rows, dtype=_np.intp)
            pos_vec = _np.asarray(positions, dtype=_np.uint64)
            word_vec = (pos_vec >> _np.uint64(6)).astype(_np.intp)
            bit_vec = _np.uint64(1) << (pos_vec & _np.uint64(63))
            _np.bitwise_or.at(matrix, (row_vec, word_vec), bit_vec)
        out = BitmapMatrix(
            "numpy", len(new_tid_phys), n_words,
            item_index=item_index, matrix=matrix,
        )
    out.n_physical = n_physical
    if removed or phys is not None:
        out.tid_phys = new_tid_phys
    return out


def bitmap_probe_cost(
    candidates: Sequence[Itemset], n_transactions: int
) -> int:
    """The metered bit-probe cost of one bitmap counting pass.

    ``sum(len(c)) * N``: every item row of every candidate contributes
    its ``N`` membership bits once.  Linear in ``N``, hence exactly
    additive over any transaction partition (the sharding invariant).
    """
    return sum(len(candidate) for candidate in candidates) * n_transactions


def count_with_bitmap(
    bitmap: BitmapMatrix,
    candidates: Sequence[Itemset],
    counters: Optional[OpCounters] = None,
    var: str = "S",
    k: Optional[int] = None,
    chunk_size: int = 2048,
) -> Dict[Itemset, int]:
    """Support of each candidate via row-AND + popcount.

    The result dict is keyed in candidate order — the same insertion
    order every other kernel produces — so bitmap counts are drop-in
    bit-identical, key order included.
    """
    support: Dict[Itemset, int] = {}
    if bitmap.kind == "numpy":
        probes = _count_numpy(bitmap, candidates, support, chunk_size)
    else:
        probes = _count_ints(bitmap, candidates, support)
    if counters is not None:
        level = k if k is not None else (len(candidates[0]) if candidates else 0)
        counters.record_counted(var, level, len(candidates))
        counters.subset_tests += probes * bitmap.n_transactions
    return support


#: Eligibility bounds for the level-2 Gram-matrix kernel (see
#: :func:`_count_pairs_gemm`): the fp32 accumulator stays exact only
#: while per-pair popcounts cannot exceed 2**24, and the bit-expanded
#: operand is capped so a huge dataset cannot balloon memory.
_GEMM_MAX_BITS = 1 << 24
_GEMM_MAX_EXPANDED_BYTES = 64 << 20

#: Largest item id for which the id -> row translation is a direct
#: array index; sparser id spaces fall back to ``numpy.unique`` + dict.
_MAX_LOOKUP_ITEM = 1 << 22


def _count_numpy(bitmap, candidates, support, chunk_size):
    """Vectorized counting; returns the total item-row probes metered.

    Item ids are translated to matrix rows through a cached lookup
    array (or, for sparse/huge id spaces, one dictionary lookup per
    *distinct* item via ``numpy.unique``) — never one Python dict hit
    per occurrence.  Uniform batches (every candidate the same size —
    what the levelwise engines always send) take the fully vectorized
    path; ragged batches fall back to a per-candidate loop with
    identical results.
    """
    if not candidates:
        return 0
    n = len(candidates)
    k0 = len(candidates[0])
    lengths = _np.fromiter(map(len, candidates), dtype=_np.int64, count=n)
    if k0 == 0 or not (lengths == k0).all():
        return _count_numpy_ragged(bitmap, candidates, support)
    flat = _np.fromiter(
        chain.from_iterable(candidates), dtype=_np.int64, count=n * k0
    )
    rows = _translate_rows(bitmap, flat)
    counts = _try_pairs_gemm(bitmap, rows, n) if k0 == 2 else None
    if counts is None:
        counts = _count_gather(
            bitmap.matrix, rows.reshape(n, k0), chunk_size
        )
    support.update(zip(candidates, counts.tolist()))
    return n * k0


def _translate_rows(bitmap, flat):
    """Item ids (any int64 values) -> matrix row indices, vectorized.

    Unknown, negative, and out-of-range ids all resolve to row 0 (the
    reserved all-zero row), so absent items count as support 0 exactly
    like the dict-based kernels.
    """
    lookup = _row_lookup(bitmap)
    if lookup is not None:
        clipped = _np.clip(flat, 0, len(lookup) - 1)
        rows = lookup[clipped]
        rows[clipped != flat] = 0
        return rows
    unique_items, inverse = _np.unique(flat, return_inverse=True)
    item_index = bitmap.item_index
    unique_rows = _np.asarray(
        [item_index.get(int(item), 0) for item in unique_items],
        dtype=_np.intp,
    )
    return unique_rows[inverse]


def _row_lookup(bitmap):
    """The cached direct-index translation array, or ``None``.

    Usable whenever all item ids are non-negative and small enough that
    a dense array is cheap; one pathological id disables it for the
    matrix's lifetime (the ``False`` sentinel) and the unique+dict path
    takes over.
    """
    if bitmap.row_lookup is None:
        item_index = bitmap.item_index
        if item_index and (
            max(item_index) > _MAX_LOOKUP_ITEM or min(item_index) < 0
        ):
            bitmap.row_lookup = False
        else:
            max_item = max(item_index) if item_index else 0
            lookup = _np.zeros(max_item + 1, dtype=_np.intp)
            for item, row in item_index.items():
                lookup[item] = row
            bitmap.row_lookup = lookup
    lookup = bitmap.row_lookup
    return None if lookup is False else lookup


def _gemm_worthwhile(n_candidates, n_rows, n_words):
    """Whether the level-2 Gram kernel beats the gather kernel.

    The Gram matrix costs ``rows**2`` dot products while the gather path
    costs ``n_candidates`` row intersections, so the Gram kernel needs
    the batch to reference its rows densely; the bit-width bound keeps
    the fp32 accumulation exact.
    """
    return (
        n_candidates >= 4 * n_rows
        and n_rows <= 4096
        and n_words * 64 <= _GEMM_MAX_BITS
    )


def _matrix_bits(bitmap):
    """The cached float32 bit expansion of the whole matrix, or ``None``
    when it would exceed the memory cap."""
    if bitmap.bits_f32 is None:
        expanded = bitmap.matrix.shape[0] * bitmap.n_words * 64 * 4
        if expanded > _GEMM_MAX_EXPANDED_BYTES:
            return None
        bitmap.bits_f32 = _np.unpackbits(
            bitmap.matrix.view(_np.uint8), axis=1
        ).astype(_np.float32)
    return bitmap.bits_f32


def _try_pairs_gemm(bitmap, rows, n):
    """Level-2 supports through one BLAS Gram matrix, or ``None``.

    ``popcount(a & b)`` is the dot product of the rows' bit expansions,
    so a dense level-2 batch becomes ``bits @ bits.T`` over the
    referenced rows — the only kernel here that taps BLAS.  Bit order
    within the expansion is irrelevant (dot products are
    permutation-invariant) and the accumulation is exact: every partial
    sum is an integer bounded by the bit width, which
    :func:`_gemm_worthwhile` caps below 2**24 (fp32's exact-integer
    range); ``rint`` guards the int conversion anyway.
    """
    present = _np.zeros(bitmap.matrix.shape[0], dtype=bool)
    present[rows] = True
    unique_rows = _np.flatnonzero(present)
    if not _gemm_worthwhile(n, len(unique_rows), bitmap.n_words):
        return None
    bits = _matrix_bits(bitmap)
    if bits is None:
        return None
    sub = bits[unique_rows]
    remap = _np.zeros(bitmap.matrix.shape[0], dtype=_np.intp)
    remap[unique_rows] = _np.arange(len(unique_rows))
    pair = remap[rows].reshape(n, 2)
    if _ssyrk is not None:
        # syrk fills only the upper triangle of sub @ sub.T (half the
        # flops); sub.T is the Fortran-contiguous view BLAS wants, so
        # no copy is made.  Row indices are folded into that triangle.
        gram = _ssyrk(1.0, sub.T, trans=1)
        lo = _np.minimum(pair[:, 0], pair[:, 1])
        hi = _np.maximum(pair[:, 0], pair[:, 1])
        counts = gram[lo, hi]
    else:
        gram = sub @ sub.T
        counts = gram[pair[:, 0], pair[:, 1]]
    return _np.rint(counts).astype(_np.int64)


def _count_gather(matrix, index, chunk_size):
    """Chunked gather + AND + popcount over row indices ``(n, k)``.

    Work buffers are preallocated once and reused across chunks, so the
    kernel's memory high-water mark is two ``(chunk, words)`` arrays
    regardless of batch size.
    """
    n, k = index.shape
    n_words = matrix.shape[1]
    chunk = min(chunk_size, n)
    acc = _np.empty((chunk, n_words), dtype=_np.uint64)
    tmp = _np.empty((chunk, n_words), dtype=_np.uint64)
    counts = _np.empty(n, dtype=_np.int64)
    for start in range(0, n, chunk):
        sub = index[start:start + chunk]
        b = len(sub)
        _np.take(matrix, sub[:, 0], axis=0, out=acc[:b])
        for j in range(1, k):
            _np.take(matrix, sub[:, j], axis=0, out=tmp[:b])
            _np.bitwise_and(acc[:b], tmp[:b], out=acc[:b])
        _np.sum(popcount_words(acc[:b]), axis=1, dtype=_np.int64,
                out=counts[start:start + b])
    return counts


def _count_numpy_ragged(bitmap, candidates, support):
    """Mixed-size batches: per-candidate row reduction, same contract.

    The levelwise engines never send these (a level's candidates all
    have size ``k``), but the kernel API accepts any batch; an empty
    candidate counts 0, matching the big-int kernel.
    """
    item_index = bitmap.item_index
    matrix = bitmap.matrix
    probes = 0
    for candidate in candidates:
        probes += len(candidate)
        if not candidate:
            support[candidate] = 0
            continue
        rows = [item_index.get(item, 0) for item in candidate]
        intersection = _np.bitwise_and.reduce(matrix[rows], axis=0)
        support[candidate] = int(popcount_words(intersection).sum())
    return probes


def _count_ints(bitmap, candidates, support):
    masks = bitmap.masks
    probes = 0
    for candidate in candidates:
        probes += len(candidate)
        running = masks.get(candidate[0], 0) if candidate else 0
        for item in candidate[1:]:
            if not running:
                break
            running &= masks.get(item, 0)
        support[candidate] = _INT_POPCOUNT(running)
    return probes


class BitmapBackend:
    """Counting backend over cached :class:`BitmapMatrix` packings.

    Matrices are cached **by transaction-list content digest** with an
    ``id``-keyed memo in front, exactly like
    :class:`~repro.mining.backends.VerticalBackend`'s TID-list cache:
    equal-content lists (two loads of one dataset, a shard re-sliced
    each level) share one build, the memo pins list objects so recycled
    ids can never alias, and ``builds`` counts actual packings so tests
    can assert the sharing.  Per-pass candidate counts, words touched,
    and kernel wall time accumulate on :attr:`stats`
    (:class:`~repro.db.stats.BitmapStats`), which ``--explain`` and run
    reports surface next to the parallel backend's block.
    """

    name = "bitmap"

    def __init__(
        self,
        max_cached_matrices: int = 8,
        chunk_candidates: int = 2048,
        use_numpy: Optional[bool] = None,
    ):
        if max_cached_matrices < 1:
            raise ExecutionError(
                f"max_cached_matrices must be >= 1, got {max_cached_matrices}"
            )
        if chunk_candidates < 1:
            raise ExecutionError(
                f"chunk_candidates must be >= 1, got {chunk_candidates}"
            )
        self.max_cached_matrices = max_cached_matrices
        self.chunk_candidates = chunk_candidates
        self.use_numpy = HAVE_NUMPY if use_numpy is None else use_numpy
        #: content digest -> BitmapMatrix (bounded FIFO)
        self._cache: Dict[str, BitmapMatrix] = {}
        #: id(list) -> (list object, content digest) memo (bounded FIFO)
        self._digests: Dict[int, Tuple[object, str]] = {}
        #: matrix packings performed (cache misses); equal-content lists
        #: must not bump this twice.
        self.builds = 0
        #: matrices derived by :meth:`apply_delta` instead of repacking
        self.delta_updates = 0
        self.stats = BitmapStats(kernel="numpy" if self.use_numpy else "int")

    def _fingerprint(self, transactions) -> str:
        memo = self._digests.get(id(transactions))
        if memo is not None and memo[0] is transactions:
            return memo[1]
        from repro.runtime.checkpoint import transactions_digest

        digest = transactions_digest(transactions)
        if len(self._digests) >= self.max_cached_matrices:
            self._digests.pop(next(iter(self._digests)))
        self._digests[id(transactions)] = (transactions, digest)
        return digest

    def matrix_for(self, transactions) -> BitmapMatrix:
        """The (cached) bitmap packing of ``transactions``."""
        key = self._fingerprint(transactions)
        bitmap = self._cache.get(key)
        if bitmap is None:
            bitmap = build_bitmap(transactions, use_numpy=self.use_numpy)
            self.builds += 1
            self.stats.record_build()
            if len(self._cache) >= self.max_cached_matrices:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = bitmap
        else:
            self.stats.record_cache_hit()
        return bitmap

    def apply_delta(self, new_transactions, delta) -> bool:
        """Seed the matrix cache for ``new_transactions`` from the base.

        The cache is keyed by content digest and the delta names its
        base digest, so when the base matrix is still cached the new
        list's matrix is derived with :func:`update_bitmap` (bit masking
        + row appends) instead of repacked — subsequent ``count`` calls
        over the new list hit it directly.  Returns whether a derivation
        happened (``False`` when the base matrix was never built or has
        been evicted; the next ``count`` then just packs cold, which is
        always correct).
        """
        base = self._cache.get(delta.base_digest)
        if base is None:
            return False
        updated = update_bitmap(base, delta.added, delta.removed_tids)
        key = self._fingerprint(new_transactions)
        if len(self._cache) >= self.max_cached_matrices:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = updated
        self.delta_updates += 1
        return True

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
        guard=None,
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        # The matrix ops are not guard-instrumented (they complete in
        # microseconds); one full check per pass still bounds a run to
        # level granularity, matching the hashtree/vertical backends.
        if guard is not None and guard.enabled:
            guard.check("counting")
        bitmap = self.matrix_for(transactions)
        start = time.perf_counter()
        support = count_with_bitmap(
            bitmap, candidates, counters, var, k=k,
            chunk_size=self.chunk_candidates,
        )
        self.stats.record_level(
            candidates=len(candidates),
            words=len(candidates) * max(k, 1) * bitmap.n_words,
            seconds=time.perf_counter() - start,
        )
        return support
