"""Support counting over (projected) transaction lists.

Counting is the dominant cost of levelwise mining, and its volume is what
the paper's optimizations reduce, so this module both counts supports and
*meters the work* (``subset_tests`` on the run's
:class:`~repro.db.stats.OpCounters`).

Two complementary strategies are used per transaction, picking whichever
is cheaper — the classic trade-off between subset enumeration and
candidate scanning:

* **enumeration** — generate the k-subsets of the (candidate-filtered)
  transaction and probe the candidate hash table: cost ``C(|t|, k)``;
* **candidate scan** — test each candidate for containment in the
  transaction: cost ``|candidates| * k``.

Shard additivity
----------------
:func:`count_candidates` is the kernel of the transaction-sharded
:class:`~repro.mining.backends.ParallelBackend`, which relies on two
audited invariants:

* **supports** are per-transaction sums, so they distribute over any
  partition of the transaction list;
* **probe metering** (``subset_tests``) is likewise a per-transaction
  sum whose per-transaction term depends only on the transaction and the
  candidate set — the enumerate-vs-scan decision threshold
  (``|candidates| * k``) is shard-independent, so each shard makes the
  same per-transaction choice a serial run would, and per-shard work
  sums to exactly the serial total.

The candidate-set ledger (``record_counted``) is *not* additive across
shards — every shard counts the same candidates — which is why sharded
runs merge their counters with
:func:`repro.db.stats.merge_shard_counters` instead of summing.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.stats import OpCounters
from repro.mining.itemsets import Itemset


def count_singletons(
    transactions: Sequence[Tuple[int, ...]],
    elements: Iterable[int],
    counters: Optional[OpCounters] = None,
    var: str = "S",
    guard=None,
) -> Dict[int, int]:
    """Count the support of each element in one pass.

    Returns ``{element: support}`` for every requested element (including
    zero-support ones).  An enabled ``guard``
    (:class:`~repro.runtime.guard.RunGuard`) is ticked per transaction so
    deadline/memory trips interrupt even a single long pass; disabled
    guards cost one ``None`` test per transaction.
    """
    wanted = set(elements)
    support = dict.fromkeys(wanted, 0)
    tick = guard.tick if guard is not None and guard.enabled else None
    probes = 0
    for t in transactions:
        if tick is not None:
            tick(len(t))
        probes += len(t)
        for item in t:
            if item in wanted:
                support[item] += 1
    if counters is not None:
        counters.record_counted(var, 1, len(wanted))
        counters.subset_tests += probes
    return support


def count_candidates(
    transactions: Sequence[Tuple[int, ...]],
    candidates: Sequence[Itemset],
    k: int,
    counters: Optional[OpCounters] = None,
    var: str = "S",
    guard=None,
) -> Dict[Itemset, int]:
    """Count the support of canonical k-itemset candidates in one pass.

    An enabled ``guard`` (:class:`~repro.runtime.guard.RunGuard`) is
    ticked with each transaction's probe budget, giving the run's
    cooperative deadline/memory checks sub-pass granularity; with the
    guard disabled the loop pays one ``None`` test per transaction.
    """
    support: Dict[Itemset, int] = dict.fromkeys(candidates, 0)
    if not support:
        return support
    candidate_items = frozenset(item for c in support for item in c)
    candidate_list: List[Itemset] = list(support)
    # Depends only on the candidate set, never on the transaction list, so
    # sharded runs make identical per-transaction strategy choices and
    # their metered work sums to the serial total (see module docstring).
    scan_cost = len(candidate_list) * k
    tick = guard.tick if guard is not None and guard.enabled else None
    work = 0
    for t in transactions:
        if tick is not None:
            tick(scan_cost)
        relevant = [i for i in t if i in candidate_items]
        m = len(relevant)
        if m < k:
            work += len(t)
            continue
        enum_cost = comb(m, k)
        if enum_cost <= scan_cost:
            work += enum_cost + len(t)
            for subset in combinations(relevant, k):
                if subset in support:
                    support[subset] += 1
        else:
            work += scan_cost + len(t)
            t_set = frozenset(relevant)
            for candidate in candidate_list:
                if t_set.issuperset(candidate):
                    support[candidate] += 1
    if counters is not None:
        counters.record_counted(var, k, len(candidate_list))
        counters.subset_tests += work
    return support


def frequent_only(support: Dict, min_count: int) -> Dict:
    """Filter a support map down to the frequent entries."""
    return {key: n for key, n in support.items() if n >= min_count}
