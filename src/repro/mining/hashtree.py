"""The hash-tree candidate store of the original Apriori paper [2].

Candidates are stored in a tree whose interior nodes hash on the next
item and whose leaves hold small candidate lists; counting walks each
transaction down the tree, visiting only the candidates that could be
contained.  This is the structure the paper's C implementation used; it
is provided as an alternative counting backend so the backend ablation
can compare it against the hybrid enumerate/scan strategy and the
vertical TID-list approach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.stats import OpCounters
from repro.itemsets import Itemset


class _Node:
    """One hash-tree node: a leaf until it overflows, then interior."""

    __slots__ = ("children", "candidates", "depth")

    def __init__(self, depth: int):
        self.children: Optional[Dict[int, "_Node"]] = None
        self.candidates: List[Itemset] = []
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class HashTree:
    """A hash tree over canonical k-itemsets.

    Parameters
    ----------
    k:
        The candidate size (all inserted itemsets must have length k).
    leaf_size:
        Split threshold: a leaf holding more candidates than this (and
        shallower than ``k``) becomes an interior node.
    fanout:
        Modulus of the per-level item hash.
    """

    def __init__(self, k: int, leaf_size: int = 8, fanout: int = 16):
        self.k = k
        self.leaf_size = leaf_size
        self.fanout = fanout
        self.root = _Node(0)
        self.size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, itemset: Itemset) -> None:
        """Insert one canonical k-itemset."""
        if len(itemset) != self.k:
            raise ValueError(f"expected a {self.k}-itemset, got {itemset}")
        node = self.root
        while not node.is_leaf:
            node = self._child(node, itemset[node.depth])
        node.candidates.append(itemset)
        self.size += 1
        if len(node.candidates) > self.leaf_size and node.depth < self.k:
            self._split(node)

    def _child(self, node: _Node, item: int) -> _Node:
        assert node.children is not None
        bucket = item % self.fanout
        child = node.children.get(bucket)
        if child is None:
            child = _Node(node.depth + 1)
            node.children[bucket] = child
        return child

    def _split(self, node: _Node) -> None:
        pending = node.candidates
        node.candidates = []
        node.children = {}
        for itemset in pending:
            child = self._child(node, itemset[node.depth])
            child.candidates.append(itemset)
            # Recursive splitting of a just-filled child is rare enough to
            # handle lazily: split if the child itself overflows.
            if len(child.candidates) > self.leaf_size and child.depth < self.k:
                self._split(child)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        """Count the support of every stored candidate in one pass."""
        support: Dict[Itemset, int] = {}
        self._collect(self.root, support)
        work = 0
        for t in transactions:
            if len(t) < self.k:
                work += 1
                continue
            work += self._count_node(self.root, t, 0, frozenset(t), support)
        if counters is not None:
            counters.record_counted(var, self.k, self.size)
            counters.subset_tests += work
        return support

    def _collect(self, node: _Node, support: Dict[Itemset, int]) -> None:
        if node.is_leaf:
            for itemset in node.candidates:
                support[itemset] = 0
            return
        assert node.children is not None
        for child in node.children.values():
            self._collect(child, support)

    def _count_node(
        self,
        node: _Node,
        transaction: Tuple[int, ...],
        start: int,
        t_set: frozenset,
        support: Dict[Itemset, int],
    ) -> int:
        if node.is_leaf:
            work = 0
            for itemset in node.candidates:
                work += self.k
                if t_set.issuperset(itemset):
                    support[itemset] += 1
            return work
        assert node.children is not None
        work = 0
        # Each remaining transaction item may route to a child; the
        # classic bound: at depth d we may still pick items up to
        # len(t) - (k - d) + 1.
        seen = set()
        limit = len(transaction) - (self.k - node.depth) + 1
        for index in range(start, min(len(transaction), limit)):
            bucket = transaction[index] % self.fanout
            if bucket in seen:
                continue
            seen.add(bucket)
            child = node.children.get(bucket)
            if child is not None:
                work += 1 + self._count_node(
                    child, transaction, index + 1, t_set, support
                )
        return work


def build_hash_tree(
    candidates: Sequence[Itemset], k: int, leaf_size: int = 8, fanout: int = 16
) -> HashTree:
    """Build a hash tree over candidates (all of size ``k``)."""
    tree = HashTree(k, leaf_size=leaf_size, fanout=fanout)
    for candidate in candidates:
        tree.insert(candidate)
    return tree
