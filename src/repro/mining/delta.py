"""Delta recounting: support arithmetic over added/removed transactions.

Incremental skeleton maintenance (:mod:`repro.serve.delta`) adjusts the
support of *known* itemsets by counting them only over the delta's
transactions — supports are per-transaction sums, so for any itemset
``X``::

    support_new(X) = support_old(X) + count(X, added) - count(X, removed)

This module supplies the two counting shapes that refresh needs, both
reusing the audited counting kernels so metering stays comparable:

* :func:`count_over` — a mixed-size candidate set counted over a (small)
  transaction list, used for the delta passes;
* :class:`SupportIndex` — an inverted item→TID index over the **full**
  new database, built lazily in one pass and then answering any number
  of probes (candidates the old skeleton never counted: children of
  promoted sets, or everything a dropped threshold newly generates) by
  TID-set intersection, with no further database passes.

Both leave scan accounting to the caller: refresh records one scan for
the delta pass and one for the index build, so its cost shows up
honestly in the refresh stats.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.db.stats import OpCounters
from repro.mining.counting import count_candidates, count_singletons
from repro.mining.itemsets import Itemset

Transaction = Tuple[int, ...]


def relevant_candidates(
    candidates: Iterable[Itemset], touched_items: frozenset
) -> List[Itemset]:
    """The candidates whose items all occur in the delta's touched set.

    A candidate with any item outside ``touched_items`` is contained in
    no delta transaction, so its delta count is zero — filtering these
    up front keeps the delta pass proportional to the delta, not to the
    skeleton.
    """
    return [c for c in candidates if all(item in touched_items for item in c)]


def count_over(
    transactions: Sequence[Transaction],
    candidates: Iterable[Itemset],
    counters: Optional[OpCounters] = None,
    var: str = "S",
    guard=None,
) -> Dict[Itemset, int]:
    """Exact supports of a mixed-size candidate set over one list.

    Candidates are grouped by size and each group is counted with the
    standard kernels (:func:`~repro.mining.counting.count_singletons` /
    :func:`~repro.mining.counting.count_candidates`), so the work is
    metered in the same units as cold mining.
    """
    by_size: Dict[int, List[Itemset]] = {}
    for candidate in candidates:
        by_size.setdefault(len(candidate), []).append(candidate)
    supports: Dict[Itemset, int] = {}
    for k in sorted(by_size):
        group = by_size[k]
        if k == 1:
            singles = count_singletons(
                transactions, (c[0] for c in group), counters, var, guard=guard
            )
            supports.update({(e,): n for e, n in singles.items()})
        else:
            supports.update(
                count_candidates(transactions, group, k, counters, var,
                                 guard=guard)
            )
    return supports


class SupportIndex:
    """Inverted item → TID-set index answering exact support probes.

    Built in a single pass over the transaction list; after that every
    probe is an intersection of its items' TID sets (smallest first,
    bailing on empty), so probing P candidates across L levels costs one
    database pass total instead of L — the structural reason a skeleton
    refresh beats a cold re-mine even when a dropped threshold forces
    thousands of probes.
    """

    def __init__(self, transactions: Sequence[Transaction]) -> None:
        self.n_transactions = len(transactions)
        tids: Dict[int, Set[int]] = {}
        for tid, transaction in enumerate(transactions):
            for item in transaction:
                tids.setdefault(item, set()).add(tid)
        self._tids = tids

    def support(self, candidate: Itemset) -> int:
        """Exact support of one candidate (the empty set is supported by
        every transaction, matching ``TransactionDatabase.support``)."""
        if not candidate:
            return self.n_transactions
        tid_sets = []
        for item in candidate:
            tids = self._tids.get(item)
            if not tids:
                return 0
            tid_sets.append(tids)
        tid_sets.sort(key=len)
        current = tid_sets[0]
        for other in tid_sets[1:]:
            current = current & other
            if not current:
                return 0
        return len(current)

    def probe(
        self,
        candidates: Sequence[Itemset],
        counters: Optional[OpCounters] = None,
        var: str = "S",
        level: int = 0,
    ) -> Dict[Itemset, int]:
        """Supports of a candidate batch, metered like a counting pass
        (``support_counted`` per (var, level)) so refresh stats stay in
        the same units as cold mining."""
        supports = {c: self.support(c) for c in candidates}
        if counters is not None and candidates:
            counters.record_counted(var, level, len(candidates))
        return supports
