"""The CAP-style constrained levelwise lattice for one set variable.

:class:`ConstrainedLattice` is the workhorse every strategy in this
library is built from:

* with no pruning installed it is exactly classic **Apriori**;
* with the user's 1-var constraints compiled in
  (:func:`repro.constraints.pruners.compile_onevar`) it is **CAP**
  (Ng et al., SIGMOD 1998), handling all four constraint classes:
  item filters (succinct + anti-monotone), required buckets (succinct
  only — the member-generating-function case), anti-monotone checks, and
  post-filters;
* driven by :class:`repro.mining.dovetail.DovetailEngine` with reduced
  2-var constraints installed after level 1 and ``V^k`` bounds installed
  every level, it is the paper's optimized strategy.

The lattice is a *stepper*: callers ask for the next level's candidates,
count them (possibly sharing a database scan with another lattice — the
dovetailing of Section 5.2), and feed the counts back.  This inversion is
what lets two lattices interleave level by level.

Rank space
----------
Candidate generation uses a per-run *rank* ordering that places the
elements of the first required bucket ahead of all others.  A rank-sorted
candidate then hits the bucket iff its first element does — a structural
property of generation, not a constraint check — which is how CAP meets
condition (2) of ccc-optimality (Definition 6) for succinct constraints.
The ordering is frozen the first time level-2 candidates are requested;
pruners installed later (the dynamic ``V^k`` bounds) may only be
anti-monotone checks, which do not interact with the ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.constraints.pruners import CompiledPruning
from repro.db.stats import OpCounters
from repro.errors import ExecutionError
from repro.mining.backends import guarded_count, make_backend
from repro.mining.candidates import generate_pairs, join_and_prune
from repro.mining.counting import count_singletons, frequent_only
from repro.mining.itemsets import Itemset, canonical
from repro.runtime.guard import resolve_guard

RankTuple = Tuple[int, ...]


@dataclass
class LatticeResult:
    """The outcome of one variable's lattice computation.

    Attributes
    ----------
    var:
        The variable name.
    frequent:
        Post-filtered frequent valid itemsets per level (canonical
        element-id tuples mapped to absolute support).
    level1_supports:
        Supports of *all* frequent filter-passing singletons — the set the
        paper calls ``L1``, whose values parameterize the quasi-succinct
        reduction.
    counted_per_level:
        Number of candidate sets whose support was counted, per level.
    prune_counts:
        Per-level pruning attribution: how many sets each installed
        pruner removed before counting (keys like ``"filter:<source>"``,
        ``"bucket:<source>"``, ``"am:<source>"``), plus ``"infrequent"``
        (counted but below threshold) and ``"final_verification"``
        (dropped by the post-filter re-check in :meth:`result`).  This
        is the raw material of the run report's pruning table.
    border:
        Per-level *negative border*: candidates whose support was counted
        but fell below ``min_count`` (only retained when the lattice was
        built with ``keep_border=True``).  Together with ``frequent`` it
        gives the exact support of **every** generated candidate, which
        is what makes incremental maintenance under dataset churn
        (:mod:`repro.serve.delta`) pure arithmetic for known sets.
    """

    var: str
    frequent: Dict[int, Dict[Itemset, int]]
    level1_supports: Dict[int, int]
    counted_per_level: Dict[int, int]
    prune_counts: Dict[int, Dict[str, int]] = field(default_factory=dict)
    border: Dict[int, Dict[Itemset, int]] = field(default_factory=dict)

    def all_sets(self) -> Dict[Itemset, int]:
        """All frequent valid itemsets across levels."""
        merged: Dict[Itemset, int] = {}
        for sets in self.frequent.values():
            merged.update(sets)
        return merged

    @property
    def max_level(self) -> int:
        """Largest level with a frequent valid set (0 if none)."""
        levels = [k for k, sets in self.frequent.items() if sets]
        return max(levels) if levels else 0


class ConstrainedLattice:
    """Levelwise miner for one variable under operational pruning forms.

    Parameters
    ----------
    var:
        Variable name ("S" or "T" in the paper's queries).
    elements:
        The element universe the variable's sets draw from (a
        :class:`~repro.db.domain.Domain`'s ``elements``, or any iterable
        of ids for plain frequency mining).
    transactions:
        The domain-projected transactions (tuples of element ids).
    min_count:
        Absolute support threshold.
    pruning:
        Initially installed pruning (the variable's own 1-var
        constraints); more may be installed between levels via
        :meth:`install_pruning`.
    counters:
        Shared operation counters; created if omitted.
    max_level:
        Optional hard cap on the lattice depth.
    """

    def __init__(
        self,
        var: str,
        elements: Sequence[int],
        transactions: Sequence[Tuple[int, ...]],
        min_count: int,
        pruning: Optional[CompiledPruning] = None,
        counters: Optional[OpCounters] = None,
        max_level: Optional[int] = None,
        keep_candidates: bool = False,
        keep_border: bool = False,
        backend=None,
        guard=None,
    ):
        if min_count < 1:
            raise ExecutionError(f"min_count must be >= 1, got {min_count}")
        self.guard = resolve_guard(guard)
        self.var = var
        self.elements: Tuple[int, ...] = tuple(elements)
        self.transactions: List[Tuple[int, ...]] = list(transactions)
        self.min_count = min_count
        self.pruning = pruning if pruning is not None else CompiledPruning()
        self.counters = counters if counters is not None else OpCounters()
        self.max_level_cap = max_level

        self.level = 0
        self.active = True
        self.frequent: Dict[int, Dict[Itemset, int]] = {}
        self.level1_supports: Dict[int, int] = {}
        self.counted_per_level: Dict[int, int] = {}
        self.keep_candidates = keep_candidates
        self.candidate_log: Dict[int, List[Itemset]] = {}
        self.keep_border = keep_border
        self.border: Dict[int, Dict[Itemset, int]] = {}
        self.backend = make_backend(backend if backend is not None else "hybrid")
        # Pruning attribution (level -> reason -> count): plain integer
        # bookkeeping, always on — the observability layer's trace spans
        # and run-report pruning table read it after the fact, so a
        # tracing-off run pays only these increments (on pruned branches).
        self.prune_counts: Dict[int, Dict[str, int]] = {}

        self._universe: Tuple[int, ...] = self.pruning.filtered_universe(self.elements)
        if len(self._universe) < len(self.elements):
            self._attribute_filtered(self.elements, self.pruning.filters, level=1)
        self._record_level1_checks(len(self.elements))
        self._frozen = False
        self._rank: Dict[int, int] = {}
        self._order: List[int] = []
        self._has_buckets = False
        self._primary_bucket_size = 0
        self._primary_bucket_source: Optional[str] = None
        self._prev_ranked: Set[RankTuple] = set()
        self._pending: Optional[List[Itemset]] = None  # canonical candidates awaiting counts
        self._pending_level = 0

    # ------------------------------------------------------------------
    # Stepper interface
    # ------------------------------------------------------------------
    def next_level(self) -> int:
        """The level whose candidates would be produced next."""
        return self.level + 1

    def candidates(self) -> List[Itemset]:
        """Produce the next level's candidates (canonical tuples).

        Level 1 candidates are the filter-passing singleton elements; the
        caller counts them and feeds the supports to :meth:`absorb`.
        Returns an empty list when the lattice has gone inactive.
        """
        if not self.active:
            return []
        k = self.level + 1
        if self.max_level_cap is not None and k > self.max_level_cap:
            self.active = False
            return []
        if k == 1:
            cands = [(e,) for e in self._universe]
        elif k == 2:
            cands = self._level2_candidates()
        else:
            cands = self._deeper_candidates(k)
        if not cands:
            self.active = False
            return []
        # Budget enforcement happens the moment a level's candidates
        # exist, before any counting work is spent on them.
        self.guard.check_candidates(len(cands), self.var, k)
        self._pending = cands
        self._pending_level = k
        return cands

    def absorb(self, support: Mapping[Itemset, int]) -> None:
        """Feed back the supports of the pending candidates."""
        if self._pending is None:
            raise ExecutionError("absorb() called with no pending candidates")
        k = self._pending_level
        self.counted_per_level[k] = self.counted_per_level.get(k, 0) + len(self._pending)
        if self.keep_candidates:
            self.candidate_log.setdefault(k, []).extend(self._pending)
        freq = frequent_only(dict(support), self.min_count)
        if len(freq) < len(self._pending):
            self._note_pruned(k, "infrequent", len(self._pending) - len(freq))
        if self.keep_border and len(freq) < len(support):
            self.border[k] = {
                itemset: n for itemset, n in support.items()
                if n < self.min_count
            }
        self._pending = None
        self.level = k
        if k == 1:
            self.level1_supports = {items[0]: n for items, n in freq.items()}
            self._trim_transactions()
            self.frequent[1] = dict(freq)
        else:
            self.frequent[k] = freq
        self._prev_ranked = (
            {self._to_ranked(itemset) for itemset in freq} if self._frozen else set()
        )
        if not freq:
            self.active = False

    def count_and_absorb(self) -> bool:
        """Run one full level against this lattice's own transactions.

        Returns whether the lattice is still active.  Used by the
        single-variable strategies; the dovetail engine counts the two
        variables' candidates in a shared scan instead.
        """
        cands = self.candidates()
        if not cands:
            return False
        k = self._pending_level
        self.counters.record_scan(len(self.transactions))
        if k == 1:
            supports = count_singletons(
                self.transactions, (c[0] for c in cands), self.counters,
                self.var, guard=self.guard,
            )
            self.absorb({(e,): n for e, n in supports.items()})
        else:
            self.absorb(
                guarded_count(self.backend, self.transactions, cands, k,
                              self.counters, self.var, guard=self.guard)
            )
        self.guard.level_completed(self.var, k)
        return self.active

    # ------------------------------------------------------------------
    # Pruning installation (the reduction / Jmax hooks)
    # ------------------------------------------------------------------
    def install_pruning(self, extra: CompiledPruning) -> None:
        """Conjoin additional pruning, e.g. the reduced 1-var constraints
        of Figures 2/3 after level 1, or a tightened ``V^k`` bound.

        Item filters and buckets may only be installed before the ordering
        freezes (i.e. before level-2 candidates are generated);
        anti-monotone checks and post-filters may arrive at any time.
        """
        if self._frozen and (extra.filters or extra.buckets):
            raise ExecutionError(
                "item filters and buckets must be installed before level 2"
            )
        self.pruning.extend(extra)
        if extra.filters:
            before = self._universe
            self._universe = self.pruning.filtered_universe(self._universe)
            if len(self._universe) < len(before):
                # Attribute the newly excluded elements (e.g. reduced
                # quasi-succinct constraints arriving after level 1) to
                # the filters just installed.
                self._attribute_filtered(before, extra.filters, level=1)
            if self.level >= 1:
                keep = set(self._universe)
                self.level1_supports = {
                    e: n for e, n in self.level1_supports.items() if e in keep
                }
                if 1 in self.frequent:
                    self.frequent[1] = {
                        (e,): n for e, n in self.level1_supports.items()
                    }
                self._trim_transactions()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> LatticeResult:
        """Final frequent valid sets, with post-filters applied.

        Post-filter invocations are metered as final-verification checks
        (``pair_checks``), matching the paper's accounting where the extra
        verification for induced weaker constraints happens outside the
        lattice computation.
        """
        needs_final = bool(
            self.pruning.post_filters or self.pruning.buckets or self.pruning.am_checks
        )
        filtered: Dict[int, Dict[Itemset, int]] = {}
        # Copy, never mutate, the lattice's attribution: result() must be
        # re-runnable without double-counting the final verification.
        prune_counts = {k: dict(v) for k, v in self.prune_counts.items()}
        for k, sets in self.frequent.items():
            if not needs_final:
                filtered[k] = dict(sets)
                continue
            kept: Dict[Itemset, int] = {}
            for itemset, n in sets.items():
                # Re-apply the full validity test: level-1 sets were counted
                # regardless of buckets (the MGF needs their supports), and
                # dynamic anti-monotone bounds may have tightened since a
                # set was admitted.  These are final-verification checks.
                n_checks = len(self.pruning.am_checks) + len(self.pruning.post_filters)
                self.counters.pair_checks += n_checks
                if self.pruning.lattice_valid(itemset) and (
                    self.pruning.post_filters_pass(itemset)
                ):
                    kept[itemset] = n
            filtered[k] = kept
            dropped = len(sets) - len(kept)
            if dropped:
                counts = prune_counts.setdefault(k, {})
                counts["final_verification"] = (
                    counts.get("final_verification", 0) + dropped
                )
        return LatticeResult(
            var=self.var,
            frequent=filtered,
            level1_supports=dict(self.level1_supports),
            counted_per_level=dict(self.counted_per_level),
            prune_counts=prune_counts,
            border={k: dict(sets) for k, sets in self.border.items()},
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_pruned(self, level: int, reason: str, n: int = 1) -> None:
        counts = self.prune_counts.setdefault(level, {})
        counts[reason] = counts.get(reason, 0) + n

    def _attribute_filtered(self, elements, filters, level: int) -> None:
        """Attribute each filter-rejected element to the first rejecting
        item filter (runs once per filter installation, not per level)."""
        for element in elements:
            for item_filter in filters:
                if not item_filter.admits(element):
                    self._note_pruned(level, f"filter:{item_filter.source}")
                    break

    def _record_level1_checks(self, n_elements: int) -> None:
        # Constructing the filtered universe evaluates each element against
        # the installed succinct constraints — the level-1 constraint
        # checks that Definition 6's condition (2) permits.
        if not self.pruning.is_trivial:
            self.counters.record_check(1, n_elements)

    def _trim_transactions(self) -> None:
        keep = frozenset(self.level1_supports)
        self.transactions = [
            tuple(i for i in t if i in keep) for t in self.transactions
        ]

    def _freeze_order(self) -> None:
        if self._frozen:
            return
        # Only ONE bucket can be enforced structurally (the MGF ordering);
        # a set missing the other buckets may still grow into them, so
        # they are applied as final validity filters only (see DESIGN.md).
        # The smallest bucket is chosen as the structural one, maximizing
        # pruning.
        live = set(self.level1_supports)
        buckets = [b.bucket & live for b in self.pruning.buckets]
        self._has_buckets = bool(buckets)
        if buckets:
            smallest = min(range(len(buckets)), key=lambda i: len(buckets[i]))
            primary: FrozenSet[int] = frozenset(buckets[smallest])
            self._primary_bucket_source = self.pruning.buckets[smallest].source
        else:
            primary = frozenset()
            self._primary_bucket_source = None
        front = sorted(primary)
        back = sorted(e for e in self.level1_supports if e not in primary)
        self._order = front + back
        self._rank = {e: r for r, e in enumerate(self._order)}
        self._primary_bucket_size = len(front)
        self._prev_ranked = {
            self._to_ranked(itemset) for itemset in self.frequent.get(1, {})
        }
        self._frozen = True

    def _to_ranked(self, itemset: Itemset) -> RankTuple:
        return tuple(sorted(self._rank[e] for e in itemset))

    def _to_canonical(self, ranked: RankTuple) -> Itemset:
        return canonical(self._order[r] for r in ranked)

    def _ranked_hits_buckets(self, ranked: RankTuple) -> bool:
        return not (self._has_buckets and ranked[0] >= self._primary_bucket_size)

    def _passes_am_checks(self, ranked: RankTuple) -> bool:
        checks = self.pruning.am_checks
        if not checks:
            return True
        elements = self._to_canonical(ranked)
        self.counters.record_check(len(elements), len(checks))
        for check in checks:
            if not check.holds(elements):
                self._note_pruned(self.level + 1, f"am:{check.source}")
                return False
        return True

    def _level2_candidates(self) -> List[Itemset]:
        self._freeze_order()
        if self._has_buckets and self._primary_bucket_size == 0:
            return []
        level1_ranks = list(range(len(self._order)))
        limit = self._primary_bucket_size if self._has_buckets else 0

        def admissible(a: int, b: int) -> bool:
            if limit and a >= limit:
                return False
            return self._passes_am_checks((a, b))

        pairs = generate_pairs(level1_ranks, admissible)
        # Bucket-pruned pairs need no per-pair bookkeeping: ranks are
        # sorted, so a pair misses the structural bucket iff its lower
        # rank does, i.e. both elements lie outside it — C(outside, 2).
        outside = len(level1_ranks) - limit
        if limit and outside >= 2:
            self._note_pruned(
                2,
                f"bucket:{self._primary_bucket_source}",
                outside * (outside - 1) // 2,
            )
        return [self._to_canonical(p) for p in pairs]

    def _deeper_candidates(self, k: int) -> List[Itemset]:
        ranked = join_and_prune(self._prev_ranked, k, self._ranked_hits_buckets)
        survivors = [rt for rt in ranked if self._passes_am_checks(rt)]
        return [self._to_canonical(rt) for rt in survivors]
