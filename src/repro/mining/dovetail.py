"""The dovetailed dual-lattice engine (Sections 4–6).

This engine executes an :class:`~repro.core.plan.ExecutionPlan`:

1. **Level 1** — counts all (filter-passing) singletons for both
   variables in one shared scan.
2. **Reduction hook** — reduces each quasi-succinct (or induced weaker)
   2-var constraint into 1-var succinct constraints using the two L1s
   (Figures 2/3) and installs them into the lattices, *before* any level-2
   candidate is generated.
3. **Jmax hook** — starts a :class:`~repro.core.jmax.BoundSeries` per
   non-quasi-succinct sum/avg constraint and installs a dynamic pruning
   condition on the lesser side; the bound tightens after every level of
   the greater side's lattice.
4. **Dovetailed levels** — both lattices advance level by level, their
   candidates counted against a single shared database pass (the I/O
   argument of Section 5.2).  ``dovetail=False`` runs the lattices
   sequentially instead (each paying its own scans), for the ablation.

The engine is strategy-agnostic: with no constraints in the plan it is
plain dual Apriori; with only 1-var constraints it is CAP per variable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.constraints.pruners import (
    AntiMonotoneCheck,
    CompiledPruning,
    PostFilter,
    RequiredBucket,
    element_value_map,
)
from repro.core.jmax import BoundSeries
from repro.core.plan import ExecutionPlan, JmaxPlan
from repro.core.reduction import reduce_twovar
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import ExecutionError
from repro.mining.backends import backend_scope, guarded_count, make_backend
from repro.mining.cap import compile_constraints
from repro.mining.counting import count_singletons
from repro.mining.lattice import ConstrainedLattice, LatticeResult
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import resolve_tracer
from repro.runtime.checkpoint import Checkpoint, CountEvent
from repro.runtime.guard import resolve_guard

logger = get_logger(__name__)


@dataclass
class DovetailResult:
    """The engine's output: per-variable results plus instrumentation."""

    lattices: Dict[str, LatticeResult]
    counters: OpCounters
    bound_histories: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    disabled_jmax: List[str] = field(default_factory=list)
    candidate_logs: Dict[str, Dict[int, List[Tuple[int, ...]]]] = field(
        default_factory=dict
    )

    def result_for(self, var: str) -> LatticeResult:
        """One variable's lattice result."""
        return self.lattices[var]


class DovetailEngine:
    """Executes an :class:`ExecutionPlan` against a transaction database."""

    def __init__(
        self,
        db: TransactionDatabase,
        plan: ExecutionPlan,
        counters: Optional[OpCounters] = None,
        dovetail: bool = True,
        use_reduction: bool = True,
        use_jmax: bool = True,
        max_level: Optional[int] = None,
        keep_candidates: bool = False,
        backend=None,
        reduction_rounds: int = 1,
        tracer=None,
        guard=None,
        checkpointer=None,
        resume: bool = False,
        support_oracle=None,
    ):
        if reduction_rounds < 1:
            raise ExecutionError("reduction_rounds must be >= 1")
        self.db = db
        self.plan = plan
        self.counters = counters if counters is not None else OpCounters()
        self.dovetail = dovetail
        self.use_reduction = use_reduction
        self.use_jmax = use_jmax
        self.max_level = max_level
        self.keep_candidates = keep_candidates
        # Resolve the backend ONCE and share the instance across both
        # lattices: stateful backends (the parallel worker pool, the
        # vertical TID-list cache) must be per-run, not per-lattice.
        self.backend = make_backend(backend) if backend is not None else None
        self.reduction_rounds = reduction_rounds
        self.tracer = resolve_tracer(tracer)
        self.guard = resolve_guard(guard)
        #: Optional :class:`~repro.runtime.checkpoint.CheckpointManager`;
        #: when set, a checkpoint is saved after every completed level
        #: boundary, and ``resume=True`` replays its stored supports
        #: (see ``docs/run-lifecycle.md``).
        self.checkpointer = checkpointer
        self.resume = resume
        #: Optional support oracle (``lookup(var, candidates) -> {itemset:
        #: support}``, e.g. :class:`repro.serve.skeleton.SupportOracle`):
        #: when set, counting passes read supports from it instead of the
        #: database — same mechanism as checkpoint replay, with a cached
        #: frequency skeleton standing in for the stored count events.
        #: The candidate-set ledger is still metered (the sets *are*
        #: decided), but no scans or subset tests happen.
        self.support_oracle = support_oracle
        self._series: List[Tuple[JmaxPlan, BoundSeries]] = []
        self._bound_side_done: Dict[str, bool] = {}
        self._lattices: Dict[str, ConstrainedLattice] = {}
        self._disabled_notes: List[str] = []
        # Checkpoint/replay state: the ordered log of counting passes
        # completed so far, the queue of stored passes still to replay,
        # and the counters snapshot to restore once replay drains.
        self._events: List[CountEvent] = []
        self._replay: deque = deque()
        self._replay_snapshot: Optional[dict] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> DovetailResult:
        """Execute the plan and return per-variable results.

        The whole run executes inside one :func:`backend_scope`, so a
        resource-holding backend (the parallel worker pool) is acquired
        once and reused across every dovetailed level of both lattices.
        """
        with self.tracer.span(
            "dovetail.run",
            dovetail=self.dovetail,
            use_reduction=self.use_reduction,
            use_jmax=self.use_jmax,
            backend=getattr(self.backend, "name", None) or "hybrid",
            variables=sorted(self.plan.var_plans),
        ):
            with backend_scope(self.backend):
                return self._run()

    def _run(self) -> DovetailResult:
        logger.debug(
            "dovetail run: %d variable(s), dovetail=%s, reduction=%s, jmax=%s",
            len(self.plan.var_plans), self.dovetail, self.use_reduction,
            self.use_jmax,
        )
        self.guard.start()
        self.guard.check("run start")
        if self.checkpointer is not None and self.resume:
            loaded = self.checkpointer.load_for_resume()
            if loaded is not None:
                self._replay = deque(loaded.events)
                self._replay_snapshot = dict(loaded.counters)
        lattices, projected = self._build_lattices()
        self._lattices = lattices

        self._run_level1(lattices, projected)
        if self.use_reduction:
            self._apply_reductions(lattices)
        disabled = self._setup_jmax(lattices) if self.use_jmax else [
            f"{p.pruned_var}: jmax disabled by engine option" for p in self.plan.jmax
        ]
        self._disabled_notes = disabled
        for note in disabled:
            logger.info("jmax series disabled: %s", note)

        del projected  # lattices own (and trim) their transaction lists
        self._level_boundary(lattices)
        if self.dovetail:
            self._run_dovetailed(lattices)
        else:
            self._run_sequential(lattices)

        if self._replay:
            raise ExecutionError(
                f"checkpoint replay did not converge: {len(self._replay)} "
                "stored counting pass(es) were never consumed (the "
                "checkpoint does not match this run)"
            )
        histories = {
            f"{plan.bound_var}.{plan.bound_attr}": series.history
            for plan, series in self._series
        }
        return DovetailResult(
            lattices={var: lattice.result() for var, lattice in lattices.items()},
            counters=self.counters,
            bound_histories=histories,
            disabled_jmax=disabled,
            candidate_logs={
                var: dict(lattice.candidate_log) for var, lattice in lattices.items()
            },
        )

    def partial_result(self) -> DovetailResult:
        """Whatever the run has fully absorbed so far, packaged exactly
        like a completed :class:`DovetailResult`.

        Called by the optimizer after a
        :class:`~repro.errors.RunInterrupted` unwinds :meth:`run`.  Each
        present lattice contributes its absorbed levels through the
        normal final-verification path; variables whose lattice never
        got built report empty results.  Note that for ``min``/``avg``
        ``J^k_max`` constraints the final verification uses the bound as
        tightened *so far*, so partial per-variable sets may be a
        superset of what the finished run would keep — downstream pair
        formation re-verifies the original constraints exactly (see
        ``docs/run-lifecycle.md``).
        """
        lattices = {
            var: lattice.result() for var, lattice in self._lattices.items()
        }
        for var in self.plan.var_plans:
            if var not in lattices:
                lattices[var] = LatticeResult(
                    var=var, frequent={}, level1_supports={},
                    counted_per_level={},
                )
        histories = {
            f"{plan.bound_var}.{plan.bound_attr}": series.history
            for plan, series in self._series
        }
        return DovetailResult(
            lattices=lattices,
            counters=self.counters,
            bound_histories=histories,
            disabled_jmax=list(self._disabled_notes),
            candidate_logs={
                var: dict(lattice.candidate_log)
                for var, lattice in self._lattices.items()
            },
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _build_lattices(self):
        lattices: Dict[str, ConstrainedLattice] = {}
        projected: Dict[str, List[Tuple[int, ...]]] = {}
        for var, var_plan in self.plan.var_plans.items():
            domain = var_plan.domain
            projected[var] = [domain.project(t) for t in self.db.transactions]
            pruning = compile_constraints(var_plan.base_constraints, var, domain)
            lattices[var] = ConstrainedLattice(
                var=var,
                elements=domain.elements,
                transactions=projected[var],
                min_count=var_plan.min_count,
                pruning=pruning,
                counters=self.counters,
                max_level=self.max_level,
                keep_candidates=self.keep_candidates,
                backend=self.backend,
                guard=self.guard,
            )
        return lattices, projected

    def _run_level1(self, lattices, projected) -> None:
        self._record_level_scan(n_active=len(lattices))
        for var, lattice in lattices.items():
            candidates = lattice.candidates()
            if not candidates:
                # Item filters admit nothing: the lattice is already done
                # (its constrained L1 is empty, which the reduction step
                # will propagate to the other side).
                continue
            with self.tracer.span(
                "level", var=var, level=1, candidates_in=len(candidates)
            ) as span:
                support = self._count_level(lattice, candidates, 1)
                lattice.absorb(support)
                self._finish_level_span(span, lattice, 1, len(candidates))
            self.guard.level_completed(var, 1)

    # ------------------------------------------------------------------
    # Counting with checkpoint replay
    # ------------------------------------------------------------------
    def _count_level(self, lattice, candidates, k: int):
        """The supports of one ``(variable, level)`` pass.

        On a fresh run this counts against the database (through the
        lattice's backend, guard attached).  On a resumed run, stored
        passes are replayed instead — supports come from the checkpoint,
        no scan or counting happens — until the stored log drains.
        Either way the pass is appended to the run's event log so later
        checkpoints carry the complete history.
        """
        if self._replay:
            event = self._replay.popleft()
            if (
                event.var != lattice.var
                or event.level != k
                or event.candidates_in != len(candidates)
            ):
                raise ExecutionError(
                    f"checkpoint replay diverged: stored pass is "
                    f"{event.var} L{event.level} ({event.candidates_in} "
                    f"candidates) but the run needs {lattice.var} L{k} "
                    f"({len(candidates)} candidates); the checkpoint does "
                    "not match this run"
                )
            support = event.support_map()
            if self.checkpointer is not None:
                self._events.append(event)
            return support
        if self.support_oracle is not None:
            # Oracle-served pass: supports come from the cached frequency
            # skeleton, keyed in the exact dict order a counted pass
            # produces — candidate order for k >= 2 (count_candidates
            # keys on the candidate list) but *set* iteration order for
            # k == 1 (count_singletons keys on set(elements)), which is
            # answer-bearing: pair formation iterates these dicts.  The
            # ledger is recorded exactly as the counting kernels would;
            # scans and subset tests genuinely did not happen, so they
            # are not.
            if k == 1:
                ordered = [(e,) for e in set(c[0] for c in candidates)]
            else:
                ordered = candidates
            support = self.support_oracle.lookup(lattice.var, ordered)
            self.counters.record_counted(lattice.var, k, len(candidates))
            if self.checkpointer is not None:
                self._events.append(
                    CountEvent(
                        var=lattice.var, level=k,
                        candidates_in=len(candidates),
                        supports=tuple(support.items()),
                    )
                )
            return support
        if k == 1:
            raw = count_singletons(
                lattice.transactions, (c[0] for c in candidates),
                self.counters, lattice.var, guard=self.guard,
            )
            support = {(e,): n for e, n in raw.items()}
        else:
            support = guarded_count(
                lattice.backend, lattice.transactions, candidates, k,
                self.counters, lattice.var, guard=self.guard,
            )
        if self.checkpointer is not None:
            self._events.append(
                CountEvent(
                    var=lattice.var, level=k, candidates_in=len(candidates),
                    supports=tuple(support.items()),
                )
            )
        return support

    def _level_boundary(self, lattices) -> None:
        """One completed level boundary: restore or persist.

        Checkpoints are saved exactly at these boundaries, so on a
        resumed run the stored event log drains exactly at the boundary
        where its checkpoint was written — the moment to overwrite the
        counters with the stored snapshot, making every counter
        bit-identical to the uninterrupted run's value at that point.
        Past replay (or without it), each boundary persists a new
        checkpoint covering the full event log.
        """
        if self._replay:
            return  # mid-replay: this boundary was already persisted
        if self._replay_snapshot is not None:
            self.counters.restore(self._replay_snapshot)
            self._replay_snapshot = None
            logger.info("checkpoint replay complete; counters restored")
            if not (self.checkpointer is not None and self._events):
                return
            # The drain boundary doubles as a save boundary: re-persist
            # so interrupt-before-first-new-boundary cannot lose it.
        if self.checkpointer is None:
            return
        self.checkpointer.save(
            Checkpoint(
                fingerprint=self.checkpointer.fingerprint,
                events=tuple(self._events),
                counters=self.counters.snapshot(),
                levels_completed={
                    var: lattice.level
                    for var, lattice in lattices.items()
                    if lattice.level >= 1
                },
            )
        )

    def _finish_level_span(
        self, span, lattice, level: int, candidates_in: int,
        attach_shards: bool = False,
    ) -> None:
        """Close out one per-(variable, level) span: frequent-out and
        pruning attribution, plus the sharded backend's per-shard
        timings for this pass (joined from ``ParallelStats``)."""
        if not self.tracer.enabled:
            return
        frequent_out = len(lattice.frequent.get(level, {}))
        span.set(
            frequent_out=frequent_out,
            pruned=dict(lattice.prune_counts.get(level, {})),
        )
        metrics = self.tracer.metrics
        metrics.inc("candidates_counted", candidates_in, var=lattice.var)
        metrics.inc("frequent_sets", frequent_out, var=lattice.var)
        stats = getattr(lattice.backend, "stats", None)
        if attach_shards and stats is not None and getattr(stats, "levels", None):
            last = stats.levels[-1]
            span.set(
                shard_sizes=list(last.shard_sizes),
                shard_seconds=[round(s, 6) for s in last.shard_seconds],
                shard_merge_seconds=round(last.merge_seconds, 6),
                pooled=not last.in_process,
            )
            # Shards run out-of-process and cannot write into the run
            # registry directly: their observations are staged in a
            # shard-local registry and folded in exactly (counters add,
            # histograms merge bucket-for-bucket).
            shard_metrics = MetricsRegistry()
            for size, seconds in zip(last.shard_sizes, last.shard_seconds):
                shard_metrics.observe("shard_seconds", seconds, var=lattice.var)
                shard_metrics.inc("shard_tuples", size, var=lattice.var)
            metrics.merge(shard_metrics)

    def _apply_reductions(self, lattices) -> None:
        """Install the Figure 2/3 reductions; optionally iterate.

        Iterated reduction (an extension beyond the paper; see DESIGN.md):
        the round-1 reductions shrink each side's constrained L1, which
        tightens the other side's reduction constants, and so on to a
        fixpoint.  Iteration is sound because the reduced *item filters*
        are itemwise conditions on the elements of valid sets — every
        element of a valid-pair set survives them, so constants computed
        from the filtered L1 still cover all possible partners.  Rounds
        after the first install only the (monotonically shrinking) item
        filters, never duplicate buckets or checks.
        """
        if not self.plan.reductions:
            return
        domains = {var: plan.domain for var, plan in self.plan.var_plans.items()}
        for round_index in range(self.reduction_rounds):
            l1 = {
                var: tuple(lattice.level1_supports)
                for var, lattice in lattices.items()
            }
            changed = False
            with self.tracer.span(
                "reduction.round", round=round_index + 1
            ) as round_span:
                for reduction in self.plan.reductions:
                    if not reduction.view.variables <= set(lattices):
                        raise ExecutionError(
                            f"reduction {reduction.view} mentions variables outside "
                            f"the plan"
                        )
                    with self.tracer.span(
                        "reduction.apply", constraint=str(reduction.view)
                    ) as span:
                        reduced = reduce_twovar(reduction.view, domains, l1)
                        for var, constraints in reduced.items():
                            if not constraints:
                                continue
                            bundle = compile_constraints(
                                constraints, var, domains[var]
                            )
                            if round_index > 0:
                                bundle = CompiledPruning(filters=bundle.filters)
                                if not bundle.filters:
                                    continue
                            before = len(lattices[var].level1_supports)
                            lattices[var].install_pruning(bundle)
                            after = len(lattices[var].level1_supports)
                            span.set(
                                **{
                                    f"l1_before_{var}": before,
                                    f"l1_after_{var}": after,
                                }
                            )
                            if after != before:
                                changed = True
                                logger.debug(
                                    "reduction %s shrank %s L1: %d -> %d",
                                    reduction.view, var, before, after,
                                )
                round_span.set(changed=changed)
            if round_index > 0 and not changed:
                break

    def _setup_jmax(self, lattices) -> List[str]:
        disabled: List[str] = []
        for jplan in self.plan.jmax:
            bound_lattice = lattices[jplan.bound_var]
            if bound_lattice.pruning.buckets or bound_lattice.pruning.am_checks:
                # The series needs *all* frequent sets over the bound
                # side's universe; buckets/AM checks hide some, so using
                # the series would be unsound.  Item filters are fine.
                disabled.append(
                    f"{jplan.source}: bound side {jplan.bound_var} has "
                    f"non-filter pruning; series disabled"
                )
                continue
            with self.tracer.span(
                "jmax.start",
                source=jplan.source,
                bound_var=jplan.bound_var,
                bound_kind=jplan.bound_kind,
                pruned_var=jplan.pruned_var,
            ) as span:
                domain = self.plan.var_plans[jplan.bound_var].domain
                values = element_value_map(domain, jplan.bound_attr)
                series = BoundSeries(values=values, kind=jplan.bound_kind)
                start_bound = series.start(tuple(bound_lattice.level1_supports))
                span.set(start_bound=start_bound)
            self._install_dynamic_check(lattices[jplan.pruned_var], jplan, series)
            self._series.append((jplan, series))
            self._bound_side_done[jplan.bound_var] = False
        return disabled

    def _install_dynamic_check(
        self, lattice: ConstrainedLattice, jplan: JmaxPlan, series: BoundSeries
    ) -> None:
        domain = self.plan.var_plans[jplan.pruned_var].domain
        values = element_value_map(domain, jplan.pruned_attr)
        strict = jplan.strict
        func = jplan.pruned_func

        def within_bound(total: float) -> bool:
            return total < series.bound if strict else total <= series.bound

        if func in ("sum", "max"):
            # sum <= W and max <= W are anti-monotone: prune candidates.
            if func == "sum":
                def check(elements):
                    return within_bound(sum(values[e] for e in elements))
            else:
                def check(elements):
                    return within_bound(max(values[e] for e in elements))

            lattice.install_pruning(
                CompiledPruning(
                    am_checks=[AntiMonotoneCheck(check, jplan.source)]
                )
            )
        else:
            # min <= W and avg <= W are not anti-monotone; push the static
            # L1 relaxation as a bucket and verify against the final bound
            # in a post-filter (the bound only tightens, so deferring to
            # the end is sound and strictly stronger).
            start_bound = series.bound
            bucket = frozenset(
                e for e, v in values.items()
                if (v < start_bound if strict else v <= start_bound)
            )

            def post(elements):
                measured = (
                    min(values[e] for e in elements)
                    if func == "min"
                    else sum(values[e] for e in elements) / len(elements)
                )
                return within_bound(measured)

            lattice.install_pruning(
                CompiledPruning(
                    buckets=[RequiredBucket(bucket, f"{jplan.source} (L1 bound)")],
                    post_filters=[PostFilter(post, jplan.source)],
                )
            )

    # ------------------------------------------------------------------
    # Level loops
    # ------------------------------------------------------------------
    def _run_dovetailed(self, lattices) -> None:
        while True:
            active = [lattice for lattice in lattices.values() if lattice.active]
            if not active:
                break
            # Generate first: a level with no candidates anywhere needs no
            # database pass.
            pending = [
                (lattice, candidates)
                for lattice in active
                for candidates in [lattice.candidates()]
                if candidates
            ]
            if not pending:
                break
            self._record_level_scan(n_active=1)
            for lattice, candidates in pending:
                level = len(candidates[0])
                with self.tracer.span(
                    "level",
                    var=lattice.var,
                    level=level,
                    candidates_in=len(candidates),
                ) as span:
                    support = self._count_level(lattice, candidates, level)
                    lattice.absorb(support)
                    self._finish_level_span(
                        span, lattice, level, len(candidates), attach_shards=True
                    )
                self.guard.level_completed(lattice.var, level)
            self._update_series(lattices)
            self._level_boundary(lattices)

    def _run_sequential(self, lattices) -> None:
        # Bound-side variables first, so the pruned side sees the final
        # (global-maximum) bound — the non-dovetailed strategy the paper
        # discusses at the end of Section 5.2.
        bound_vars = [jplan.bound_var for jplan, __ in self._series]
        order = sorted(lattices, key=lambda v: (v not in bound_vars, v))
        for var in order:
            lattice = lattices[var]
            while lattice.active:
                candidates = lattice.candidates()
                if not candidates:
                    break
                self._record_level_scan(n_active=1)
                level = len(candidates[0])
                with self.tracer.span(
                    "level",
                    var=lattice.var,
                    level=level,
                    candidates_in=len(candidates),
                ) as span:
                    support = self._count_level(lattice, candidates, level)
                    lattice.absorb(support)
                    self._finish_level_span(
                        span, lattice, level, len(candidates), attach_shards=True
                    )
                self.guard.level_completed(lattice.var, level)
                self._update_series(lattices, only_var=var)
                self._level_boundary(lattices)

    def _update_series(self, lattices, only_var: Optional[str] = None) -> None:
        for jplan, series in self._series:
            var = jplan.bound_var
            if only_var is not None and var != only_var:
                continue
            lattice = lattices[var]
            level = lattice.level
            if level >= 2 and level in lattice.frequent:
                already = [k for k, __ in series.history]
                if level not in already:
                    bound = series.update(level, lattice.frequent[level].keys())
                    self._record_bound_update(jplan, level, bound, lattices)
            if not lattice.active and not self._bound_side_done.get(var, True):
                # No frequent sets beyond the last level: the bound
                # collapses to the maximum over the enumerated sets.
                final_level = max(lattice.level, 2) + 1
                bound = series.update(final_level, [])
                self._record_bound_update(jplan, final_level, bound, lattices)
                self._bound_side_done[var] = True

    def _record_bound_update(self, jplan, level, bound, lattices) -> None:
        """Trace one ``W^k`` tightening and how much pruning the dynamic
        check installed from it has achieved so far on the lesser side."""
        if not self.tracer.enabled:
            return
        pruned_lattice = lattices[jplan.pruned_var]
        kills = sum(
            counts.get(f"am:{jplan.source}", 0)
            for counts in pruned_lattice.prune_counts.values()
        )
        self.tracer.event(
            "jmax.bound",
            source=jplan.source,
            bound_var=jplan.bound_var,
            level=level,
            bound=bound,
            candidates_killed_so_far=kills,
        )
        self.tracer.metrics.set_gauge(
            "jmax_bound", bound, source=jplan.source, level=level
        )

    def _record_level_scan(self, n_active: int) -> None:
        # Oracle-served passes touch no transactions: supports come from
        # the cached skeleton, so there is no physical pass to record.
        if self.support_oracle is not None:
            return
        # Dovetailing shares one physical pass across all lattices of the
        # level; sequential execution pays one pass per lattice per level.
        passes = 1 if self.dovetail else n_active
        for __ in range(passes):
            self.counters.record_scan(len(self.db))
