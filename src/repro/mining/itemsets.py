"""Itemset helpers — re-exported from :mod:`repro.itemsets`.

The implementations live at the package top level so that core modules
(which the mining engine itself depends on) can use them without closing
an import cycle through ``repro.mining``.
"""

from repro.itemsets import (
    Itemset,
    all_nonempty_subsets,
    canonical,
    flatten,
    max_level,
    proper_subsets,
    ranked,
    subsets_of_size,
)

__all__ = [
    "Itemset",
    "all_nonempty_subsets",
    "canonical",
    "flatten",
    "max_level",
    "proper_subsets",
    "ranked",
    "subsets_of_size",
]
