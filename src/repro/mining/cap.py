"""CAP: constraint-pushing levelwise mining for 1-var constraints.

The CAP algorithm (Ng et al., SIGMOD 1998) pushes 1-var constraints into
the Apriori lattice according to their properties.  Here it is a thin
assembly: each constraint is normalized (:class:`OneVarView`), compiled to
operational pruning forms (:func:`compile_onevar`) and installed into a
:class:`~repro.mining.lattice.ConstrainedLattice`, which realizes the four
CAP cases:

* succinct + anti-monotone  -> item filter (generate-only);
* succinct, not anti-monotone -> required bucket (member generating
  function, bucket elements ordered first);
* anti-monotone, not succinct -> anti-monotone candidate check;
* neither -> sound relaxation where one exists, plus a final post-filter.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.constraints.ast import Constraint
from repro.constraints.onevar import OneVarView
from repro.constraints.pruners import CompiledPruning, compile_onevar
from repro.db.domain import Domain
from repro.db.stats import OpCounters
from repro.errors import ConstraintTypeError, RunInterrupted
from repro.mining.backends import backend_scope
from repro.mining.lattice import ConstrainedLattice, LatticeResult
from repro.obs.trace import resolve_tracer
from repro.runtime.guard import resolve_guard


def compile_constraints(
    constraints: Sequence[Constraint], var: str, domain: Domain
) -> CompiledPruning:
    """Compile a conjunction of 1-var constraints on ``var`` into one
    pruning bundle."""
    bundle = CompiledPruning()
    for constraint in constraints:
        view = OneVarView.of(constraint)
        if view.var != var:
            raise ConstraintTypeError(
                f"constraint {constraint} is on {view.var!r}, expected {var!r}"
            )
        bundle.extend(compile_onevar(view, domain))
    return bundle


def mine_skeleton(
    var: str,
    domain: Domain,
    transactions: Sequence[Tuple[int, ...]],
    min_count: int,
    counters: Optional[OpCounters] = None,
    max_level: Optional[int] = None,
    backend=None,
    tracer=None,
    guard=None,
    keep_border: bool = True,
) -> LatticeResult:
    """Plain unconstrained Apriori over one domain — the *frequency
    skeleton* the serving layer caches per (dataset, domain).

    Exactly :func:`cap_mine` with no constraints: the complete frequent
    lattice at ``min_count`` with exact supports, which
    :class:`repro.serve.skeleton.SupportOracle` then substitutes for
    database passes when serving queries at thresholds ``>= min_count``.
    Kept as a named entry point so skeleton mining is traceable (its
    ``cap.run`` span carries the skeleton's variable and threshold) and
    so the batch executor has a single audited code path to mine at the
    union (weakest) threshold of a query batch.

    ``keep_border`` (default on) additionally retains the counted-but-
    infrequent candidates per level — the negative border that turns
    skeleton maintenance under churn into delta arithmetic
    (:mod:`repro.serve.delta`).
    """
    return cap_mine(
        var=var,
        domain=domain,
        transactions=transactions,
        min_count=min_count,
        constraints=(),
        counters=counters,
        max_level=max_level,
        backend=backend,
        tracer=tracer,
        guard=guard,
        keep_border=keep_border,
    )


def cap_mine(
    var: str,
    domain: Domain,
    transactions: Sequence[Tuple[int, ...]],
    min_count: int,
    constraints: Sequence[Constraint] = (),
    counters: Optional[OpCounters] = None,
    max_level: Optional[int] = None,
    backend=None,
    tracer=None,
    guard=None,
    keep_border: bool = False,
) -> LatticeResult:
    """Run CAP for one variable.

    Parameters
    ----------
    var:
        Variable name.
    domain:
        The variable's domain (supplies elements and attribute values).
    transactions:
        Transactions projected onto the domain.
    min_count:
        Absolute support threshold.
    constraints:
        The 1-var constraints to push (all must be on ``var``).
    backend:
        Counting backend name or instance (see
        :mod:`repro.mining.backends`); defaults to the hybrid strategy.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; records one ``level``
        span per mining level with candidate/pruning attributes.
    guard:
        Optional :class:`~repro.runtime.guard.RunGuard`; when a budget
        trips, the raised :class:`~repro.errors.RunInterrupted` carries
        the completed levels as its ``partial`` payload (a
        :class:`LatticeResult`).
    """
    tracer = resolve_tracer(tracer)
    guard = resolve_guard(guard).start()
    pruning = compile_constraints(constraints, var, domain)
    lattice = ConstrainedLattice(
        var=var,
        elements=domain.elements,
        transactions=transactions,
        min_count=min_count,
        pruning=pruning,
        counters=counters,
        max_level=max_level,
        keep_border=keep_border,
        backend=backend,
        guard=guard,
    )
    # One backend scope per mining run: a parallel backend forks its
    # worker pool once and reuses it across every level.
    with tracer.span(
        "cap.run",
        var=var,
        min_count=min_count,
        constraints=[str(c) for c in constraints] if tracer.enabled else None,
        backend=getattr(lattice.backend, "name", None) or "hybrid",
    ):
        with backend_scope(lattice.backend):
            try:
                while True:
                    level = lattice.level + 1
                    with tracer.span("level", var=var, level=level) as span:
                        progressed = lattice.count_and_absorb()
                        if tracer.enabled:
                            span.set(
                                candidates_in=lattice.counted_per_level.get(level, 0),
                                frequent_out=len(lattice.frequent.get(level, {})),
                                pruned=dict(lattice.prune_counts.get(level, {})),
                            )
                    if not progressed:
                        break
            except RunInterrupted as exc:
                exc.partial = lattice.result()
                raise
    return lattice.result()
