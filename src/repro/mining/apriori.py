"""Classic Apriori: all frequent sets, no constraints.

This is the unconstrained base case of
:class:`~repro.mining.lattice.ConstrainedLattice` and the substrate of the
paper's baseline ``Apriori+``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import RunInterrupted
from repro.mining.backends import backend_scope
from repro.mining.lattice import ConstrainedLattice, LatticeResult
from repro.obs.trace import resolve_tracer
from repro.runtime.guard import resolve_guard


def mine_frequent(
    transactions: Sequence[Tuple[int, ...]],
    elements: Iterable[int],
    min_count: int,
    counters: Optional[OpCounters] = None,
    var: str = "S",
    max_level: Optional[int] = None,
    backend=None,
    tracer=None,
    guard=None,
) -> LatticeResult:
    """Mine all frequent itemsets from pre-projected transactions.

    Parameters
    ----------
    transactions:
        Transactions as tuples of element ids (already projected onto the
        variable's domain if applicable).
    elements:
        The element universe.
    min_count:
        Absolute support threshold.
    counters:
        Operation counters to meter the run with.
    var:
        Label under which counted work is recorded.
    max_level:
        Optional cap on lattice depth.
    backend:
        Counting backend name or instance (see
        :mod:`repro.mining.backends`); defaults to the hybrid strategy.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; records one ``level``
        span per mining level.
    guard:
        Optional :class:`~repro.runtime.guard.RunGuard`; when a budget
        trips, the raised :class:`~repro.errors.RunInterrupted` carries
        the completed levels as its ``partial`` payload (a
        :class:`LatticeResult`).
    """
    tracer = resolve_tracer(tracer)
    guard = resolve_guard(guard).start()
    lattice = ConstrainedLattice(
        var=var,
        elements=tuple(elements),
        transactions=transactions,
        min_count=min_count,
        counters=counters,
        max_level=max_level,
        backend=backend,
        guard=guard,
    )
    # One backend scope per mining run: a parallel backend forks its
    # worker pool once and reuses it across every level.
    with tracer.span("apriori.run", var=var, min_count=min_count):
        with backend_scope(lattice.backend):
            try:
                while True:
                    level = lattice.level + 1
                    with tracer.span("level", var=var, level=level) as span:
                        progressed = lattice.count_and_absorb()
                        if tracer.enabled:
                            span.set(
                                candidates_in=lattice.counted_per_level.get(level, 0),
                                frequent_out=len(lattice.frequent.get(level, {})),
                                pruned=dict(lattice.prune_counts.get(level, {})),
                            )
                    if not progressed:
                        break
            except RunInterrupted as exc:
                exc.partial = lattice.result()
                raise
    return lattice.result()


def apriori(
    db: TransactionDatabase,
    minsup: float,
    elements: Optional[Iterable[int]] = None,
    counters: Optional[OpCounters] = None,
    max_level: Optional[int] = None,
    backend=None,
    tracer=None,
    guard=None,
) -> LatticeResult:
    """Classic Apriori over a transaction database.

    ``minsup`` is relative (a fraction of the database size); ``elements``
    defaults to the items occurring in the database.
    """
    universe = tuple(sorted(elements)) if elements is not None else tuple(
        sorted(db.item_universe())
    )
    return mine_frequent(
        db.transactions,
        universe,
        db.min_count(minsup),
        counters=counters,
        max_level=max_level,
        backend=backend,
        tracer=tracer,
        guard=guard,
    )
