"""Mining strategies: Apriori, Apriori+, CAP and the dovetailed engine.

The module layering mirrors the paper's Figure 7:

* :mod:`repro.mining.counting` / :mod:`repro.mining.candidates` — the
  levelwise substrate (support counting, apriori-gen join + prune);
* :mod:`repro.mining.lattice` — :class:`ConstrainedLattice`, the CAP-style
  stepper for one variable: item filters, required buckets (member
  generating functions), anti-monotone checks, post-filters;
* :mod:`repro.mining.apriori` — classic unconstrained Apriori;
* :mod:`repro.mining.aprioriplus` — the paper's baseline ``Apriori+``;
* :mod:`repro.mining.cap` — single-variable CAP entry point;
* :mod:`repro.mining.fm` — the full-materialization counterexample of
  Section 6.2;
* :mod:`repro.mining.dovetail` — the dual-lattice dovetailed engine with
  the quasi-succinct reduction hook (after level 1) and the ``J^k_max``
  hook (every level).
"""

from repro.mining.apriori import apriori, mine_frequent
from repro.mining.aprioriplus import AprioriPlusResult, apriori_plus
from repro.mining.cap import cap_mine
from repro.mining.dovetail import DovetailEngine, DovetailResult
from repro.mining.fm import full_materialization
from repro.mining.lattice import ConstrainedLattice, LatticeResult

__all__ = [
    "apriori",
    "mine_frequent",
    "AprioriPlusResult",
    "apriori_plus",
    "cap_mine",
    "DovetailEngine",
    "DovetailResult",
    "full_materialization",
    "ConstrainedLattice",
    "LatticeResult",
]
