"""Candidate generation: the apriori-gen join + prune, bucket-aware.

Generation works in *rank space*: itemsets are tuples sorted by a per-run
rank.  For unconstrained mining the rank is the element id; for CAP's
member-generating-function case (a required bucket), bucket elements get
the lowest ranks, so any candidate containing a bucket element has one in
front — which makes "the candidate hits the bucket" a structural property
of the join rather than a constraint check (this is what lets CAP meet
condition (2) of ccc-optimality for succinct constraints).

The prune step is *validity-aware*: under constraints, only subsets that
would themselves have been valid candidates had their support counted, so
the caller supplies a predicate saying which subsets must be checked for
frequency.  This is CAP's relaxation of the classic prune; it is sound
because frequency of invalid subsets is simply unknown, never assumed.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.mining.itemsets import Itemset

SubsetGate = Callable[[Itemset], bool]


def generate_pairs(
    level1: Sequence[int],
    pair_admissible: Optional[Callable[[int, int], bool]] = None,
) -> List[Itemset]:
    """All 2-candidates from frequent 1-sets, in rank space.

    ``level1`` must already be sorted by rank.  ``pair_admissible`` is the
    structural admission test (e.g. "the lower-ranked element is in the
    required bucket"); pairs failing it are never materialized.
    """
    pairs: List[Itemset] = []
    n = len(level1)
    for i in range(n):
        a = level1[i]
        for j in range(i + 1, n):
            b = level1[j]
            if pair_admissible is None or pair_admissible(a, b):
                pairs.append((a, b))
    return pairs


def join_and_prune(
    frequent_prev: Set[Itemset],
    k: int,
    subset_gate: Optional[SubsetGate] = None,
) -> List[Itemset]:
    """The apriori-gen step for k >= 3, in rank space.

    Parameters
    ----------
    frequent_prev:
        Frequent (and valid) (k-1)-itemsets as rank-space tuples.
    k:
        Target candidate size.
    subset_gate:
        Predicate deciding whether a (k-1)-subset *would have been a
        candidate* (valid under the installed pruning).  Only gated
        subsets are required to appear in ``frequent_prev``.  ``None``
        means the classic prune (every subset must be frequent).

    Returns
    -------
    Candidates as rank-space k-tuples.
    """
    if k < 3:
        raise ValueError("join_and_prune handles k >= 3; use generate_pairs for k=2")
    by_prefix: Dict[Itemset, List[int]] = {}
    for itemset in frequent_prev:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])

    candidates: List[Itemset] = []
    for prefix, tails in by_prefix.items():
        if len(tails) < 2:
            continue
        tails.sort()
        for i in range(len(tails)):
            for j in range(i + 1, len(tails)):
                candidate = prefix + (tails[i], tails[j])
                if _prune_ok(candidate, frequent_prev, subset_gate):
                    candidates.append(candidate)
    return candidates


def _prune_ok(
    candidate: Itemset,
    frequent_prev: Set[Itemset],
    subset_gate: Optional[SubsetGate],
) -> bool:
    # The two subsets dropping one of the last two elements are the join
    # parents — present by construction; checking them anyway is cheap and
    # keeps the code obviously correct.
    for subset in combinations(candidate, len(candidate) - 1):
        if subset_gate is not None and not subset_gate(subset):
            continue
        if subset not in frequent_prev:
            return False
    return True
