"""``Apriori+``: the paper's baseline strategy.

Apriori+ first computes **all** frequent sets for each variable (plain
Apriori over the variable's domain) and only then checks them — and their
cross product — against the constraints.  It is the generate-and-test
extreme every optimization in the paper is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.pairs import form_valid_pairs, valid_sets_existential
from repro.core.query import CFQ
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import RunInterrupted
from repro.mining.itemsets import Itemset
from repro.mining.lattice import ConstrainedLattice, LatticeResult
from repro.obs.trace import resolve_tracer
from repro.runtime.guard import resolve_guard


@dataclass
class AprioriPlusResult:
    """All frequent sets per variable, plus post-hoc filtering helpers."""

    cfq: CFQ
    counters: OpCounters
    lattices: Dict[str, LatticeResult]

    def frequent(self, var: str) -> Dict[Itemset, int]:
        """All frequent sets of one variable (pre-filtering)."""
        return self.lattices[var].all_sets()

    def valid_sets(self, var: str) -> Dict[Itemset, int]:
        """Frequent sets of ``var`` participating in at least one valid pair."""
        variables = self.cfq.variables
        if len(variables) == 1:
            return valid_sets_existential(
                self.frequent(var), {}, self.cfq.parsed, var, var,
                self.cfq.domains, self.counters,
            )
        other = variables[0] if variables[1] == var else variables[1]
        return valid_sets_existential(
            self.frequent(var),
            self.frequent(other),
            self.cfq.parsed,
            var,
            other,
            self.cfq.domains,
            self.counters,
        )

    def pairs(self, limit: Optional[int] = None) -> List[Tuple[Itemset, Itemset]]:
        """The frequent valid pairs — the CFQ's answer."""
        s_var, t_var = self.cfq.variables
        return form_valid_pairs(
            self.frequent(s_var),
            self.frequent(t_var),
            self.cfq.parsed,
            self.cfq.domains,
            s_var=s_var,
            t_var=t_var,
            counters=self.counters,
            limit=limit,
        )


def apriori_plus(
    db: TransactionDatabase,
    cfq: CFQ,
    counters: Optional[OpCounters] = None,
    max_level: Optional[int] = None,
    tracer=None,
    guard=None,
) -> AprioriPlusResult:
    """Run the Apriori+ baseline for a CFQ.

    The mining phase ignores every constraint; each variable's lattice
    runs over its full domain, paying one scan per level.  A tripped
    ``guard`` raises :class:`~repro.errors.RunInterrupted` whose
    ``partial`` payload maps each variable to the levels it completed
    (variables not yet started map to empty results).
    """
    tracer = resolve_tracer(tracer)
    guard = resolve_guard(guard).start()
    counters = counters if counters is not None else OpCounters()
    lattices: Dict[str, LatticeResult] = {}
    cap = max_level if max_level is not None else cfq.max_level
    with tracer.span("aprioriplus.run", query=str(cfq)):
        for var in cfq.variables:
            domain = cfq.domains[var]
            projected = [domain.project(t) for t in db.transactions]
            lattice = ConstrainedLattice(
                var=var,
                elements=domain.elements,
                transactions=projected,
                min_count=db.min_count(cfq.minsup_for(var)),
                counters=counters,
                max_level=cap,
                guard=guard,
            )
            try:
                while True:
                    level = lattice.level + 1
                    with tracer.span("level", var=var, level=level) as span:
                        progressed = lattice.count_and_absorb()
                        if tracer.enabled:
                            span.set(
                                candidates_in=lattice.counted_per_level.get(level, 0),
                                frequent_out=len(lattice.frequent.get(level, {})),
                                pruned=dict(lattice.prune_counts.get(level, {})),
                            )
                    if not progressed:
                        break
            except RunInterrupted as exc:
                partial = dict(lattices)
                partial[var] = lattice.result()
                for missing in cfq.variables:
                    if missing not in partial:
                        partial[missing] = LatticeResult(
                            var=missing, frequent={}, level1_supports={},
                            counted_per_level={},
                        )
                exc.partial = partial
                raise
            lattices[var] = lattice.result()
    return AprioriPlusResult(cfq=cfq, counters=counters, lattices=lattices)
