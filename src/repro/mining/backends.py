"""Pluggable support-counting backends.

The levelwise miners delegate per-level counting to a backend with the
signature::

    backend.count(transactions, candidates, k, counters, var) -> {itemset: support}

Three are provided (and compared in the backend ablation benchmark):

``HybridBackend``
    The default of :mod:`repro.mining.counting`: per transaction, pick
    the cheaper of subset enumeration and candidate scanning.
``HashTreeBackend``
    The original Apriori candidate hash tree [2].
``VerticalBackend``
    TID-list intersections (vertical layout), rebuilt per level from the
    (possibly trimmed) transaction list.

All backends meter their work into ``counters.subset_tests`` using
comparable units (elementary probes), so the operation-count cost model
remains meaningful across backends.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.db.stats import OpCounters
from repro.itemsets import Itemset
from repro.mining.counting import count_candidates
from repro.mining.hashtree import build_hash_tree
from repro.mining.vertical import build_tidlists, count_with_tidlists


class HybridBackend:
    """The default enumerate-or-scan strategy."""

    name = "hybrid"

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        return count_candidates(transactions, candidates, k, counters, var)


class HashTreeBackend:
    """Counting through the classic Apriori hash tree."""

    name = "hashtree"

    def __init__(self, leaf_size: int = 8, fanout: int = 16):
        self.leaf_size = leaf_size
        self.fanout = fanout

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        tree = build_hash_tree(candidates, k, self.leaf_size, self.fanout)
        return tree.count(transactions, counters, var)


class VerticalBackend:
    """Counting through TID-list intersections.

    TID-lists are cached per transaction-list object, so repeated levels
    over the same (untrimmed) list pay the build once.
    """

    name = "vertical"

    def __init__(self):
        self._cache_key: Optional[int] = None
        self._cache_len: int = -1
        self._tidlists: Dict[int, frozenset] = {}

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        key = id(transactions)
        if key != self._cache_key or len(transactions) != self._cache_len:
            self._tidlists = build_tidlists(transactions)
            self._cache_key = key
            self._cache_len = len(transactions)
        return count_with_tidlists(
            self._tidlists, candidates, counters, var, k=k
        )


BACKENDS = {
    "hybrid": HybridBackend,
    "hashtree": HashTreeBackend,
    "vertical": VerticalBackend,
}


def make_backend(name_or_backend) -> object:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(name_or_backend, str):
        try:
            return BACKENDS[name_or_backend]()
        except KeyError:
            raise ValueError(
                f"unknown counting backend {name_or_backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            ) from None
    return name_or_backend
