"""Pluggable support-counting backends.

The levelwise miners delegate per-level counting to a backend with the
signature::

    backend.count(transactions, candidates, k, counters, var) -> {itemset: support}

Four are provided (and compared in the backend ablation benchmark):

``HybridBackend``
    The default of :mod:`repro.mining.counting`: per transaction, pick
    the cheaper of subset enumeration and candidate scanning.
``HashTreeBackend``
    The original Apriori candidate hash tree [2].
``VerticalBackend``
    TID-list intersections (vertical layout), rebuilt per level from the
    (possibly trimmed) transaction list.
``ParallelBackend``
    Transaction-sharded counting: the transaction list is split into N
    contiguous shards, each counted with the hybrid kernel in a worker
    process, and the per-shard ``{itemset: support}`` maps and
    :class:`~repro.db.stats.OpCounters` deltas are merged into results
    identical to ``HybridBackend`` (supports sum across shards; the
    candidate-set ledger is recorded once — see
    :func:`repro.db.stats.merge_shard_counters`).

All backends meter their work into ``counters.subset_tests`` using
comparable units (elementary probes), so the operation-count cost model
remains meaningful across backends.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.stats import OpCounters, ParallelStats, merge_shard_counters
from repro.errors import ExecutionError
from repro.itemsets import Itemset
from repro.mining.counting import count_candidates
from repro.mining.hashtree import build_hash_tree
from repro.mining.vertical import build_tidlists, count_with_tidlists


class HybridBackend:
    """The default enumerate-or-scan strategy."""

    name = "hybrid"

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        return count_candidates(transactions, candidates, k, counters, var)


class HashTreeBackend:
    """Counting through the classic Apriori hash tree."""

    name = "hashtree"

    def __init__(self, leaf_size: int = 8, fanout: int = 16):
        self.leaf_size = leaf_size
        self.fanout = fanout

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        tree = build_hash_tree(candidates, k, self.leaf_size, self.fanout)
        return tree.count(transactions, counters, var)


class VerticalBackend:
    """Counting through TID-list intersections.

    TID-lists are cached per transaction-list object, so repeated levels
    over the same (untrimmed) list pay the build once.
    """

    name = "vertical"

    def __init__(self):
        self._cache_key: Optional[int] = None
        self._cache_len: int = -1
        self._tidlists: Dict[int, frozenset] = {}

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        key = id(transactions)
        if key != self._cache_key or len(transactions) != self._cache_len:
            self._tidlists = build_tidlists(transactions)
            self._cache_key = key
            self._cache_len = len(transactions)
        return count_with_tidlists(
            self._tidlists, candidates, counters, var, k=k
        )


# ----------------------------------------------------------------------
# Transaction-sharded parallel counting
# ----------------------------------------------------------------------
def shard_transactions(
    transactions: Sequence[Tuple[int, ...]], n_shards: int
) -> List[List[Tuple[int, ...]]]:
    """Partition ``transactions`` into ``n_shards`` contiguous shards.

    Shards are size-balanced (sizes differ by at most one) and preserve
    transaction order, so the split is deterministic for a given input.
    Trailing shards may be empty when there are fewer transactions than
    shards; they still participate in the merge so counter merging stays
    uniform.
    """
    if n_shards < 1:
        raise ExecutionError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(len(transactions), n_shards)
    shards: List[List[Tuple[int, ...]]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(list(transactions[start:start + size]))
        start += size
    return shards


def merge_shard_supports(
    per_shard: Sequence[Dict[Itemset, int]],
    candidates: Sequence[Itemset],
) -> Dict[Itemset, int]:
    """Sum per-shard support maps over the shared candidate list.

    The result is keyed in candidate order — the same insertion order
    :func:`~repro.mining.counting.count_candidates` produces — so a
    merged sharded count is indistinguishable from a serial one, keys
    included.  Addition is commutative and associative, so any shard
    order or grouping yields the same map (property-tested in
    ``tests/test_parallel_merge.py``).
    """
    merged: Dict[Itemset, int] = dict.fromkeys(candidates, 0)
    for shard_support in per_shard:
        for itemset, support in shard_support.items():
            merged[itemset] += support
    return merged


def count_shard(
    shard: Sequence[Tuple[int, ...]],
    candidates: Sequence[Itemset],
    k: int,
    var: str,
) -> Tuple[Dict[Itemset, int], OpCounters, float]:
    """Count one shard with the hybrid kernel (worker entry point).

    Returns the shard's support map, its private counter deltas, and its
    wall time.  Module-level so it pickles for ``multiprocessing.Pool``.
    """
    counters = OpCounters()
    start = time.perf_counter()
    support = count_candidates(shard, candidates, k, counters, var)
    return support, counters, time.perf_counter() - start


def _count_shard_task(args) -> Tuple[Dict[Itemset, int], OpCounters, float]:
    return count_shard(*args)


def default_workers() -> int:
    """Default worker count: up to four, bounded by the visible CPUs."""
    return max(1, min(4, os.cpu_count() or 1))


class ParallelBackend:
    """Transaction-sharded parallel counting with a serial fallback.

    Parameters
    ----------
    workers:
        Number of shards / worker processes (defaults to
        :func:`default_workers`).
    shard_threshold:
        Inputs with fewer transactions than this are counted in-process
        (still sharded and merged, so the code path and metering are
        identical) — forking a pool for a tiny list costs more than the
        count itself.  Set to 0 to force the pool whenever ``workers > 1``.

    Results are bit-identical to :class:`HybridBackend`: supports are
    per-transaction sums, so they distribute over any partition of the
    transaction list, and the hybrid kernel's probe metering is likewise
    a per-transaction sum (see :mod:`repro.mining.counting`).  Shard
    timings accumulate on :attr:`stats` (:class:`~repro.db.stats.ParallelStats`).
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_threshold: int = 512,
    ):
        if workers is None:
            workers = default_workers()
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise ExecutionError(f"workers must be an integer, got {workers!r}")
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        if shard_threshold < 0:
            raise ExecutionError(
                f"shard_threshold must be >= 0, got {shard_threshold}"
            )
        self.workers = workers
        self.shard_threshold = shard_threshold
        self.stats = ParallelStats()

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        shards = shard_transactions(transactions, self.workers)
        tasks = [(shard, list(candidates), k, var) for shard in shards]
        in_process = (
            self.workers == 1 or len(transactions) < self.shard_threshold
        )
        if in_process:
            outcomes = [_count_shard_task(task) for task in tasks]
        else:
            with multiprocessing.Pool(self.workers) as pool:
                outcomes = pool.map(_count_shard_task, tasks, chunksize=1)
        merge_start = time.perf_counter()
        supports = merge_shard_supports([o[0] for o in outcomes], candidates)
        shard_total = merge_shard_counters([o[1] for o in outcomes])
        if counters is not None:
            counters.subset_tests += shard_total.subset_tests
            for (v, level), n_sets in shard_total.support_counted.items():
                counters.record_counted(v, level, n_sets)
        merge_seconds = time.perf_counter() - merge_start
        self.stats.record_level(
            shard_sizes=[len(shard) for shard in shards],
            shard_seconds=[o[2] for o in outcomes],
            merge_seconds=merge_seconds,
            in_process=in_process,
        )
        return supports


BACKENDS = {
    "hybrid": HybridBackend,
    "hashtree": HashTreeBackend,
    "vertical": VerticalBackend,
    "parallel": ParallelBackend,
}


def make_backend(name_or_backend) -> object:
    """Resolve a backend name (or pass an instance through).

    ``"parallel"`` accepts an optional worker suffix: ``"parallel:4"``
    builds a :class:`ParallelBackend` with four workers.
    """
    if isinstance(name_or_backend, str):
        name, sep, arg = name_or_backend.partition(":")
        if sep and name != "parallel":
            raise ValueError(
                f"backend {name!r} takes no {arg!r} argument; only "
                f"'parallel:<workers>' is parameterized"
            )
        if sep:
            try:
                workers = int(arg)
            except ValueError:
                raise ValueError(
                    f"invalid worker count {arg!r} in {name_or_backend!r}"
                ) from None
            return ParallelBackend(workers=workers)
        try:
            return BACKENDS[name]()
        except KeyError:
            raise ValueError(
                f"unknown counting backend {name_or_backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            ) from None
    return name_or_backend
