"""Pluggable support-counting backends.

The levelwise miners delegate per-level counting to a backend with the
signature::

    backend.count(transactions, candidates, k, counters, var) -> {itemset: support}

Five are provided (and compared in the backend ablation benchmark):

``HybridBackend``
    The default of :mod:`repro.mining.counting`: per transaction, pick
    the cheaper of subset enumeration and candidate scanning.
``HashTreeBackend``
    The original Apriori candidate hash tree [2].
``VerticalBackend``
    TID-list intersections (vertical layout), rebuilt per level from the
    (possibly trimmed) transaction list.
``BitmapBackend``
    Vectorized vertical counting: per-item TID bitmaps packed as numpy
    uint64 rows, candidate support = popcount of row-AND intersections,
    whole candidate batches counted as matrix ops
    (:mod:`repro.mining.bitmap`).
``ParallelBackend``
    Transaction-sharded counting: the transaction list is split into N
    contiguous shards, each counted with the hybrid or bitmap kernel
    (``kernel=``) in a worker process, and the per-shard
    ``{itemset: support}`` maps and
    :class:`~repro.db.stats.OpCounters` deltas are merged into results
    identical to the serial backend (supports sum across shards; the
    candidate-set ledger is recorded once — see
    :func:`repro.db.stats.merge_shard_counters`).  Both shardable
    kernels meter per-transaction-additive work, so merged counters are
    bit-identical to a serial run's; the vertical TID-list kernel is
    *not* shardable for exactly that reason (its intersection metering
    depends on TID-list sizes — see :mod:`repro.mining.vertical`).

All backends meter their work into ``counters.subset_tests`` using
comparable units (elementary probes), so the operation-count cost model
remains meaningful across backends.

Lifecycle
---------
Backends that hold expensive resources (the worker pool of
:class:`ParallelBackend`) expose ``open()``/``close()`` and the context
manager protocol.  Every driver (:func:`repro.mining.apriori.mine_frequent`,
:func:`repro.mining.cap.cap_mine`,
:class:`repro.mining.dovetail.DovetailEngine`) wraps its level loop in
:func:`backend_scope`, so the pool is forked **once per mining run** and
reused across all dovetailed levels, instead of once per level.  Scopes
nest (re-entrant refcount), so an outer caller — the CLI, a benchmark —
can hold the pool across several runs.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.db.stats import OpCounters, ParallelStats, merge_shard_counters
from repro.errors import ExecutionError, RunInterrupted
from repro.itemsets import Itemset
from repro.mining.bitmap import BitmapBackend
from repro.mining.counting import count_candidates
from repro.mining.hashtree import build_hash_tree
from repro.mining.vertical import build_tidlists, count_with_tidlists
from repro.obs.logs import get_logger

logger = get_logger(__name__)

#: Kernels :class:`ParallelBackend` can shard over TID ranges.  Both
#: meter per-transaction-additive work, so merged shard counters equal
#: the serial backend's (the differential harness asserts it).
SHARD_KERNELS = ("hybrid", "bitmap")

#: Per-process bitmap backend for sharded bitmap counting: pool workers
#: (and the in-process fallback path) reuse one instance so a shard's
#: matrix — keyed by content digest — is packed once per worker and
#: shared across all levels of a run, mirroring the serial backend's
#: cross-level cache.
_SHARD_BITMAP: Optional[BitmapBackend] = None


def _shard_bitmap() -> BitmapBackend:
    global _SHARD_BITMAP
    if _SHARD_BITMAP is None:
        _SHARD_BITMAP = BitmapBackend()
    return _SHARD_BITMAP


class HybridBackend:
    """The default enumerate-or-scan strategy."""

    name = "hybrid"

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
        guard=None,
    ) -> Dict[Itemset, int]:
        return count_candidates(transactions, candidates, k, counters, var,
                                guard=guard)


class HashTreeBackend:
    """Counting through the classic Apriori hash tree."""

    name = "hashtree"

    def __init__(self, leaf_size: int = 8, fanout: int = 16):
        self.leaf_size = leaf_size
        self.fanout = fanout

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
        guard=None,
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        # The tree kernel is not guard-instrumented; one full check per
        # pass still bounds a run to level granularity.
        if guard is not None and guard.enabled:
            guard.check("counting")
        tree = build_hash_tree(candidates, k, self.leaf_size, self.fanout)
        return tree.count(transactions, counters, var)


class VerticalBackend:
    """Counting through TID-list intersections.

    TID-lists are cached **by transaction-list content fingerprint**
    (:func:`repro.runtime.checkpoint.transactions_digest`), so two loads
    of the same dataset file — distinct list objects with equal content —
    share one TID-list build.  Keying on ``id()`` alone would miss that
    sharing (and could alias recycled ids); content keying makes the
    cache safe across independently loaded copies.  An ``id``-keyed memo
    in front avoids re-digesting the *same* list object on every level
    (the common case: a lattice reuses its trimmed list across levels);
    the memo keeps the list object alive so its id cannot be recycled
    under the memo.  ``builds`` counts actual TID-list constructions, so
    tests can assert the sharing.
    """

    name = "vertical"

    def __init__(self, max_cached_lists: int = 8):
        if max_cached_lists < 1:
            raise ExecutionError(
                f"max_cached_lists must be >= 1, got {max_cached_lists}"
            )
        self.max_cached_lists = max_cached_lists
        #: content digest -> TID-lists (bounded FIFO)
        self._cache: Dict[str, Dict[int, frozenset]] = {}
        #: id(list) -> (list object, content digest) memo (bounded FIFO)
        self._digests: Dict[int, Tuple[object, str]] = {}
        #: TID-list builds performed (cache misses); equal-content lists
        #: must not bump this twice.
        self.builds = 0

    def _fingerprint(self, transactions) -> str:
        memo = self._digests.get(id(transactions))
        if memo is not None and memo[0] is transactions:
            return memo[1]
        from repro.runtime.checkpoint import transactions_digest

        digest = transactions_digest(transactions)
        if len(self._digests) >= self.max_cached_lists:
            self._digests.pop(next(iter(self._digests)))
        self._digests[id(transactions)] = (transactions, digest)
        return digest

    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
        guard=None,
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        # TID-list intersections are not guard-instrumented; one full
        # check per pass still bounds a run to level granularity.
        if guard is not None and guard.enabled:
            guard.check("counting")
        key = self._fingerprint(transactions)
        tidlists = self._cache.get(key)
        if tidlists is None:
            tidlists = build_tidlists(transactions)
            self.builds += 1
            if len(self._cache) >= self.max_cached_lists:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = tidlists
        return count_with_tidlists(tidlists, candidates, counters, var, k=k)


# ----------------------------------------------------------------------
# Transaction-sharded parallel counting
# ----------------------------------------------------------------------
def shard_transactions(
    transactions: Sequence[Tuple[int, ...]], n_shards: int
) -> List[List[Tuple[int, ...]]]:
    """Partition ``transactions`` into ``n_shards`` contiguous shards.

    Shards are size-balanced (sizes differ by at most one) and preserve
    transaction order, so the split is deterministic for a given input.
    Trailing shards may be empty when there are fewer transactions than
    shards; they still participate in the merge so counter merging stays
    uniform.
    """
    if n_shards < 1:
        raise ExecutionError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(len(transactions), n_shards)
    shards: List[List[Tuple[int, ...]]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(list(transactions[start:start + size]))
        start += size
    return shards


def merge_shard_supports(
    per_shard: Sequence[Dict[Itemset, int]],
    candidates: Sequence[Itemset],
) -> Dict[Itemset, int]:
    """Sum per-shard support maps over the shared candidate list.

    The result is keyed in candidate order — the same insertion order
    :func:`~repro.mining.counting.count_candidates` produces — so a
    merged sharded count is indistinguishable from a serial one, keys
    included.  Addition is commutative and associative, so any shard
    order or grouping yields the same map (property-tested in
    ``tests/test_parallel_merge.py``).
    """
    merged: Dict[Itemset, int] = dict.fromkeys(candidates, 0)
    for shard_support in per_shard:
        for itemset, support in shard_support.items():
            merged[itemset] += support
    return merged


def count_shard(
    shard: Sequence[Tuple[int, ...]],
    candidates: Sequence[Itemset],
    k: int,
    var: str,
    guard=None,
    kernel: str = "hybrid",
) -> Tuple[Dict[Itemset, int], OpCounters, float]:
    """Count one shard with the hybrid or bitmap kernel (worker entry).

    Returns the shard's support map, its private counter deltas, and its
    wall time.  Module-level so it pickles for ``multiprocessing.Pool``.
    ``guard`` only ever arrives on the in-process path — cooperative
    checks cannot cross process boundaries, so pooled shards are
    cancelled from the parent instead (see ``ParallelBackend``).  The
    bitmap kernel counts through the per-process
    :class:`~repro.mining.bitmap.BitmapBackend`, whose content-digest
    cache packs each shard's matrix once per worker and reuses it across
    levels (shard slices are re-materialized per level, but their
    content — and hence the digest — is stable once level-1 trimming is
    done).
    """
    counters = OpCounters()
    start = time.perf_counter()
    if kernel == "bitmap":
        support = _shard_bitmap().count(
            shard, candidates, k, counters, var, guard=guard
        )
    else:
        support = count_candidates(shard, candidates, k, counters, var,
                                   guard=guard)
    return support, counters, time.perf_counter() - start


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic fault injection for pooled shard tasks (testing).

    Every task the pool runs carries a monotonically increasing sequence
    number (retries get fresh numbers); when a task's number is in
    ``seqs`` the injector fires *inside the worker process* before any
    counting happens:

    * ``"crash"`` — raise ``RuntimeError`` (the parent sees the exception
      through ``ApplyResult.get``);
    * ``"hang"`` — sleep ``hang_seconds`` (longer than the backend's
      ``shard_timeout``, so the parent times the shard out);
    * ``"kill"`` — hard-exit the worker via ``os._exit`` (the pool
      repopulates; the task's result never arrives, surfacing as a
      timeout in the parent).

    The injector only applies to pooled tasks — the in-process and
    serial-fallback paths are the recovery mechanism and run clean.
    """

    mode: str
    seqs: FrozenSet[int]
    hang_seconds: float = 30.0

    MODES = ("crash", "hang", "kill")

    def __post_init__(self):
        if self.mode not in self.MODES:
            raise ExecutionError(
                f"unknown fault mode {self.mode!r}; choose from {self.MODES}"
            )
        object.__setattr__(self, "seqs", frozenset(self.seqs))

    def fire(self, seq: int) -> None:
        """Inject the configured fault if ``seq`` is a target."""
        if seq not in self.seqs:
            return
        if self.mode == "crash":
            raise RuntimeError(f"injected worker crash (task {seq})")
        if self.mode == "hang":
            time.sleep(self.hang_seconds)
        elif self.mode == "kill":  # pragma: no cover - exits the worker
            os._exit(3)


def _count_shard_task(args) -> Tuple[Dict[Itemset, int], OpCounters, float]:
    """Pool task wrapper: optional fault injection, then the shard count."""
    shard, candidates, k, var, seq, injector, kernel = args
    if injector is not None:
        injector.fire(seq)
    if kernel == "hybrid":
        return count_shard(shard, candidates, k, var)
    return count_shard(shard, candidates, k, var, kernel=kernel)


def _count_shard_guarded(shard, candidates, k, var, guard, kernel="hybrid"):
    """In-process shard count, forwarding optional keywords only when set.

    ``count_shard`` is monkeypatchable (tests substitute four-argument
    fakes), so ``guard`` is only added when a run actually carries an
    enabled guard, and ``kernel`` only when it departs from the hybrid
    default.
    """
    kwargs = {}
    if guard is not None:
        kwargs["guard"] = guard
    if kernel != "hybrid":
        kwargs["kernel"] = kernel
    return count_shard(shard, candidates, k, var, **kwargs)


def default_workers() -> int:
    """Default worker count: up to four, bounded by the visible CPUs."""
    return max(1, min(4, os.cpu_count() or 1))


def _pool_worker_init() -> None:
    """Reset inherited signal dispositions in a freshly forked worker.

    The pool may be forked inside a ``RunGuard.signals()`` scope (the
    CLI does exactly that), and forked children inherit the parent's
    handlers.  The guard's handler only sets a cooperative-cancel flag,
    so a worker inheriting it would *survive* the SIGTERM that
    ``Pool.terminate()`` sends and wedge shutdown in its unbounded
    worker joins.  Workers therefore take the default SIGTERM action
    (die) and ignore SIGINT outright — a ctrl-C is the parent's to
    orchestrate: the guard turns it into a labeled partial result and
    then closes the pool deliberately.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class ParallelBackend:
    """Transaction-sharded parallel counting as a long-lived service.

    Parameters
    ----------
    workers:
        Number of shards / worker processes (defaults to
        :func:`default_workers`).
    shard_threshold:
        Inputs with fewer transactions than this are counted in-process
        (still sharded and merged, so the code path and metering are
        identical) — dispatching a tiny list to the pool costs more than
        the count itself.  Set to 0 to force the pool whenever
        ``workers > 1``.
    shard_timeout:
        Seconds to wait for one shard's result before treating it as
        failed (``None`` disables the timeout — then a killed worker's
        lost task would block forever, so the default keeps one).
    max_retries:
        How many times a failed shard is resubmitted to the pool before
        it degrades to in-process serial counting.
    kernel:
        Per-shard counting kernel, one of :data:`SHARD_KERNELS`:
        ``"hybrid"`` (the default pure-Python enumerate-or-scan) or
        ``"bitmap"`` (the vectorized uint64 kernel of
        :mod:`repro.mining.bitmap`).  Both kernels' supports *and*
        probe metering are additive over a transaction partition, so
        either choice yields merged results bit-identical to the
        matching serial backend.
    fault_injector:
        Optional :class:`FaultInjector` applied to pooled tasks (test
        hook; ``None`` in production).

    Lifecycle
    ---------
    The worker pool is forked lazily on first pooled count and then
    **reused across levels** until :meth:`close` (or the end of the
    enclosing :func:`backend_scope` / ``with`` block).  ``open()`` and
    ``close()`` nest; the pool dies when the outermost scope closes.
    ``stats.pool_forks`` counts actual forks, so one mining run must show
    exactly one.

    Fault tolerance
    ---------------
    A shard that crashes, times out, or loses its worker is retried up
    to ``max_retries`` times (fresh task, fresh sequence number); a shard
    that exhausts its retries is counted in-process — the run always
    completes with results bit-identical to :class:`HybridBackend`.  If
    the pool itself stops accepting work (or an entire level falls back)
    it is marked broken, torn down, and all remaining levels run
    in-process.  Every failure, retry, and fallback is recorded on
    :attr:`stats` (:class:`~repro.db.stats.ParallelStats`) and surfaced
    in ``--explain`` output.

    Results are bit-identical to :class:`HybridBackend`: supports are
    per-transaction sums, so they distribute over any partition of the
    transaction list, and the hybrid kernel's probe metering is likewise
    a per-transaction sum (see :mod:`repro.mining.counting`).
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        shard_threshold: int = 512,
        shard_timeout: Optional[float] = 60.0,
        max_retries: int = 2,
        fault_injector: Optional[FaultInjector] = None,
        kernel: str = "hybrid",
    ):
        if workers is None:
            workers = default_workers()
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise ExecutionError(f"workers must be an integer, got {workers!r}")
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        if shard_threshold < 0:
            raise ExecutionError(
                f"shard_threshold must be >= 0, got {shard_threshold}"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ExecutionError(
                f"shard_timeout must be positive or None, got {shard_timeout}"
            )
        if max_retries < 0:
            raise ExecutionError(f"max_retries must be >= 0, got {max_retries}")
        if kernel not in SHARD_KERNELS:
            raise ExecutionError(
                f"unknown shard kernel {kernel!r}; choose from {SHARD_KERNELS}"
            )
        self.workers = workers
        self.shard_threshold = shard_threshold
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.fault_injector = fault_injector
        self.kernel = kernel
        self.stats = ParallelStats(kernel=kernel)
        self._pool = None
        self._open_depth = 0
        self._broken = False
        self._task_seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "ParallelBackend":
        """Enter a (nestable) usage scope; the pool survives until the
        outermost matching :meth:`close`."""
        if self._open_depth == 0:
            # A fresh run gets a fresh chance even if a previous run
            # broke and tore down its pool.
            self._broken = False
        self._open_depth += 1
        return self

    def close(self) -> None:
        """Leave a usage scope; tear the pool down at the outermost one.

        Idempotent and unconditionally safe: extra calls (or calls on an
        already-broken or never-opened backend) are no-ops, and the
        shutdown itself never hangs (see :meth:`_shutdown_pool`), so
        ``close()`` can always run in ``finally`` blocks and
        ``atexit``-style teardown.
        """
        if self._open_depth > 0:
            self._open_depth -= 1
        if self._open_depth == 0:
            self._shutdown_pool()

    def __enter__(self) -> "ParallelBackend":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        self._shutdown_pool()

    @property
    def pool_open(self) -> bool:
        """Whether a live worker pool currently exists."""
        return self._pool is not None

    def _ensure_pool(self):
        if self._pool is None:
            logger.info("forking worker pool with %d workers", self.workers)
            self._pool = multiprocessing.Pool(
                self.workers, initializer=_pool_worker_init
            )
            self.stats.record_fork()
        return self._pool

    #: Seconds to wait for the pool to wind down before the shutdown
    #: hard-kills the remaining workers and abandons it (both
    #: ``Pool.terminate`` and ``Pool.join`` block without a timeout).
    JOIN_TIMEOUT = 5.0

    def _shutdown_pool(self) -> None:
        # getattr: __del__ may run on an instance whose __init__ raised
        # during parameter validation, before _pool was assigned.
        pool = getattr(self, "_pool", None)
        self._pool = None
        if pool is None:
            return
        # terminate(), not close(): a hung worker must not stall the
        # shutdown (close() would wait for the sleeping task).  But
        # terminate() itself is not trusted to return either — its
        # internal worker joins are unbounded, so a worker that
        # survived the SIGTERM it sends (e.g. one forked with an
        # inherited do-nothing handler) would wedge it.  The whole
        # teardown therefore runs on a daemon thread with a bounded
        # wait; workers still alive afterwards are hard-killed before
        # the pool is abandoned.
        teardown = threading.Thread(
            target=self._teardown_quietly, args=(pool,), daemon=True
        )
        teardown.start()
        teardown.join(self.JOIN_TIMEOUT)
        if teardown.is_alive():
            logger.warning(
                "pool teardown did not finish within %.1fs; killing workers",
                self.JOIN_TIMEOUT,
            )
            for worker in list(getattr(pool, "_pool", None) or []):
                try:
                    worker.kill()
                except Exception:  # pragma: no cover - worker already gone
                    pass
            teardown.join(self.JOIN_TIMEOUT)

    @staticmethod
    def _teardown_quietly(pool) -> None:
        # Both calls are defended — a pool whose workers were
        # hard-killed can raise from its own bookkeeping, and shutdown
        # must never fail.
        try:
            pool.terminate()
        except Exception:  # pragma: no cover - depends on pool state
            pass
        try:
            pool.join()
        except Exception:  # pragma: no cover - depends on pool state
            pass

    def _mark_broken(self, reason: str) -> None:
        logger.error(
            "parallel pool marked broken (%s); remaining levels run in-process",
            reason,
        )
        self._broken = True
        self.stats.mark_broken(reason)
        self._shutdown_pool()

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count(
        self,
        transactions: Sequence[Tuple[int, ...]],
        candidates: Sequence[Itemset],
        k: int,
        counters: Optional[OpCounters] = None,
        var: str = "S",
        guard=None,
    ) -> Dict[Itemset, int]:
        if not candidates:
            return {}
        if guard is not None and not guard.enabled:
            guard = None
        # One shared candidate tuple: every shard task references (and
        # pickles) the same materialization instead of W private copies.
        shared = tuple(candidates)
        shards = shard_transactions(transactions, self.workers)
        in_process = (
            self.workers == 1
            or len(transactions) < self.shard_threshold
            or self._broken
        )
        if in_process:
            outcomes = [
                _count_shard_guarded(shard, shared, k, var, guard, self.kernel)
                for shard in shards
            ]
            failures = retries = fallbacks = 0
        else:
            try:
                outcomes, failures, retries, fallbacks = self._count_pooled(
                    shards, shared, k, var, guard
                )
            except RunInterrupted as exc:
                # Cancel outstanding shard tasks: terminating the pool
                # discards queued and running work.  The backend is NOT
                # marked broken — a later (resumed) run may re-fork.
                reason = getattr(getattr(exc, "trip", None), "reason", None)
                self.stats.record_cancellation(reason or "run interrupted")
                logger.info(
                    "guard trip (%s): terminating worker pool to cancel "
                    "outstanding shard tasks", reason or "interrupted",
                )
                self._shutdown_pool()
                raise
        merge_start = time.perf_counter()
        supports = merge_shard_supports([o[0] for o in outcomes], shared)
        shard_total = merge_shard_counters([o[1] for o in outcomes])
        if counters is not None:
            counters.subset_tests += shard_total.subset_tests
            counters.scans += shard_total.scans
            counters.tuples_read += shard_total.tuples_read
            counters.constraint_checks_singleton += (
                shard_total.constraint_checks_singleton
            )
            counters.constraint_checks_larger += (
                shard_total.constraint_checks_larger
            )
            counters.pair_checks += shard_total.pair_checks
            for (v, level), n_sets in shard_total.support_counted.items():
                counters.record_counted(v, level, n_sets)
        merge_seconds = time.perf_counter() - merge_start
        self.stats.record_level(
            shard_sizes=[len(shard) for shard in shards],
            shard_seconds=[o[2] for o in outcomes],
            merge_seconds=merge_seconds,
            in_process=in_process,
            failures=failures,
            retries=retries,
            fallback_shards=fallbacks,
        )
        return supports

    def _submit(self, pool, shard, candidates, k, var):
        seq = self._task_seq
        self._task_seq += 1
        return pool.apply_async(
            _count_shard_task,
            ((shard, candidates, k, var, seq, self.fault_injector,
              self.kernel),),
        )

    def _await_result(self, result, guard):
        """One shard result, with cooperative guard checks while waiting.

        Without a guard this is a plain ``get`` with the shard timeout.
        With one, the wait is sliced so deadline/memory/cancellation
        trips surface within ~50ms instead of after ``shard_timeout``;
        an elapsed timeout raises the same ``TimeoutError`` ``get``
        would, feeding the normal retry/fallback machinery.
        """
        if guard is None:
            return result.get(self.shard_timeout)
        deadline = (
            None if self.shard_timeout is None
            else time.monotonic() + self.shard_timeout
        )
        while True:
            guard.check("parallel wait")
            if deadline is not None and time.monotonic() >= deadline:
                raise multiprocessing.TimeoutError(
                    f"shard result not ready within {self.shard_timeout}s"
                )
            result.wait(0.05)
            if result.ready():
                return result.get(0)

    def _count_pooled(
        self,
        shards: Sequence[Sequence[Tuple[int, ...]]],
        candidates: Tuple[Itemset, ...],
        k: int,
        var: str,
        guard=None,
    ):
        """Count all shards through the pool with retry and fallback."""
        n = len(shards)
        outcomes: List[Optional[tuple]] = [None] * n
        pending: List[Optional[object]] = [None] * n
        failures = retries = fallbacks = 0
        pool = None
        try:
            pool = self._ensure_pool()
            for i in range(n):
                pending[i] = self._submit(pool, shards[i], candidates, k, var)
        except Exception as exc:
            self._mark_broken(f"pool submission failed: {exc!r}")
        for i in range(n):
            attempts = 0
            result = pending[i]
            while outcomes[i] is None:
                if self._broken or result is None:
                    outcomes[i] = _count_shard_guarded(
                        shards[i], candidates, k, var, guard, self.kernel
                    )
                    fallbacks += 1
                    break
                try:
                    outcomes[i] = self._await_result(result, guard)
                except RunInterrupted:
                    # Never fold a guard trip into the shard retry
                    # machinery — it must unwind the whole run.
                    raise
                except Exception as exc:
                    failures += 1
                    logger.warning(
                        "shard %d/%d failed (%s: %s); attempt %d of %d",
                        i + 1, n, type(exc).__name__, exc,
                        attempts + 1, self.max_retries + 1,
                    )
                    self.stats.record_failure(
                        f"shard {i + 1}/{n}: {type(exc).__name__}: {exc}"
                    )
                    if attempts >= self.max_retries:
                        logger.warning(
                            "shard %d/%d exhausted retries; "
                            "falling back to in-process counting", i + 1, n,
                        )
                        outcomes[i] = _count_shard_guarded(
                            shards[i], candidates, k, var, guard, self.kernel
                        )
                        fallbacks += 1
                        break
                    attempts += 1
                    retries += 1
                    try:
                        result = self._submit(
                            pool, shards[i], candidates, k, var
                        )
                    except Exception as exc2:
                        self._mark_broken(f"pool resubmission failed: {exc2!r}")
                        result = None
        if n and fallbacks == n:
            self._mark_broken(
                "every shard of a level fell back to serial counting"
            )
        return outcomes, failures, retries, fallbacks


def guarded_count(
    backend,
    transactions: Sequence[Tuple[int, ...]],
    candidates: Sequence[Itemset],
    k: int,
    counters: Optional[OpCounters] = None,
    var: str = "S",
    guard=None,
) -> Dict[Itemset, int]:
    """Call ``backend.count``, forwarding the guard only when it is live.

    Backends are duck-typed (tests and extensions supply their own), so
    the ``guard`` keyword is only passed to backends when a run actually
    carries an enabled guard — pre-guardrail backend implementations
    keep working unchanged on unguarded runs.
    """
    if guard is not None and guard.enabled:
        return backend.count(transactions, candidates, k, counters, var,
                             guard=guard)
    return backend.count(transactions, candidates, k, counters, var)


@contextlib.contextmanager
def backend_scope(backend):
    """Hold a backend's resources open for the duration of a mining run.

    Duck-typed: backends without an ``open``/``close`` lifecycle (and
    ``None``) pass through untouched.  Scopes nest, so a driver inside an
    outer scope neither re-forks nor prematurely tears down the pool.
    """
    opener = getattr(backend, "open", None)
    closer = getattr(backend, "close", None)
    if not (callable(opener) and callable(closer)):
        yield backend
        return
    opener()
    try:
        yield backend
    finally:
        closer()


BACKENDS = {
    "hybrid": HybridBackend,
    "hashtree": HashTreeBackend,
    "vertical": VerticalBackend,
    "bitmap": BitmapBackend,
    "parallel": ParallelBackend,
}


def make_backend(name_or_backend) -> object:
    """Resolve a backend name (or pass an instance through).

    ``"parallel"`` accepts an optional worker suffix and an optional
    shard-kernel suffix: ``"parallel:4"`` builds a
    :class:`ParallelBackend` with four workers over the hybrid kernel,
    ``"parallel:4:bitmap"`` shards the vectorized bitmap kernel
    instead.  Malformed names and specs raise
    :class:`~repro.errors.ExecutionError`, so they surface as clean CLI
    errors rather than tracebacks.
    """
    if isinstance(name_or_backend, str):
        name, sep, arg = name_or_backend.partition(":")
        if sep and name != "parallel":
            raise ExecutionError(
                f"backend {name!r} takes no {arg!r} argument; only "
                f"'parallel:<workers>[:<kernel>]' is parameterized"
            )
        if sep:
            workers_text, kernel_sep, kernel = arg.partition(":")
            try:
                workers = int(workers_text)
            except ValueError:
                raise ExecutionError(
                    f"invalid worker count {workers_text!r} in "
                    f"{name_or_backend!r}"
                ) from None
            if not kernel_sep:
                return ParallelBackend(workers=workers)
            if kernel not in SHARD_KERNELS:
                raise ExecutionError(
                    f"unknown shard kernel {kernel!r} in "
                    f"{name_or_backend!r}; choose from {SHARD_KERNELS}"
                )
            return ParallelBackend(workers=workers, kernel=kernel)
        try:
            return BACKENDS[name]()
        except KeyError:
            raise ExecutionError(
                f"unknown counting backend {name_or_backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            ) from None
    return name_or_backend
