"""Vertical (TID-list) support counting.

Instead of scanning transactions horizontally, the vertical layout keeps,
for each item, the sorted set of transaction ids containing it; a
candidate's support is the size of the intersection of its items'
TID-lists (Eclat-style).  Intersections start from the two smallest lists,
and bail out as soon as the running intersection drops below any useful
size.

Provided as a counting backend for the backend ablation; it shines when
candidates are few and deep, and loses to the horizontal hybrid when the
candidate set is broad and shallow.

Note on sharding: vertical *supports* distribute over a transaction
partition (each shard's TID-lists cover disjoint TIDs), but the probe
metering here is per-candidate — intersection costs depend on TID-list
sizes, which a split changes — so sharded vertical work would not sum to
the serial figure.  The transaction-sharded
:class:`~repro.mining.backends.ParallelBackend` therefore never shards
this kernel; it shards the horizontal hybrid kernel (per-transaction
additive metering, see :mod:`repro.mining.counting`) or the bitmap
kernel, whose ``sum(len(candidate)) * N`` bit-probe meter is *exactly*
additive over any transaction partition (see
:mod:`repro.mining.bitmap`).  The contrast is pinned executable in
``tests/test_backend_differential.py::
test_bitmap_shard_metering_is_additive_unlike_vertical``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.db.stats import OpCounters
from repro.itemsets import Itemset


def build_tidlists(
    transactions: Sequence[Tuple[int, ...]]
) -> Dict[int, frozenset]:
    """Map each item to the set of transaction ids containing it."""
    lists: Dict[int, set] = {}
    for tid, transaction in enumerate(transactions):
        for item in transaction:
            lists.setdefault(item, set()).add(tid)
    return {item: frozenset(tids) for item, tids in lists.items()}


def count_with_tidlists(
    tidlists: Dict[int, frozenset],
    candidates: Sequence[Itemset],
    counters: Optional[OpCounters] = None,
    var: str = "S",
    k: Optional[int] = None,
) -> Dict[Itemset, int]:
    """Support of each candidate via TID-list intersection."""
    support: Dict[Itemset, int] = {}
    work = 0
    empty: frozenset = frozenset()
    for candidate in candidates:
        lists = sorted(
            (tidlists.get(item, empty) for item in candidate), key=len
        )
        running = lists[0]
        work += len(running)
        for tids in lists[1:]:
            if not running:
                break
            running = running & tids
            work += min(len(running), len(tids)) + 1
        support[candidate] = len(running)
    if counters is not None:
        level = k if k is not None else (len(candidates[0]) if candidates else 0)
        counters.record_counted(var, level, len(candidates))
        counters.subset_tests += work
    return support
