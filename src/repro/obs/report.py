"""Versioned, machine-readable run reports for CFQ mining runs.

A :class:`RunReport` is the export format of the observability layer:
one JSON document per run bundling

* the **trace tree** (:class:`repro.obs.trace.Tracer` spans: wall/CPU
  time and structured attributes per pipeline stage),
* the **metrics registry** snapshot,
* the ccc **operation counters** (:class:`repro.db.stats.OpCounters`),
* the parallel-backend statistics when a sharded backend ran
  (:class:`repro.db.stats.ParallelStats`, per-shard timings included),
* the **per-level pruning table** (candidates counted, frequent
  survivors, and sets pruned per constraint, per variable per level —
  the quantities behind the paper's Figures 8–9 arguments),
* the ``J^k_max`` **bound histories** (each ``W^k`` with its level),
* optional **cProfile hotspots** (the CLI's ``--profile`` flag).

The document is versioned (``schema``/``version`` header) and
round-trips: ``RunReport.from_json(report.to_json())`` validates the
header and returns an equal report.  The CLI's ``--trace-out`` writes
one, and the benchmark harness emits the same document per strategy
run, so the Figure 8a/8b ablation rows are reproducible artifacts.
"""

from __future__ import annotations

import cProfile
import io
import json
import math
import platform
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

RUN_REPORT_SCHEMA = "repro.run_report"
#: Version history:
#:   1 — trace/metrics/op_counters/pruning/bounds/answers (+ profile)
#:   2 — adds the optional ``budget`` (RunGuard telemetry) and
#:       ``interruption`` (GuardTrip) blocks and ``answers.status``;
#:       v1 documents remain readable (the new blocks default to absent)
#:   3 — adds the optional ``cache`` block (the serving layer's
#:       ``CFQResult.cache_info``: answer source, dataset/query
#:       fingerprints, cold/warm wall seconds, CacheStats snapshot);
#:       v1/v2 documents remain readable
#:   4 — adds the optional ``delta`` block (dataset-churn maintenance:
#:       the ``DeltaMaintenanceReport.as_dict()`` steps applied before
#:       this run was served); v1–v3 documents remain readable
#:   5 — adds the optional ``telemetry`` block (the serving layer's
#:       ``ServiceTelemetry.snapshot()``: process-lifetime per-outcome
#:       latency histograms, hit-ratio/occupancy gauges, event-journal
#:       summary); v1–v4 documents remain readable
RUN_REPORT_VERSION = 5
SUPPORTED_REPORT_VERSIONS = (1, 2, 3, 4, 5)

#: Hotspot count embedded by ``--profile``.
PROFILE_TOP_N = 20


class ReportSchemaError(ValueError):
    """A document failed run-report schema validation."""


def _sanitize(value: Any) -> Any:
    """Replace non-finite floats (``J^k_max`` bound histories legitimately
    start at ±inf) with string markers so the JSON stays standard —
    ``json.dumps`` would otherwise emit the non-interoperable
    ``Infinity``/``NaN`` literals."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf', '-inf', 'nan'
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def _counters_section(counters) -> Dict[str, Any]:
    """Serialize :class:`~repro.db.stats.OpCounters` with the per-level
    ledger expanded (its keys are tuples, which JSON cannot carry)."""
    section = dict(counters.as_dict())
    section["support_counted"] = [
        {"var": var, "level": level, "sets": n}
        for (var, level), n in sorted(counters.support_counted.items())
    ]
    return section


def pruning_summary(raw) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Per-variable, per-level pruning table from a
    :class:`~repro.mining.dovetail.DovetailResult`.

    For every level: how many candidate sets were counted, how many came
    out frequent (and valid), and how many candidates each installed
    constraint pruned before counting (keyed by pruner kind and source).
    JSON object keys must be strings, so levels are stringified.
    """
    table: Dict[str, Dict[str, Dict[str, int]]] = {}
    for var, lattice_result in raw.lattices.items():
        levels: Dict[str, Dict[str, int]] = {}
        all_levels = sorted(
            set(lattice_result.counted_per_level)
            | set(lattice_result.frequent)
            | set(getattr(lattice_result, "prune_counts", {}))
        )
        for level in all_levels:
            entry: Dict[str, int] = {
                "counted": lattice_result.counted_per_level.get(level, 0),
                "frequent": len(lattice_result.frequent.get(level, {})),
            }
            for reason, n in sorted(
                getattr(lattice_result, "prune_counts", {}).get(level, {}).items()
            ):
                entry[reason] = n
            levels[str(level)] = entry
        table[var] = levels
    return table


def render_pruning_table(pruning: Dict[str, Dict[str, Dict[str, int]]]) -> str:
    """Human-readable rendering of :func:`pruning_summary` (the table
    ``CFQResult.explain()`` prints)."""
    lines = ["  per-level pruning:"]
    for var in sorted(pruning):
        for level_key in sorted(pruning[var], key=int):
            entry = dict(pruning[var][level_key])
            counted = entry.pop("counted", 0)
            frequent = entry.pop("frequent", 0)
            infrequent = entry.pop("infrequent", None)
            detail = "; ".join(f"{reason}={n}" for reason, n in sorted(entry.items()))
            line = (
                f"    {var} L{level_key}: counted {counted}, "
                f"frequent+valid {frequent}"
            )
            if infrequent is not None:
                line += f", infrequent {infrequent}"
            if detail:
                line += f" | pruned: {detail}"
            lines.append(line)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# cProfile integration (the CLI's --profile flag)
# ----------------------------------------------------------------------
def profile_hotspots(
    profile: cProfile.Profile, top_n: int = PROFILE_TOP_N
) -> Dict[str, Any]:
    """The ``top_n`` hottest functions (by cumulative time) of a
    collected profile, in serializable form."""
    stats = pstats.Stats(profile, stream=io.StringIO())
    entries: List[Dict[str, Any]] = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        entries.append(
            {
                "function": func,
                "file": filename,
                "line": line,
                "calls": nc,
                "primitive_calls": cc,
                "total_seconds": round(tt, 6),
                "cumulative_seconds": round(ct, 6),
            }
        )
    entries.sort(key=lambda e: e["cumulative_seconds"], reverse=True)
    return {"engine": "cProfile", "ordered_by": "cumulative_seconds",
            "hotspots": entries[:top_n]}


# ----------------------------------------------------------------------
# The report document
# ----------------------------------------------------------------------
@dataclass
class RunReport:
    """One run's observability export (see module docstring)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    trace: Dict[str, Any] = field(default_factory=lambda: {"spans": []})
    metrics: Dict[str, Any] = field(default_factory=dict)
    op_counters: Dict[str, Any] = field(default_factory=dict)
    parallel_stats: Optional[Dict[str, Any]] = None
    pruning: Dict[str, Dict[str, Dict[str, int]]] = field(default_factory=dict)
    bound_histories: Dict[str, List[List[float]]] = field(default_factory=dict)
    answers: Dict[str, Any] = field(default_factory=dict)
    profile: Optional[Dict[str, Any]] = None
    #: Schema v2: :meth:`RunGuard.telemetry` of a guarded run (budgets
    #: configured, resources consumed); ``None`` for unguarded runs.
    budget: Optional[Dict[str, Any]] = None
    #: Schema v2: the ``GuardTrip.as_dict()`` of an interrupted run;
    #: ``None`` when the run completed.
    interruption: Optional[Dict[str, Any]] = None
    #: Schema v3: how the serving layer answered this run (the
    #: ``CFQResult.cache_info`` dict — source, fingerprints, timings,
    #: cache-stats snapshot); ``None`` for uncached runs.
    cache: Optional[Dict[str, Any]] = None
    #: Schema v4: dataset-churn maintenance applied before this run —
    #: ``{"steps": [DeltaMaintenanceReport.as_dict(), ...]}``; ``None``
    #: when the dataset never changed.
    delta: Optional[Dict[str, Any]] = None
    #: Schema v5: the serving layer's process-lifetime telemetry
    #: snapshot (``ServiceTelemetry.snapshot()`` — per-outcome latency
    #: histograms, cache gauges, event-journal summary); ``None`` for
    #: unserved runs.
    telemetry: Optional[Dict[str, Any]] = None

    REQUIRED_KEYS = (
        "schema",
        "version",
        "generated_at_unix",
        "meta",
        "trace",
        "metrics",
        "op_counters",
        "pruning",
        "answers",
    )

    def to_dict(self) -> Dict[str, Any]:
        return _sanitize({
            "schema": RUN_REPORT_SCHEMA,
            "version": RUN_REPORT_VERSION,
            "generated_at_unix": time.time(),
            "generator": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "meta": self.meta,
            "trace": self.trace,
            "metrics": self.metrics,
            "op_counters": self.op_counters,
            "parallel_stats": self.parallel_stats,
            "pruning": self.pruning,
            "bound_histories": self.bound_histories,
            "answers": self.answers,
            "profile": self.profile,
            "budget": self.budget,
            "interruption": self.interruption,
            "cache": self.cache,
            "delta": self.delta,
            "telemetry": self.telemetry,
        })

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str) -> str:
        """Serialize to ``path``; returns the path for chaining."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    # ------------------------------------------------------------------
    # Parsing / validation
    # ------------------------------------------------------------------
    @staticmethod
    def validate(document: Dict[str, Any]) -> Dict[str, Any]:
        """Check the schema header and required sections; returns the
        document on success, raises :class:`ReportSchemaError` otherwise."""
        if not isinstance(document, dict):
            raise ReportSchemaError("run report must be a JSON object")
        missing = [k for k in RunReport.REQUIRED_KEYS if k not in document]
        if missing:
            raise ReportSchemaError(f"run report missing keys: {missing}")
        if document["schema"] != RUN_REPORT_SCHEMA:
            raise ReportSchemaError(
                f"unexpected schema {document['schema']!r}; "
                f"expected {RUN_REPORT_SCHEMA!r}"
            )
        if document["version"] not in SUPPORTED_REPORT_VERSIONS:
            raise ReportSchemaError(
                f"unsupported run-report version {document['version']!r}; "
                f"this reader understands versions "
                f"{list(SUPPORTED_REPORT_VERSIONS)}"
            )
        if not isinstance(document["trace"], dict) or "spans" not in document["trace"]:
            raise ReportSchemaError("trace section must contain 'spans'")
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "RunReport":
        cls.validate(document)
        return cls(
            meta=document["meta"],
            trace=document["trace"],
            metrics=document["metrics"],
            op_counters=document["op_counters"],
            parallel_stats=document.get("parallel_stats"),
            pruning=document["pruning"],
            bound_histories=document.get("bound_histories", {}),
            answers=document["answers"],
            profile=document.get("profile"),
            budget=document.get("budget"),
            interruption=document.get("interruption"),
            cache=document.get("cache"),
            delta=document.get("delta"),
            telemetry=document.get("telemetry"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))


def build_run_report(
    result,
    tracer=None,
    meta: Optional[Dict[str, Any]] = None,
    profile: Optional[cProfile.Profile] = None,
    delta: Optional[Dict[str, Any]] = None,
    telemetry: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from a finished
    :class:`~repro.core.optimizer.CFQResult` (or any object exposing
    ``counters``, ``raw`` and optionally ``backend``/``cfq``).

    ``tracer`` defaults to the trace attached to the result (if any);
    ``profile`` is an optional collected :class:`cProfile.Profile`;
    ``delta`` is the optional churn-maintenance block (schema v4);
    ``telemetry`` is the optional serving-telemetry snapshot (schema
    v5).
    """
    tracer = tracer if tracer is not None else getattr(result, "trace", None)
    raw = result.raw
    stats = getattr(getattr(result, "backend", None), "stats", None)
    doc_meta: Dict[str, Any] = {}
    cfq = getattr(result, "cfq", None)
    if cfq is not None:
        doc_meta["query"] = str(cfq)
    backend = getattr(result, "backend", None)
    if backend is not None:
        doc_meta["backend"] = getattr(backend, "name", type(backend).__name__)
    if meta:
        doc_meta.update(meta)
    answers: Dict[str, Any] = {}
    if cfq is not None:
        answers["frequent_valid"] = {
            var: len(raw.result_for(var).all_sets()) for var in cfq.variables
        }
    status = getattr(result, "status", None)
    if status is not None:
        answers["status"] = status
    guard = getattr(result, "guard", None)
    trip = getattr(result, "interruption", None)
    return RunReport(
        meta=doc_meta,
        trace=tracer.to_dict() if tracer is not None else {"spans": []},
        metrics=(
            tracer.metrics.as_dict()
            if tracer is not None and getattr(tracer, "metrics", None) is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        ),
        op_counters=_counters_section(result.counters),
        parallel_stats=(
            stats.as_dict() if stats is not None and getattr(stats, "levels", None)
            else None
        ),
        pruning=pruning_summary(raw),
        bound_histories={
            key: [[k, bound] for k, bound in history]
            for key, history in raw.bound_histories.items()
        },
        answers=answers,
        profile=profile_hotspots(profile) if profile is not None else None,
        budget=(
            guard.telemetry()
            if guard is not None and getattr(guard, "enabled", False)
            else None
        ),
        interruption=trip.as_dict() if trip is not None else None,
        cache=getattr(result, "cache_info", None) or None,
        delta=delta,
        telemetry=telemetry,
    )
