"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

Two renderers turn the in-process observability objects into the
formats the surrounding tooling already understands:

* :func:`render_prometheus` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (or its ``to_state()``/``as_dict()`` snapshot) as `Prometheus text
  exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
  ``# TYPE`` headers, escaped label values, counters suffixed
  ``_total``, histograms as quantile summaries with ``_sum``/``_count``
  series.  A scrape endpoint (the future async server) can serve the
  output verbatim; ``repro stats --format prometheus`` prints it.

* :func:`render_chrome_trace` — a :class:`~repro.obs.trace.Tracer`
  span tree (or a run report's serialized ``trace`` block) as Chrome
  trace-event JSON (the ``{"traceEvents": [...]}`` object format),
  loadable in Perfetto / ``about:tracing``.  Every span becomes one
  ``ph: "X"`` complete event with microsecond ``ts``/``dur``; span
  attributes ride in ``args``; nesting is expressed by time containment
  on one thread track, which is exactly how the spans nested live.

Both renderers are pure functions over serializable data — no sockets,
no dependencies — matching the repo's zero-dependency observability
rule.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry, parse_key

#: Quantiles rendered for each histogram in the Prometheus summary form.
PROMETHEUS_QUANTILES = (0.5, 0.95, 0.99)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, namespace: str) -> str:
    """A legal Prometheus metric name: namespaced, [a-zA-Z0-9_:] only."""
    safe = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{namespace}_{safe}" if namespace else safe


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double-quote, and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{k}="{_prom_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _prom_number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    formatted = repr(float(value))
    return formatted


def render_prometheus(
    registry: Union[MetricsRegistry, Mapping[str, Any]],
    namespace: str = "repro",
) -> str:
    """Render a metrics registry in Prometheus text exposition format.

    Accepts a live :class:`MetricsRegistry` or any mapping with
    ``counters``/``gauges``/``histograms`` sections (``as_dict()`` or
    ``to_state()`` output — histogram entries may be summary dicts or
    lossless states; both carry the keys used here).  Counters get a
    ``_total`` suffix; histograms render in the summary family shape:
    ``name{quantile="0.5"}``, ``name_sum``, ``name_count``, plus
    ``name_min``/``name_max`` gauges.
    """
    if isinstance(registry, MetricsRegistry):
        document = registry.as_dict()
    else:
        document = {
            "counters": dict(registry.get("counters", {})),
            "gauges": dict(registry.get("gauges", {})),
            "histograms": {
                key: dict(value)
                for key, value in registry.get("histograms", {}).items()
            },
        }

    lines: List[str] = []
    typed: set = set()

    def emit_type(metric: str, kind: str) -> None:
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for key, value in sorted(document["counters"].items()):
        name, labels = parse_key(key)
        metric = _prom_name(name, namespace) + "_total"
        emit_type(metric, "counter")
        lines.append(f"{metric}{_prom_labels(labels)} {_prom_number(value)}")

    for key, value in sorted(document["gauges"].items()):
        name, labels = parse_key(key)
        metric = _prom_name(name, namespace)
        emit_type(metric, "gauge")
        lines.append(f"{metric}{_prom_labels(labels)} {_prom_number(value)}")

    for key, summary in sorted(document["histograms"].items()):
        name, labels = parse_key(key)
        metric = _prom_name(name, namespace)
        emit_type(metric, "summary")
        for q in PROMETHEUS_QUANTILES:
            q_key = f"p{int(q * 100)}"
            if q_key not in summary:
                continue
            q_labels = dict(labels)
            q_labels["quantile"] = f"{q:g}"
            lines.append(
                f"{metric}{_prom_labels(q_labels)} "
                f"{_prom_number(summary[q_key])}"
            )
        label_text = _prom_labels(labels)
        lines.append(
            f"{metric}_sum{label_text} {_prom_number(summary.get('sum', 0.0))}"
        )
        lines.append(
            f"{metric}_count{label_text} {_prom_number(summary.get('count', 0))}"
        )
        for bound in ("min", "max"):
            if bound in summary and summary[bound] is not None:
                bound_metric = f"{metric}_{bound}"
                emit_type(bound_metric, "gauge")
                lines.append(
                    f"{bound_metric}{label_text} "
                    f"{_prom_number(summary[bound])}"
                )

    return "\n".join(lines) + ("\n" if lines else "")


def lint_prometheus(text: str) -> List[str]:
    """A structural lint of exposition-format text; returns problems
    (empty list = clean).  Checks the subset the exporter emits: every
    sample line is ``name[{labels}] value``, every metric name matches
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label values are quoted, every sample
    has a preceding ``# TYPE`` for its family, and values parse as
    floats.  CI runs this over the exporter's output.
    """
    import re

    problems: List[str] = []
    name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*\})?"
        r" (\S+)$"
    )
    typed: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                problems.append(f"line {lineno}: malformed TYPE line")
            elif not name_re.fullmatch(parts[2]):
                problems.append(f"line {lineno}: bad metric name {parts[2]!r}")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if not match:
            problems.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        metric = match.group(1)
        family = metric
        for suffix in ("_total", "_sum", "_count", "_min", "_max"):
            if metric.endswith(suffix) and metric[: -len(suffix)] in typed:
                family = metric[: -len(suffix)]
                break
        if family not in typed and metric not in typed:
            problems.append(
                f"line {lineno}: sample {metric!r} has no TYPE header"
            )
        value = match.group(3)
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric value {value!r}"
                )
    return problems


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _span_nodes(tracer_or_trace: Any) -> List[Dict[str, Any]]:
    """Normalize a Tracer / to_dict() trace / span list to node dicts."""
    if hasattr(tracer_or_trace, "to_dict"):
        document = tracer_or_trace.to_dict()
    else:
        document = tracer_or_trace
    if isinstance(document, Mapping):
        return list(document.get("spans", []))
    return list(document)


def _emit_span(
    node: Mapping[str, Any],
    events: List[Dict[str, Any]],
    pid: int,
    tid: int,
    fallback_ts: float,
) -> None:
    start = float(node.get("start_seconds", fallback_ts))
    wall = float(node.get("wall_seconds", 0.0))
    event: Dict[str, Any] = {
        "name": node.get("name", "span"),
        "ph": "X",
        "ts": round(start * 1e6, 3),
        "dur": round(wall * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "cat": "repro",
    }
    args: Dict[str, Any] = {}
    if node.get("attributes"):
        args.update(node["attributes"])
    if "cpu_seconds" in node:
        args["cpu_seconds"] = node["cpu_seconds"]
    if args:
        event["args"] = args
    events.append(event)
    for instant in node.get("events", ()):
        events.append(
            {
                "name": instant.get("name", "event"),
                "ph": "i",
                "ts": round((start + wall / 2.0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "s": "t",
                "cat": "repro",
                "args": {k: v for k, v in instant.items() if k != "name"},
            }
        )
    child_ts = start
    for child in node.get("children", ()):
        _emit_span(child, events, pid, tid, child_ts)
        child_ts += float(child.get("wall_seconds", 0.0))


def render_chrome_trace(
    tracer_or_trace: Any,
    pid: int = 1,
    tid: int = 1,
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render a span tree as a Chrome trace-event document (dict).

    Accepts a live :class:`~repro.obs.trace.Tracer`, a serialized
    ``tracer.to_dict()`` / run-report ``trace`` block, or a bare list of
    span nodes.  Spans become ``ph: "X"`` complete events (``ts`` and
    ``dur`` in microseconds — span timestamps are ``perf_counter``
    readings, so they order correctly within one process even though
    the epoch is arbitrary); span events become ``ph: "i"`` instants.
    Serialize with ``json.dumps`` and load in Perfetto or
    ``about:tracing``.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    fallback_ts = 0.0
    for node in _span_nodes(tracer_or_trace):
        _emit_span(node, events, pid, tid, fallback_ts)
        fallback_ts += float(node.get("wall_seconds", 0.0))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Union[str, Mapping[str, Any]]) -> List[str]:
    """Schema-check a Chrome trace document; returns problems (empty =
    valid).  Checks the object-format envelope, required per-event keys
    (``ph``/``pid``/``tid``/``name``), numeric non-negative ``ts`` and
    ``dur`` on complete events, and JSON serializability.  CI runs this
    over the exporter's output.
    """
    problems: List[str] = []
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(document, Mapping):
        return ["top level must be an object with 'traceEvents'"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            problems.append(f"event {index}: not an object")
            continue
        for required in ("ph", "pid", "tid", "name"):
            if required not in event:
                problems.append(f"event {index}: missing {required!r}")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C"):
            problems.append(f"event {index}: unknown phase {ph!r}")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"event {index}: {field} must be a non-negative "
                        f"number, got {value!r}"
                    )
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems
