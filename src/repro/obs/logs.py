"""Structured logging for the ``repro`` package.

Library modules obtain their logger with :func:`get_logger` (always
namespaced under ``repro.``); the package root logger carries a
``NullHandler`` so importing the library never configures global logging
or prints anything — the standard library-citizen contract.

Applications (the CLI's ``--log-level`` flag, the benchmark harness,
tests) opt into output with :func:`configure_logging`, which installs a
single stream handler on the ``repro`` root.  Reconfiguration replaces
that handler rather than stacking duplicates, so repeated CLI runs in
one process (the test suite) stay clean.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

ROOT_LOGGER_NAME = "repro"

#: Accepted ``--log-level`` spellings.
LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

# Importing the library must never emit "No handlers could be found"
# noise nor propagate records into an application's root logger config
# uninvited: the NullHandler absorbs records until someone configures us.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

#: The handler installed by :func:`configure_logging`, tracked so
#: reconfiguration swaps it instead of stacking duplicates.
_configured_handler: Optional[logging.Handler] = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.`` namespace.

    Pass a module's ``__name__`` (already ``repro.*``) or a bare
    suffix such as ``"mining.backends"``.
    """
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def parse_level(level: str) -> int:
    """Map a ``--log-level`` spelling to a :mod:`logging` level number."""
    try:
        return getattr(logging, level.upper())
    except AttributeError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LEVELS)}"
        ) from None


def configure_logging(
    level: str = "warning", stream: Optional[TextIO] = None
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root at ``level``.

    Returns the configured root logger.  Calling again replaces the
    previously installed handler (idempotent across CLI invocations in
    one process).
    """
    global _configured_handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    root.setLevel(parse_level(level))
    _configured_handler = handler
    return root
