"""repro.obs — the observability layer: tracing, metrics, logging,
run reports.

The pipeline's quantitative story (where pruning happened, what each
level cost, how the ``W^k`` bounds tightened) is captured by a span
tracer and a metrics registry threaded through the optimizer, the
dovetail engine and the counting backends, then exported as a
versioned JSON :class:`RunReport`.  Tracing is opt-in; the
:data:`NULL_TRACER` default keeps disabled runs within a few method
calls per mining level of an uninstrumented build.

See ``docs/observability.md`` for the API guide and report schema.
"""

from repro.obs.events import EVENT_KINDS, NULL_JOURNAL, EventJournal, read_journal
from repro.obs.export import (
    lint_prometheus,
    render_chrome_trace,
    render_prometheus,
    validate_chrome_trace,
)
from repro.obs.hist import DEFAULT_RELATIVE_ERROR, QuantileHistogram, exact_quantile
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import NULL_METRICS, Histogram, MetricsRegistry, parse_key
from repro.obs.report import (
    RUN_REPORT_SCHEMA,
    RUN_REPORT_VERSION,
    ReportSchemaError,
    RunReport,
    build_run_report,
    profile_hotspots,
    pruning_summary,
    render_pruning_table,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, resolve_tracer

__all__ = [
    "configure_logging",
    "get_logger",
    "DEFAULT_RELATIVE_ERROR",
    "QuantileHistogram",
    "exact_quantile",
    "Histogram",
    "MetricsRegistry",
    "parse_key",
    "EVENT_KINDS",
    "EventJournal",
    "NULL_JOURNAL",
    "read_journal",
    "render_prometheus",
    "lint_prometheus",
    "render_chrome_trace",
    "validate_chrome_trace",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "resolve_tracer",
    "ReportSchemaError",
    "RunReport",
    "RUN_REPORT_SCHEMA",
    "RUN_REPORT_VERSION",
    "build_run_report",
    "profile_hotspots",
    "pruning_summary",
    "render_pruning_table",
]
