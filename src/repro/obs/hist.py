"""A log-bucketed quantile histogram with bounded relative error.

The summary-only histogram of PR 3 (count/sum/min/max) cannot answer
the questions the serving layer's load benchmarks ask — *what is the
warm-hit p99?* — so :class:`QuantileHistogram` replaces it behind the
same ``observe()`` API.  The design is the standard log-bucket (HDR /
DDSketch) scheme:

* a positive value ``v`` lands in bucket ``i = ceil(log_gamma(v))``
  where ``gamma = (1 + alpha) / (1 - alpha)`` for a configured relative
  accuracy ``alpha`` (default 1%); bucket ``i`` covers the interval
  ``(gamma^(i-1), gamma^i]``;
* the bucket's representative value ``2 * gamma^i / (gamma + 1)`` is
  within relative error ``alpha`` of **every** value in the bucket, so
  any reported quantile ``q`` satisfies
  ``|quantile(q) - exact_q| <= alpha * exact_q`` — a *guarantee*, not a
  heuristic (pinned by the property suite in ``tests/test_obs_hist.py``
  against exact quantiles on random and adversarial distributions);
* zero and negative values get a dedicated zero bucket and a mirrored
  negative store, so latencies, deltas and gauge-like observations all
  work;
* storage is one sparse ``dict`` of bucket counts per sign — memory is
  O(distinct buckets), ~115 buckets per decade of observed magnitude at
  1% accuracy, never O(observations);
* histograms **merge** by adding bucket counts, which is exact (the
  merged histogram equals the histogram of the concatenated streams)
  and associative/commutative — parallel-shard registries fold into the
  run registry through :meth:`~repro.obs.metrics.MetricsRegistry.merge`
  without approximation drift.

``count``/``sum``/``min``/``max``/``mean`` remain exact (tracked
directly, not reconstructed from buckets), so everything the PR 3
summary histogram reported is unchanged, and ``as_dict()`` keeps those
keys while adding ``p50``/``p95``/``p99``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Tuple

#: Default relative-accuracy bound: reported quantiles are within 1% of
#: the exact quantile value.
DEFAULT_RELATIVE_ERROR = 0.01


class QuantileHistogram:
    """Mergeable log-bucketed histogram (see module docstring).

    Parameters
    ----------
    relative_error:
        The accuracy bound ``alpha``: every reported quantile ``est`` of
        a true value ``x`` satisfies ``|est - x| <= alpha * |x|``.
        Histograms only merge with an equal ``relative_error``.
    """

    __slots__ = (
        "relative_error",
        "count",
        "total",
        "min",
        "max",
        "_gamma",
        "_ln_gamma",
        "_zero",
        "_pos",
        "_neg",
    )

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._ln_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._zero = 0
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Feed one observation (any finite float, any sign)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = math.ceil(math.log(value) / self._ln_gamma)
            self._pos[index] = self._pos.get(index, 0) + 1
        elif value < 0.0:
            index = math.ceil(math.log(-value) / self._ln_gamma)
            self._neg[index] = self._neg.get(index, 0) + 1
        else:
            self._zero += 1

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def _bucket_value(self, index: int) -> float:
        """The representative value of positive bucket ``index`` —
        within ``relative_error`` of every value in
        ``(gamma^(index-1), gamma^index]``."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of everything observed,
        within ``relative_error`` of the exact order statistic.

        The exact statistic targeted is ``sorted(values)[floor(q *
        (count - 1))]`` rounded toward the nearest-rank convention the
        property suite pins; with ``count == 0`` the result is 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min  # exact: min/max are tracked directly
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        cumulative = 0
        # Ascending value order: most-negative first (descending |v|
        # index), then zero, then positives ascending.
        for index in sorted(self._neg, reverse=True):
            cumulative += self._neg[index]
            if cumulative > rank:
                return self._clamp(-self._bucket_value(index))
        cumulative += self._zero
        if cumulative > rank:
            return self._clamp(0.0)
        for index in sorted(self._pos):
            cumulative += self._pos[index]
            if cumulative > rank:
                return self._clamp(self._bucket_value(index))
        return self._clamp(self.max)  # pragma: no cover - defensive

    def _clamp(self, value: float) -> float:
        """Clamp an estimate into the observed [min, max] envelope —
        the true order statistic lies in it, so clamping can only move
        the estimate closer."""
        return min(max(value, self.min), self.max)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileHistogram") -> "QuantileHistogram":
        """Fold ``other`` into this histogram in place (and return self).

        Exact: bucket counts add, so the result equals a histogram fed
        the concatenation of both observation streams.  Requires equal
        ``relative_error`` (different bucket bases are not alignable
        without violating the error bound).
        """
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge histograms with different relative errors "
                f"({self.relative_error} vs {other.relative_error})"
            )
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self._zero += other._zero
        for index, n in other._pos.items():
            self._pos[index] = self._pos.get(index, 0) + n
        for index, n in other._neg.items():
            self._neg[index] = self._neg.get(index, 0) + n
        return self

    def copy(self) -> "QuantileHistogram":
        """An independent deep copy (merge never aliases stores)."""
        return QuantileHistogram.from_state(self.to_state())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """Reporting summary: the PR 3 keys plus quantiles."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def to_state(self) -> Dict[str, Any]:
        """Lossless JSON-serializable state (bucket counts included), so
        telemetry snapshots round-trip and remote histograms merge."""
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "zero": self._zero,
            "pos": {str(i): n for i, n in sorted(self._pos.items())},
            "neg": {str(i): n for i, n in sorted(self._neg.items())},
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "QuantileHistogram":
        """Rebuild a histogram equal to the one :meth:`to_state` saved."""
        hist = cls(relative_error=state.get(
            "relative_error", DEFAULT_RELATIVE_ERROR
        ))
        hist.count = int(state["count"])
        hist.total = float(state["sum"])
        hist.min = math.inf if state.get("min") is None else float(state["min"])
        hist.max = -math.inf if state.get("max") is None else float(state["max"])
        hist._zero = int(state.get("zero", 0))
        hist._pos = {int(i): int(n) for i, n in state.get("pos", {}).items()}
        hist._neg = {int(i): int(n) for i, n in state.get("neg", {}).items()}
        return hist

    # ------------------------------------------------------------------
    # Introspection (tests, exporters)
    # ------------------------------------------------------------------
    def buckets(self) -> Iterable[Tuple[float, int]]:
        """(representative value, count) pairs in ascending value order."""
        for index in sorted(self._neg, reverse=True):
            yield (-self._bucket_value(index), self._neg[index])
        if self._zero:
            yield (0.0, self._zero)
        for index in sorted(self._pos):
            yield (self._bucket_value(index), self._pos[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileHistogram):
            return NotImplemented
        return self.to_state() == other.to_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileHistogram(count={self.count}, mean={self.mean:.6g}, "
            f"p50={self.p50 if self.count else 0:.6g}, "
            f"alpha={self.relative_error})"
        )


def exact_quantile(values, q: float) -> float:
    """The exact order statistic :meth:`QuantileHistogram.quantile`
    approximates — ``sorted(values)[floor(q * (n - 1))]`` — shared by
    the property tests and the trend harness."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    return ordered[int(q * (len(ordered) - 1))]
