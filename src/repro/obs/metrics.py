"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry complements the span tracer (:mod:`repro.obs.trace`): spans
answer *where time went*, metrics answer *how much of each thing
happened* — candidates generated, sets pruned per constraint, shards
dispatched, bounds tightened.  Instruments are named and optionally
**labeled** (sorted key=value pairs appended to the name), in the style
of Prometheus clients but with no export machinery: the registry
serializes into the run report via :meth:`MetricsRegistry.as_dict`.

A :data:`NULL_METRICS` singleton mirrors the null tracer so disabled
runs pay one no-op call per recording site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict, Optional


def _key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical instrument key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


@dataclass
class Histogram:
    """Summary statistics of an observed distribution (no buckets:
    count/sum/min/max is what the run report and tests consume)."""

    count: int = 0
    total: float = 0.0
    min: float = inf
    max: float = -inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """Named, labeled counters, gauges and histograms for one run."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    enabled = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a (monotone) counter."""
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest value."""
        self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Feed one observation into a histogram."""
        key = _key(name, labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(_key(name, labels), 0)

    def gauge(self, name: str, **labels: Any) -> Optional[float]:
        """Current value of a gauge (None if never set)."""
        return self.gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        """The histogram for a name/label set (None if never observed)."""
        return self.histograms.get(_key(name, labels))

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Serializable form (the run report's ``metrics`` section)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: h.as_dict() for k, h in sorted(self.histograms.items())
            },
        }


class _NullMetrics:
    """Inert registry handed out by the null tracer."""

    enabled = False
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def counter(self, name: str, **labels: Any) -> float:
        return 0

    def gauge(self, name: str, **labels: Any) -> None:
        return None

    def histogram(self, name: str, **labels: Any) -> None:
        return None

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = _NullMetrics()
