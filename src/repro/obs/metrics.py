"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry complements the span tracer (:mod:`repro.obs.trace`): spans
answer *where time went*, metrics answer *how much of each thing
happened* — candidates generated, sets pruned per constraint, shards
dispatched, bounds tightened.  Instruments are named and optionally
**labeled** (sorted key=value pairs appended to the name), in the style
of Prometheus clients; :mod:`repro.obs.export` renders a registry in
Prometheus text exposition format, and the registry serializes into the
run report via :meth:`MetricsRegistry.as_dict`.

Histograms are :class:`~repro.obs.hist.QuantileHistogram` — log-bucketed
with a bounded relative error, so ``histogram(...).p99`` answers the
latency questions summary statistics cannot.  Registries **merge**
(:meth:`MetricsRegistry.merge`): counters add, gauges take the incoming
value (last write wins), histograms fold bucket-exactly — which is how
parallel-shard registries and per-run registries roll up into a
process-lifetime one.

A :data:`NULL_METRICS` singleton mirrors the null tracer so disabled
runs pay one no-op call per recording site.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.obs.hist import QuantileHistogram

#: Histograms are quantile histograms; the old summary-only class name
#: remains importable because the ``observe()`` API is unchanged.
Histogram = QuantileHistogram

#: Characters that are structural in the flattened instrument key
#: ``name{k1=v1,k2=v2}`` and must therefore be escaped inside label
#: values (and keys): unescaped they make distinct label sets collide —
#: ``inc("x", q="a=1,b")`` and ``inc("x", q="a", b="1")`` would both
#: render as ``x{q=a=1,b}`` / ``x{b=1,q=a}``-style ambiguous keys.
_STRUCTURAL = ("\\", ",", "{", "}", "=")
_ESCAPE_TABLE = str.maketrans({c: f"\\{c}" for c in _STRUCTURAL})


def _escape(text: str) -> str:
    return text.translate(_ESCAPE_TABLE)


def _unescape(text: str) -> str:
    out = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            out.append(next(it, ""))
        else:
            out.append(ch)
    return "".join(out)


def _key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical instrument key: ``name{k1=v1,k2=v2}`` with sorted labels.

    Structural characters inside label keys/values are backslash-escaped,
    so the rendering is injective: two different (name, labels) pairs can
    never produce the same key, and :func:`parse_key` inverts it.
    """
    if not labels:
        return name
    rendered = ",".join(
        f"{_escape(str(k))}={_escape(str(labels[k]))}" for k in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_key`: ``name{k=v,...}`` → ``(name, {k: v})``.

    Label values come back as strings (the key format stringifies), with
    escapes resolved.  Exporters use this to recover structured labels
    from the registry's flattened keys.
    """
    if not key.endswith("}"):
        return key, {}
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name, body = key[:brace], key[brace + 1:-1]
    labels: Dict[str, str] = {}
    part: list = []
    parts: list = []
    escaped = False
    for ch in body:
        if escaped:
            part.append("\\" + ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == ",":
            parts.append("".join(part))
            part = []
        else:
            part.append(ch)
    parts.append("".join(part))
    for item in parts:
        if not item:
            continue
        # Split on the first unescaped '=': the key side never contains
        # one un-escaped, by construction.
        depth_escaped = False
        for position, ch in enumerate(item):
            if depth_escaped:
                depth_escaped = False
            elif ch == "\\":
                depth_escaped = True
            elif ch == "=":
                labels[_unescape(item[:position])] = _unescape(
                    item[position + 1:]
                )
                break
    return name, labels


@dataclass
class MetricsRegistry:
    """Named, labeled counters, gauges and histograms for one run.

    Thread safety: the query server's worker threads record into one
    shared registry, and ``counters[k] = counters.get(k, 0) + v`` is a
    non-atomic read-modify-write (two threads can read the same old
    value and lose one increment), while histogram bucket updates
    mutate a dict a concurrent ``as_dict``/``merge`` may be iterating.
    Every mutator and every whole-registry read therefore holds the
    per-registry lock.  The lock is leaf-level (``docs/server.md`` lock
    order): no callback ever runs under it, so it can be taken while
    holding any cache or server lock.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, QuantileHistogram] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    enabled = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a (monotone) counter."""
        key = _key(name, labels)
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest value."""
        with self._lock:
            self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Feed one observation into a histogram."""
        key = _key(name, labels)
        with self._lock:
            histogram = self.histograms.get(key)
            if histogram is None:
                histogram = self.histograms[key] = QuantileHistogram()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self.counters.get(_key(name, labels), 0)

    def gauge(self, name: str, **labels: Any) -> Optional[float]:
        """Current value of a gauge (None if never set)."""
        with self._lock:
            return self.gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[QuantileHistogram]:
        """The histogram for a name/label set (None if never observed)."""
        with self._lock:
            return self.histograms.get(_key(name, labels))

    # ------------------------------------------------------------------
    # Merging (shard → run → process roll-ups)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place (and return self).

        Exact semantics per instrument kind:

        * **counters** add — a count of events is additive over any
          partition of the events;
        * **gauges** take the incoming value (last write wins — a gauge
          is "latest observed state", and ``other`` is the newer view);
        * **histograms** merge bucket-exactly
          (:meth:`QuantileHistogram.merge`), never aliasing ``other``'s
          stores.

        This is how parallel-shard registries fold into the run registry
        and per-run registries into a :class:`ServiceTelemetry`'s
        process-lifetime registry; before it existed, shard metrics
        beyond ``ParallelStats`` were silently dropped.
        """
        # Snapshot ``other`` under its own lock first, then fold under
        # ours — never both at once, so two registries can merge in
        # either direction without a lock-order cycle.
        other_lock = getattr(other, "_lock", None)
        if other_lock is not None:
            with other_lock:
                counters = dict(other.counters)
                gauges = dict(other.gauges)
                histograms = {k: h.copy() for k, h in other.histograms.items()}
        else:
            counters = dict(other.counters)
            gauges = dict(other.gauges)
            histograms = {k: h.copy() for k, h in other.histograms.items()}
        with self._lock:
            for key, value in counters.items():
                self.counters[key] = self.counters.get(key, 0) + value
            self.gauges.update(gauges)
            for key, histogram in histograms.items():
                mine = self.histograms.get(key)
                if mine is None:
                    self.histograms[key] = histogram
                else:
                    mine.merge(histogram)
        return self

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Serializable form (the run report's ``metrics`` section)."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": {
                    k: h.as_dict() for k, h in sorted(self.histograms.items())
                },
            }

    def to_state(self) -> Dict[str, Dict[str, Any]]:
        """Lossless serializable form: histograms keep their bucket
        state, so :meth:`from_state` rebuilds a registry that continues
        to observe and merge exactly (telemetry snapshots use this)."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": {
                    k: h.to_state() for k, h in sorted(self.histograms.items())
                },
            }

    @classmethod
    def from_state(cls, state: Dict[str, Dict[str, Any]]) -> "MetricsRegistry":
        """Rebuild a registry saved by :meth:`to_state`."""
        registry = cls(
            counters=dict(state.get("counters", {})),
            gauges=dict(state.get("gauges", {})),
        )
        for key, hist_state in state.get("histograms", {}).items():
            registry.histograms[key] = QuantileHistogram.from_state(hist_state)
        return registry


class _NullMetrics:
    """Inert registry handed out by the null tracer."""

    enabled = False
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, QuantileHistogram] = {}

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def counter(self, name: str, **labels: Any) -> float:
        return 0

    def gauge(self, name: str, **labels: Any) -> None:
        return None

    def histogram(self, name: str, **labels: Any) -> None:
        return None

    def merge(self, other: "MetricsRegistry") -> "_NullMetrics":
        return self

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_state(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = _NullMetrics()
