"""A zero-dependency span tracer for the CFQ optimizer pipeline.

The paper's claims are quantitative — quasi-succinct reduction and
iterated ``J^k_max`` pruning win because they cut candidate counts and
scan work *level by level* — so every stage of the pipeline opens a
:class:`Span` describing what it did: the optimizer one per planning
rule fired, the dovetail engine one per mining level per variable
(carrying candidates-in / frequent-out / pruned-by-which-constraint
attributes), the counting backends one per sharded pass.  The resulting
tree serializes into the run report (:mod:`repro.obs.report`), and
``CFQResult.explain()`` renders its per-level pruning table from it.

Tracing is **off by default**: every instrumented call site takes a
tracer that defaults to the module's :data:`NULL_TRACER`, whose
``span()`` returns one preallocated no-op context manager — a disabled
run pays a single attribute lookup and method call per *level*, never
per candidate (the overhead micro-benchmark in
``benchmarks/test_obs_overhead.py`` holds this under 3%).

Spans measure both wall time (``time.perf_counter``) and CPU time
(``time.process_time``), nest through an explicit stack, and carry
structured attributes (JSON-serializable values only)::

    tracer = Tracer()
    with tracer.span("dovetail.run", dovetail=True):
        with tracer.span("level", var="S", level=2) as span:
            ...
            span.set(candidates=153, frequent=87)
    tracer.to_dict()   # the serializable trace tree
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "events",
        "start_wall",
        "end_wall",
        "start_cpu",
        "end_cpu",
    )

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.events: List[Dict[str, Any]] = []
        self.start_wall: float = 0.0
        self.end_wall: float = 0.0
        self.start_cpu: float = 0.0
        self.end_cpu: float = 0.0

    # ------------------------------------------------------------------
    # Annotation
    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) structured attributes."""
        self.attributes.update(attributes)
        return self

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event inside this span (e.g. one
        ``W^k`` bound update)."""
        self.events.append({"name": name, **attributes})

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        """Elapsed wall-clock time of the span."""
        return max(0.0, self.end_wall - self.start_wall)

    @property
    def cpu_seconds(self) -> float:
        """CPU time (user + system) consumed while the span was open."""
        return max(0.0, self.end_cpu - self.start_cpu)

    # ------------------------------------------------------------------
    # Traversal / serialization
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form (the run-report trace-tree node schema)."""
        node: Dict[str, Any] = {
            "name": self.name,
            "start_seconds": round(self.start_wall, 9),
            "wall_seconds": round(self.wall_seconds, 9),
            "cpu_seconds": round(self.cpu_seconds, 9),
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.events:
            node["events"] = [dict(e) for e in self.events]
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node


class _SpanHandle:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._span.start_wall = time.perf_counter()
        self._span.start_cpu = time.process_time()
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.end_cpu = time.process_time()
        self._span.end_wall = time.perf_counter()
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()


class Tracer:
    """Collects a tree of :class:`Span` objects plus a metrics registry.

    One tracer instance covers one run (planning + mining + reporting);
    carrying the :class:`~repro.obs.metrics.MetricsRegistry` on the
    tracer lets call sites thread a single object through the pipeline.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.roots: List[Span] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a child span of the current span (or a new root)."""
        span = Span(name, attributes)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        return _SpanHandle(self, span)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op outside
        any span)."""
        span = self.current()
        if span is not None:
            span.set(**attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record an event on the innermost open span (dropped when no
        span is open)."""
        span = self.current()
        if span is not None:
            span.add_event(name, **attributes)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(
        self, name: str, predicate: Optional[Callable[[Span], bool]] = None
    ) -> List[Span]:
        """All spans with ``name`` (optionally also passing ``predicate``)."""
        return [
            s for s in self.walk()
            if s.name == name and (predicate is None or predicate(s))
        ]

    def to_dict(self) -> Dict[str, Any]:
        """The serializable trace tree (run-report ``trace`` section)."""
        return {"spans": [root.to_dict() for root in self.roots]}


class _NullSpan(Span):
    """The shared inert span handed out by :class:`NullTracer`.

    Mutating methods drop their input so hot loops can call
    ``span.set(...)`` unconditionally; one instance is shared by every
    disabled call site.
    """

    def set(self, **attributes: Any) -> "Span":
        return self

    def add_event(self, name: str, **attributes: Any) -> None:
        return None


class _NullHandle:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        return None


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` ignores its arguments and returns one preallocated
    handle, so the cost of a disabled call site is one method call —
    no Span allocation, no clock reads.
    """

    enabled = False

    def __init__(self):
        self.roots: List[Span] = []
        self.metrics = NULL_METRICS

    def span(self, name: str, **attributes: Any) -> _NullHandle:
        return _NULL_HANDLE

    def current(self) -> Optional[Span]:
        return None

    def annotate(self, **attributes: Any) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name, predicate=None) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": []}


#: Shared singletons: the default tracer of every instrumented call site.
NULL_SPAN = _NullSpan("null")
_NULL_HANDLE = _NullHandle()
NULL_TRACER = NullTracer()


def resolve_tracer(tracer) -> "Tracer":
    """Normalize an optional tracer argument (``None`` → disabled)."""
    return NULL_TRACER if tracer is None else tracer
