"""A bounded, rotating JSONL event journal for serving lifecycle events.

Metrics aggregate (how many evictions?); the journal narrates (*which*
entry was evicted, when, at what age, displaced by what).  The serving
layer (:mod:`repro.serve.telemetry`) records one event per lifecycle
transition — result/skeleton hit, miss, store, evict, TTL-expiry, disk
sweep, delta refresh, guard trip — and the journal keeps a bounded
in-memory window plus an optional on-disk JSONL file with size-based
rotation, so a long-lived service never grows without bound.

Journal I/O is **never fatal to the host service**: a failed append or
rotation (disk full, permissions, a yanked volume) is counted
(``io_errors`` / ``rotation_failures``), the disk file is abandoned
(``degraded``), and the bounded in-memory window keeps recording — the
journal narrates degradations, so it must be the last thing to crash a
serve.  Rotation is atomic-or-abandoned: a failure mid-shift leaves at
worst a gap in the generation chain (``.2`` without ``.1``), never a
torn or misnumbered file, and the live file keeps appending.

Each event is one JSON object per line:

``{"seq": 17, "ts": 123.456, "kind": "result_evict", ...fields}``

* ``seq`` — monotonic sequence number, never reused across rotation,
  so a reader can detect gaps (events dropped by the memory window)
  and order events without trusting the clock;
* ``ts`` — seconds from the journal's clock (``time.monotonic`` by
  default: durable ordering matters more than wall-clock labels);
* ``kind`` — one of :data:`EVENT_KINDS`;
* remaining keys are event-specific (fingerprints, ages, byte sizes).

The journal is deliberately dependency-free and synchronous — one
``dict`` build plus one ``json.dumps`` per event — because it sits on
the serving hot path's *slow* branches only (misses, stores, evicts);
steady-state warm hits record a single event too, which the overhead
benchmark keeps inside the serving layer's existing budget.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.runtime import faults

#: The serving lifecycle vocabulary.  ``record()`` accepts only these —
#: a typo'd kind raises immediately instead of polluting the journal.
EVENT_KINDS = frozenset(
    {
        "result_hit",
        "result_miss",
        "result_store",
        "result_evict",
        "result_expire",
        "result_invalidate",
        "skeleton_hit",
        "skeleton_miss",
        "skeleton_store",
        "skeleton_evict",
        "skeleton_expire",
        "skeleton_invalidate",
        "disk_sweep",
        "delta_refresh",
        "guard_trip",
        "batch_execute",
        "service_clear",
        # fault-tolerance narration (docs/fault-tolerance.md)
        "disk_error",
        "disk_degraded",
        "disk_recovered",
        "result_quarantine",
        "refresh_fallback",
        "checkpoint_degraded",
        # query-server narration (docs/server.md)
        "server_admit",
        "server_reject",
        "server_shed",
        "server_coalesce",
        "flight_dedup",
    }
)

#: Default bounded-memory window (events kept for `tail()`/snapshots).
DEFAULT_MAX_EVENTS = 1024

#: Default per-file rotation threshold for the on-disk journal.
DEFAULT_MAX_BYTES = 1 << 20  # 1 MiB

#: Rotated generations kept on disk (journal.jsonl.1 … .N).
DEFAULT_MAX_FILES = 3


class EventJournal:
    """Bounded in-memory + rotating on-disk serving event journal.

    Parameters
    ----------
    path:
        Optional JSONL file.  When set, every event is appended (and
        flushed) there; when the file exceeds ``max_bytes`` it rotates
        to ``<path>.1`` (existing generations shift up, the oldest
        beyond ``max_files`` is deleted).  When ``None`` the journal is
        memory-only.
    max_events:
        In-memory window size — ``tail()`` and ``snapshot()`` see at
        most this many recent events.  Sequence numbers keep counting
        past it, so drops are detectable.
    clock:
        Timestamp source; defaults to ``time.monotonic`` to match the
        serving layer's cache clocks.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = path
        self.max_events = max_events
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.clock = clock
        self.seq = 0
        self.dropped = 0
        self.rotations = 0
        #: Failed disk appends/opens (the events still land in memory).
        self.io_errors = 0
        #: Rotations that were abandoned mid-shift.
        self.rotation_failures = 0
        self._events: Deque[Dict[str, Any]] = deque(maxlen=max_events)
        self._file: Optional[io.TextIOBase] = None
        self._file_bytes = 0
        self._closed = False
        # One journal is shared by every server worker thread; ``seq``
        # is a non-atomic increment and interleaved appends would tear
        # the JSONL file, so recording and window reads are serialized.
        # Leaf lock in the docs/server.md order: record() calls nothing
        # that takes another lock.
        self._lock = threading.Lock()
        if path is not None:
            try:
                directory = os.path.dirname(path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._open()
            except OSError:
                # An unwritable journal location degrades to memory-only
                # instead of killing the service being instrumented.
                self.io_errors += 1
                self._file = None

    @property
    def degraded(self) -> bool:
        """Whether a disk journal was requested but has been abandoned
        because of I/O failures (an explicit :meth:`close` is not a
        degradation)."""
        return (
            self.path is not None
            and self._file is None
            and not self._closed
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the event dict (with seq/ts/kind)."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{sorted(EVENT_KINDS)}"
            )
        with self._lock:
            self.seq += 1
            event: Dict[str, Any] = {
                "seq": self.seq,
                "ts": round(self.clock(), 6),
                "kind": kind,
            }
            event.update(fields)
            if len(self._events) == self.max_events:
                self.dropped += 1
            self._events.append(event)
            if self._file is not None:
                try:
                    faults.fire("journal.write")
                    line = json.dumps(event, sort_keys=False, default=str)
                    self._file.write(line + "\n")
                    self._file.flush()
                    self._file_bytes += len(line) + 1
                except (OSError, ValueError):
                    # A failed append (disk full, revoked handle)
                    # abandons the disk file; the memory window above
                    # already has the event, and the host service must
                    # never see the error.
                    self.io_errors += 1
                    self._abandon()
                    return event
                if self._file_bytes >= self.max_bytes:
                    self._rotate()
            return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` events (all windowed events if None)."""
        with self._lock:
            events = list(self._events)
        if n is not None:
            events = events[-n:]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterable[Dict[str, Any]]:
        with self._lock:
            return iter(list(self._events))

    def counts(self) -> Dict[str, int]:
        """Event counts per kind over the in-memory window."""
        out: Dict[str, int] = {}
        for event in self.tail():
            out[event["kind"]] = out.get(event["kind"], 0) + 1
        return dict(sorted(out.items()))

    def snapshot(self) -> Dict[str, Any]:
        """Serializable journal summary for telemetry snapshots."""
        return {
            "seq": self.seq,
            "dropped": self.dropped,
            "rotations": self.rotations,
            "io_errors": self.io_errors,
            "rotation_failures": self.rotation_failures,
            "degraded": self.degraded,
            "path": self.path,
            "counts": self.counts(),
            "events": self.tail(),
        }

    # ------------------------------------------------------------------
    # Disk management
    # ------------------------------------------------------------------
    def _open(self) -> None:
        assert self.path is not None
        faults.fire("journal.open")
        self._file = open(self.path, "a", encoding="utf-8")
        self._file_bytes = self._file.tell()

    def _abandon(self) -> None:
        """Give up on the disk file (memory recording continues)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def _rotate(self) -> None:
        """Shift generations up: journal → .1 → .2 … drop beyond max.

        Atomic-or-abandoned: every move is an ``os.replace`` (atomic on
        POSIX), and any failure abandons the *rotation* — never the
        journal.  A partial shift can leave a numbering gap (``.3``
        moved before ``.2`` failed), which readers already tolerate;
        the live file is then reopened (or recreated) and appending
        continues.  Only if that reopen also fails does the journal
        degrade to memory-only.
        """
        assert self.path is not None and self._file is not None
        self._file.close()
        self._file = None
        try:
            faults.fire("journal.rotate")
            oldest = f"{self.path}.{self.max_files}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for generation in range(self.max_files - 1, 0, -1):
                src = f"{self.path}.{generation}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{generation + 1}")
            os.replace(self.path, f"{self.path}.1")
            self.rotations += 1
        except OSError:
            self.rotation_failures += 1
        try:
            self._open()
        except OSError:
            self.io_errors += 1
            self._file = None

    def close(self) -> None:
        """Close the on-disk file (memory window stays readable)."""
        with self._lock:
            self._closed = True
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL journal file back into event dicts (skips blank
    lines; raises on malformed JSON so corruption is loud)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class _NullJournal:
    """Inert journal for telemetry-disabled services."""

    path = None
    seq = 0
    dropped = 0
    rotations = 0
    io_errors = 0
    rotation_failures = 0
    degraded = False

    def record(self, kind: str, **fields: Any) -> None:
        return None

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def counts(self) -> Dict[str, int]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "seq": 0,
            "dropped": 0,
            "rotations": 0,
            "io_errors": 0,
            "rotation_failures": 0,
            "degraded": False,
            "path": None,
            "counts": {},
            "events": [],
        }

    def close(self) -> None:
        return None


NULL_JOURNAL = _NullJournal()
