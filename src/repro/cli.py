"""Command-line interface: ``python -m repro``.

Subcommands:

``query``
    Run a CFQ (in the paper's ``{(S, T) | ...}`` notation) against a
    generated market-basket workload and print the answer and plan.
    ``--cache-dir`` serves it through the fingerprinted result cache,
    persisted on disk so a repeated identical invocation is warm.
``batch``
    Run several CFQs over one workload through the serving layer's
    shared-scan batch executor and print a per-query source/timing table.
``experiments``
    Regenerate the paper's Section 7 tables (same code as the benchmark
    suite), optionally at smoke scale.
``classify``
    Classify one constraint: 1-var properties or the Figure 1 verdicts.
``stats``
    Render a telemetry snapshot (``--telemetry-out``) or a run report
    (``--trace-out`` / ``--report-out``) as a human summary, Prometheus
    text exposition, or Chrome trace-event JSON.
``serve``
    Run the multi-tenant HTTP/JSON query server (single-flight dedup,
    shared-scan coalescing, per-tenant rate limits and budgets from
    ``--tenants tenants.json``); see ``docs/server.md``.
``replay``
    Load-replay a server (an in-process one when ``--url`` is omitted)
    with interleaved tenant sessions and print latency/throughput and
    sharing statistics; ``--verify-cold`` re-checks every served
    answer against a cold single-threaded run.

Examples::

    python -m repro query '{(S, T) | max(S.Price) <= min(T.Price)}'
    python -m repro query '{(S, T) | freq(S, 0.03) & S.Type = {snacks}}' --pairs 5
    python -m repro batch '{(S, T) | S.Type = T.Type}' \
        '{(S, T) | max(S.Price) <= min(T.Price)}'
    python -m repro experiments --scale smoke --only fig8a
    python -m repro classify 'sum(S.Price) <= sum(T.Price)'
    python -m repro stats telemetry.json --format prometheus
    python -m repro serve --port 8399 --tenants tenants.json
    python -m repro replay --queries 200 --threads 8 --verify-cold
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.constraints.ast import is_onevar, is_twovar
from repro.constraints.onevar import OneVarView
from repro.constraints.parser import parse_constraint
from repro.constraints.properties import classify_onevar
from repro.constraints.twovar import TwoVarView
from repro.core.cfq_parser import parse_cfq
from repro.core.classify import classify_twovar
from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import quickstart_workload
from repro.errors import ExecutionError, ReproError
from repro.mining.backends import (
    BACKENDS,
    ParallelBackend,
    backend_scope,
    make_backend,
)
from repro.obs.logs import LEVELS, configure_logging
from repro.obs.report import build_run_report
from repro.obs.trace import Tracer
from repro.runtime.guard import RunGuard

#: Exit code for a run cut short by a guard budget or SIGINT/SIGTERM —
#: distinct from 0 (complete) and 2 (error) so schedulers can tell a
#: well-labeled partial result from a failure.
EXIT_INTERRUPTED = 3


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constrained frequent set queries with 2-var constraints "
        "(SIGMOD 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run a CFQ on a generated workload")
    query.add_argument("cfq", help="query text, e.g. '{(S, T) | S.Type = T.Type}'")
    query.add_argument("--minsup", type=float, default=0.02,
                       help="default relative support threshold")
    query.add_argument("--transactions", type=int, default=1500,
                       help="size of the generated market-basket database")
    query.add_argument("--seed", type=int, default=7)
    query.add_argument("--pairs", type=int, default=10,
                       help="how many valid pairs to print")
    query.add_argument("--explain", action="store_true",
                       help="print the execution plan and operation counts")
    query.add_argument("--baseline", action="store_true",
                       help="also run Apriori+ and report the speedup")
    query.add_argument("--backend", default="hybrid", metavar="BACKEND",
                       help="support-counting backend: one of "
                       f"{', '.join(sorted(BACKENDS))}, or "
                       "'parallel:<workers>[:<kernel>]' — e.g. "
                       "'parallel:4:bitmap' shards the vectorized bitmap "
                       "kernel (default: hybrid)")
    query.add_argument("--workers", type=int, default=None,
                       help="worker processes for '--backend parallel' "
                       "(default: up to 4, bounded by the visible CPUs)")
    query.add_argument("--trace-out", metavar="PATH", default=None,
                       help="trace the run and write the versioned JSON "
                       "run report (spans, metrics, pruning table) to PATH")
    query.add_argument("--profile", action="store_true",
                       help="run under cProfile and embed the top hotspots "
                       "in the run report (implies tracing)")
    query.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget; a run that exceeds it stops "
                       "cooperatively and reports a partial result "
                       f"(exit code {EXIT_INTERRUPTED})")
    query.add_argument("--max-memory-mb", type=float, default=None, metavar="MB",
                       help="RSS watermark sampled between candidate batches; "
                       "exceeding it interrupts the run with a partial result")
    query.add_argument("--max-candidates", type=int, default=None, metavar="N",
                       help="per-level candidate budget; a level generating "
                       "more candidates interrupts the run")
    query.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="write a crash-safe checkpoint after each completed "
                       "level into DIR")
    query.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint in --checkpoint-dir "
                       "(validated against the query and dataset)")
    query.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="serve through the fingerprinted result cache, "
                       "persisting artifacts in DIR: a repeated identical "
                       "invocation is answered from cache (incompatible "
                       "with --checkpoint-dir/--resume)")
    query.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="JSON fault-injection plan installed for the "
                       "whole run (testing hook; see docs/fault-tolerance.md)."
                       " Faults degrade the serving tiers, never the answer")
    query.add_argument("--telemetry-out", metavar="PATH", default=None,
                       help="write the serving telemetry snapshot (per-"
                       "outcome latency histograms, cache gauges, event "
                       "journal) to PATH; requires --cache-dir (telemetry "
                       "lives on the serving layer)")

    batch = sub.add_parser(
        "batch",
        help="run several CFQs over one workload with shared scans",
    )
    batch.add_argument("cfqs", nargs="+", metavar="CFQ",
                       help="query texts, e.g. '{(S, T) | S.Type = T.Type}'")
    batch.add_argument("--minsup", type=float, default=0.02,
                       help="default relative support threshold")
    batch.add_argument("--transactions", type=int, default=1500,
                       help="size of the generated market-basket database")
    batch.add_argument("--seed", type=int, default=7)
    batch.add_argument("--pairs", type=int, default=3,
                       help="how many valid pairs to print per query")
    batch.add_argument("--backend", default="hybrid", metavar="BACKEND",
                       help="support-counting backend (as in 'query')")
    batch.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="also persist full result artifacts in DIR")
    batch.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget for the whole batch")
    batch.add_argument("--churn", action="append", default=None,
                       metavar="OP:N",
                       help="after the batch, mutate the dataset and re-run "
                       "it: 'append:N' adds N generated transactions, "
                       "'delete:N' removes N random ones; repeatable — each "
                       "flag is one churn step, served through incremental "
                       "skeleton maintenance (delta recount, not a re-mine)")
    batch.add_argument("--verify-cold", action="store_true",
                       help="after every churn step, re-run each query cold "
                       "on the mutated dataset and fail (exit 2) unless the "
                       "incrementally served answers are identical")
    batch.add_argument("--report-out", metavar="PATH", default=None,
                       help="write a versioned JSON run report for the first "
                       "query's final answer, including the churn "
                       "maintenance 'delta' block")
    batch.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="JSON fault-injection plan installed for the "
                       "whole batch (testing hook; see "
                       "docs/fault-tolerance.md)")
    batch.add_argument("--telemetry-out", metavar="PATH", default=None,
                       help="write the serving telemetry snapshot (per-"
                       "outcome latency histograms, cache gauges, event "
                       "journal) to PATH")
    batch.add_argument("--journal-out", metavar="PATH", default=None,
                       help="stream the serving event journal to PATH as "
                       "rotating JSONL while the batch runs")

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's Section 7 tables"
    )
    experiments.add_argument("--scale", choices=("full", "smoke"), default="smoke")
    experiments.add_argument(
        "--only",
        choices=("fig8a", "fig8b", "jmax", "ccc", "ablations", "backends",
                 "serving"),
        default=None,
        help="run a single experiment family",
    )
    experiments.add_argument(
        "--report-dir", metavar="DIR", default=None,
        help="also write one run-report JSON per strategy run into DIR",
    )
    experiments.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-strategy-run wall-clock budget; tripped runs appear as "
        "PARTIAL notes under the tables instead of aborting them",
    )

    for command in (query, batch, experiments):
        command.add_argument(
            "--log-level", choices=LEVELS, default=None,
            help="enable repro.* logging on stderr at this level",
        )

    classify = sub.add_parser("classify", help="classify a constraint")
    classify.add_argument("constraint", help="constraint text")

    stats = sub.add_parser(
        "stats",
        help="render a telemetry snapshot or run report",
    )
    stats.add_argument("file", help="a --telemetry-out snapshot or a "
                       "--trace-out/--report-out run report (JSON)")
    stats.add_argument("--format", choices=("text", "prometheus",
                                            "chrome-trace"),
                       default="text", dest="format_",
                       help="text summary (default), Prometheus text "
                       "exposition of the metrics, or Chrome trace-event "
                       "JSON of the span tree (run reports only)")
    stats.add_argument("--out", metavar="PATH", default=None,
                       help="write the rendering to PATH instead of stdout")

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant HTTP/JSON query server",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8399,
                       help="listen port; 0 picks a free one (default 8399)")
    serve.add_argument("--tenants", metavar="PATH", default=None,
                       help="tenants.json admission table "
                       "({'tenants': {name: {rate, burst, deadline_seconds, "
                       "...}}}); omitted = one permissive shared profile")
    serve.add_argument("--transactions", type=int, default=1500,
                       help="synthetic dataset size (default 1500)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--minsup", type=float, default=0.02,
                       help="default support threshold for requests that "
                       "set none (default 0.02)")
    serve.add_argument("--window-ms", type=float, default=4.0,
                       help="coalescing admission window in milliseconds; "
                       "0 disables coalescing (default 4)")
    serve.add_argument("--max-width", type=int, default=16,
                       help="coalesced batch size cap (default 16)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="bound on concurrently admitted requests; "
                       "beyond it arrivals are shed with 503 (default 64)")
    serve.add_argument("--http-workers", type=int, default=8,
                       help="HTTP worker-thread pool size (default 8)")
    serve.add_argument("--cache-entries", type=int, default=64,
                       help="memory result-cache capacity (default 64)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist results under DIR (the warm disk tier)")
    serve.add_argument("--backend", default="hybrid", metavar="BACKEND",
                       help=f"counting backend ({', '.join(sorted(BACKENDS))}; "
                       "default hybrid)")
    serve.add_argument("--journal-out", metavar="PATH", default=None,
                       help="append serving events to PATH as JSON lines")

    replay = sub.add_parser(
        "replay",
        help="replay a threaded query workload against a server",
    )
    replay.add_argument("--url", default=None, metavar="URL",
                        help="server to drive; omitted = start an "
                        "in-process server on a free port first")
    replay.add_argument("--queries", type=int, default=200,
                        help="number of requests to send (default 200)")
    replay.add_argument("--threads", type=int, default=8,
                        help="client threads (default 8)")
    replay.add_argument("--steps", type=int, default=4,
                        help="refinement-session length the workload "
                        "cycles over (default 4)")
    replay.add_argument("--relax", type=float, default=0.5,
                        help="session opening-threshold relaxation "
                        "(default 0.5; 1.0 = no relaxation)")
    replay.add_argument("--min-step", type=int, default=0,
                        help="skip the session's first N (broadest) "
                        "queries (default 0)")
    replay.add_argument("--transactions", type=int, default=1500,
                        help="synthetic dataset size (default 1500); must "
                        "match the server's when --url is given")
    replay.add_argument("--seed", type=int, default=7)
    replay.add_argument("--window-ms", type=float, default=4.0,
                        help="in-process server's coalescing window "
                        "(ignored with --url; default 4)")
    replay.add_argument("--verify-cold", action="store_true",
                        help="after the replay, re-execute every unique "
                        "query cold and require bit-identical answers "
                        "(exit 2 on any mismatch)")
    replay.add_argument("--report-out", metavar="PATH", default=None,
                        help="write the replay report JSON to PATH")
    return parser


def _resolve_backend(name: str, workers: Optional[int]):
    """Build the counting backend the query flags describe.

    Malformed names and ``parallel:<workers>`` specs raise
    :class:`~repro.errors.ExecutionError`, which ``main`` renders as a
    clean ``error: ...`` / exit-code-2 instead of a traceback.
    """
    if workers is not None:
        if name != "parallel":
            raise ExecutionError(
                f"--workers only applies to '--backend parallel', not {name!r}"
            )
        return ParallelBackend(workers=workers)
    return make_backend(name)


def _cmd_query(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        raise ExecutionError("--resume requires --checkpoint-dir")
    if args.cache_dir and (args.checkpoint_dir or args.resume):
        raise ExecutionError(
            "--cache-dir cannot be combined with --checkpoint-dir/--resume: "
            "checkpointed runs bypass the result cache by design"
        )
    if args.telemetry_out and not args.cache_dir:
        raise ExecutionError(
            "--telemetry-out requires --cache-dir: telemetry lives on the "
            "serving layer, and only cached runs go through it"
        )
    backend = _resolve_backend(args.backend, args.workers)
    service = None
    tracer = Tracer() if (args.trace_out or args.profile) else None
    workload = quickstart_workload(n_transactions=args.transactions,
                                   seed=args.seed)
    cfq = parse_cfq(args.cfq, workload.domains, default_minsup=args.minsup)
    print(f"workload: {workload.db!r}")
    print(f"query:    {cfq}")
    # The guard is always live for interactive runs so Ctrl-C / SIGTERM
    # unwind into a labeled partial result instead of a traceback; the
    # budget fields stay None unless the flags set them.
    guard = RunGuard(
        deadline_seconds=args.deadline,
        max_memory_mb=args.max_memory_mb,
        max_candidates=args.max_candidates,
    )
    profile = None
    # Hold the backend's resources (the parallel worker pool) open across
    # the whole command; the engine's nested scope then reuses them.
    with backend_scope(backend), guard.signals():
        if args.profile:
            import cProfile

            profile = cProfile.Profile()
            profile.enable()
        try:
            if args.cache_dir:
                from repro.serve import QueryService

                service = QueryService(cache_dir=args.cache_dir)
                result = service.execute(
                    workload.db, cfq,
                    backend=backend, tracer=tracer, guard=guard,
                )
            else:
                result = CFQOptimizer(cfq).execute(
                    workload.db,
                    backend=backend,
                    tracer=tracer,
                    guard=guard,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                )
        finally:
            if profile is not None:
                profile.disable()
    if service is not None and tracer is not None:
        service.telemetry.merge_run(tracer.metrics)
    if args.cache_dir and result.cache_info is not None:
        source = result.cache_info.get("source")
        if source == "result-cache":
            tier = result.cache_info.get("tier", "memory")
            print(f"cache: hit (result-cache, {tier} tier)")
        elif source == "skeleton":
            print("cache: hit (skeleton oracle)")
        else:
            print("cache: miss (cold run stored)")
    if result.is_partial:
        trip = result.interruption
        print(f"run interrupted: {trip.summary() if trip else 'unknown reason'}")
        print("reporting partial results "
              "(frequent sets verified so far; see --explain)")
    if args.trace_out or args.profile:
        report = build_run_report(
            result,
            tracer=tracer,
            meta={
                "command": "query",
                "transactions": args.transactions,
                "seed": args.seed,
                "minsup": args.minsup,
                "deadline": args.deadline,
                "max_memory_mb": args.max_memory_mb,
                "max_candidates": args.max_candidates,
                "resumed": bool(args.resume),
            },
            profile=profile,
            telemetry=(
                service.telemetry.snapshot(service.stats)
                if service is not None else None
            ),
        )
        if args.trace_out:
            report.write(args.trace_out)
            print(f"run report written to {args.trace_out}")
        if profile is not None and report.profile:
            print("top hotspots (cumulative seconds):")
            for entry in report.profile["hotspots"][:5]:
                print(f"  {entry['cumulative_seconds']:>10.4f}  "
                      f"{entry['function']} ({entry['file']}:{entry['line']})")
    for var in cfq.variables:
        print(f"frequent valid {var}-sets: {len(result.frequent_valid(var))}")
    if len(cfq.variables) == 2:
        pairs = result.pairs(limit=args.pairs)
        print(f"first {len(pairs)} valid pairs:")
        for s0, t0 in pairs:
            print(f"  S={s0}  T={t0}")
    if args.baseline:
        if result.is_partial:
            print("baseline comparison skipped: partial runs have no "
                  "meaningful op-cost speedup")
        else:
            from repro.mining.aprioriplus import apriori_plus

            baseline = apriori_plus(workload.db, cfq)
            speedup = baseline.counters.cost() / result.counters.cost()
            print(f"op-cost speedup over Apriori+: {speedup:.2f}x")
    if args.explain:
        # explain() includes pool lifecycle / failure / retry / fallback
        # stats when a parallel backend ran (see ParallelStats.summary).
        print(result.explain())
    if args.telemetry_out and service is not None:
        service.telemetry.write(args.telemetry_out, stats=service.stats)
        print(f"telemetry snapshot written to {args.telemetry_out}")
    return EXIT_INTERRUPTED if result.is_partial else 0


def _parse_churn(spec: str):
    """``'append:N'`` / ``'delete:N'`` → ``(op, n)``; anything else is an
    :class:`~repro.errors.ExecutionError` (clean exit 2, no traceback)."""
    op, sep, count = spec.partition(":")
    if not sep or op not in ("append", "delete"):
        raise ExecutionError(
            f"--churn expects 'append:N' or 'delete:N', got {spec!r}"
        )
    try:
        n = int(count)
    except ValueError:
        n = 0
    if n <= 0:
        raise ExecutionError(f"--churn {spec!r}: N must be a positive integer")
    return op, n


def _churn_transactions(db, n: int, rng) -> List[tuple]:
    """``n`` synthetic transactions drawn from the database's own item
    universe and length distribution, so appended rows look like the
    workload instead of shifting every support toward zero."""
    universe = sorted({item for t in db.transactions for item in t})
    lengths = [len(t) for t in db.transactions if t] or [1]
    return [
        tuple(sorted(rng.sample(universe, min(rng.choice(lengths),
                                              len(universe)))))
        for _ in range(n)
    ]


def _print_batch_items(report, pairs_limit: int) -> bool:
    """Per-query source/timing/answer lines; returns True if any query
    reported a partial result."""
    any_partial = False
    for index, item in enumerate(report.items, start=1):
        result = item.result
        status = "" if not result.is_partial else " [PARTIAL]"
        any_partial = any_partial or result.is_partial
        print(f"  [{index}] {item.cfq}")
        print(f"      source {item.source}, "
              f"{item.wall_seconds:.4f}s{status}")
        for var in item.cfq.variables:
            print(f"      frequent valid {var}-sets: "
                  f"{len(result.frequent_valid(var))}")
        if len(item.cfq.variables) == 2 and not result.is_partial:
            for s0, t0 in result.pairs(limit=pairs_limit):
                print(f"      S={s0}  T={t0}")
    return any_partial


def _answers_match(served, cold) -> bool:
    """Order-sensitive answer comparison (the serving layer's bit-identity
    contract: frequent sets with supports in insertion order, plus the
    pair list)."""
    if [
        list(served.frequent_valid(var).items())
        for var in served.cfq.variables
    ] != [
        list(cold.frequent_valid(var).items())
        for var in cold.cfq.variables
    ]:
        return False
    if len(served.cfq.variables) == 2:
        return served.pairs() == cold.pairs()
    return True


def _cmd_batch(args: argparse.Namespace) -> int:
    import random

    from repro.serve import QueryService

    churn_ops = [_parse_churn(spec) for spec in (args.churn or [])]
    backend = _resolve_backend(args.backend, None)
    workload = quickstart_workload(n_transactions=args.transactions,
                                   seed=args.seed)
    db = workload.db
    cfqs = [
        parse_cfq(text, workload.domains, default_minsup=args.minsup)
        for text in args.cfqs
    ]
    print(f"workload: {db!r}")
    guard = RunGuard(deadline_seconds=args.deadline)
    service = QueryService(
        cache_dir=args.cache_dir, journal_path=args.journal_out
    )
    rng = random.Random(args.seed)
    delta_reports = []
    with backend_scope(backend), guard.signals():
        report = service.execute_batch(db, cfqs, backend=backend, guard=guard)
        print(f"batch of {len(report.items)} queries "
              f"(skeleton build {report.skeleton_build_seconds:.3f}s, "
              f"{service.stats.skeleton_builds} skeleton(s) mined)")
        any_partial = _print_batch_items(report, args.pairs)

        for step, (op, n) in enumerate(churn_ops, start=1):
            if op == "append":
                db, delta = db.append(_churn_transactions(db, n, rng))
            else:
                population = range(len(db))
                tids = rng.sample(population, min(n, max(len(db) - 1, 0)))
                db, delta = db.delete(tids)
            maintenance = service.apply_delta(
                db, delta, backend=backend, guard=guard
            )
            delta_reports.append(maintenance)
            probed = sum(r.probed for r in maintenance.refreshes)
            print(f"churn[{step}] {op}:{n} -> {len(db)} transactions "
                  f"({delta.churn_fraction:.1%} churn); "
                  f"{maintenance.skeletons_refreshed} skeleton(s) refreshed, "
                  f"{maintenance.skeletons_dropped} dropped, "
                  f"{probed} candidate(s) probed, "
                  f"{maintenance.results_invalidated} result(s) invalidated "
                  f"in {maintenance.wall_seconds:.4f}s")
            report = service.execute_batch(
                db, cfqs, backend=backend, guard=guard
            )
            any_partial = _print_batch_items(report, args.pairs) or any_partial
            if args.verify_cold:
                for item in report.items:
                    cold = CFQOptimizer(item.cfq).execute(db)
                    if not _answers_match(item.result, cold):
                        raise ExecutionError(
                            f"--verify-cold: churn step {step} served an "
                            f"answer for {item.cfq} that differs from a "
                            "cold run over the mutated dataset"
                        )
                print(f"churn[{step}] verify-cold: "
                      f"{len(report.items)} answer(s) identical to cold runs")
    print(f"cache stats: {service.stats.summary()}")
    if args.report_out:
        doc = build_run_report(
            report.items[0].result,
            meta={
                "command": "batch",
                "queries": [str(c) for c in cfqs],
                "transactions": args.transactions,
                "seed": args.seed,
                "minsup": args.minsup,
                "churn": args.churn or [],
            },
            delta=(
                {"steps": [m.as_dict() for m in delta_reports]}
                if delta_reports else None
            ),
            telemetry=service.telemetry.snapshot(service.stats),
        )
        doc.write(args.report_out)
        print(f"run report written to {args.report_out}")
    if args.telemetry_out:
        service.telemetry.write(args.telemetry_out, stats=service.stats)
        print(f"telemetry snapshot written to {args.telemetry_out}")
    if args.journal_out:
        service.telemetry.journal.close()
        print(f"event journal written to {args.journal_out}")
    return EXIT_INTERRUPTED if any_partial else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import experiments as exp

    families = {
        "fig8a": (exp.fig8a_speedups, exp.fig8a_level_table, exp.fig8a_range_table),
        "fig8b": (exp.fig8b_speedups, exp.fig8b_range_table),
        "jmax": (exp.jmax_table,),
        "ccc": (exp.ccc_experiment,),
        "ablations": (exp.ablation_table,),
        "backends": (exp.backend_table,),
        "serving": (exp.serving_repeated_table, exp.serving_refinement_table),
    }
    selected = (
        families[args.only]
        if args.only
        else tuple(fn for group in families.values() for fn in group)
    )
    kwargs = {}
    if args.report_dir:
        import os

        os.makedirs(args.report_dir, exist_ok=True)
        kwargs["report_dir"] = args.report_dir
    if args.deadline is not None:
        kwargs["deadline"] = args.deadline
    for experiment in selected:
        print(experiment(scale=args.scale, **kwargs).render())
        print()
    if args.report_dir:
        print(f"run reports written under {args.report_dir}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    constraint = parse_constraint(args.constraint)
    print(f"constraint: {constraint}")
    if is_onevar(constraint):
        view = OneVarView.of(constraint)
        props = classify_onevar(view, non_negative=True)
        print("kind: 1-variable")
        print(f"anti-monotone: {props.anti_monotone}")
        print(f"monotone:      {props.monotone}")
        print(f"succinct:      {props.succinct}")
        if view.shape and getattr(view.shape, "func", None) == "sum":
            print("(sum verdicts assume a non-negative attribute domain)")
    elif is_twovar(constraint):
        view2 = TwoVarView.of(constraint)
        props2 = classify_twovar(view2)
        print("kind: 2-variable")
        print(f"anti-monotone:  {props2.anti_monotone}")
        print(f"quasi-succinct: {props2.quasi_succinct}")
        if props2.needs_induction:
            print("handled via: induced weaker constraint (Figure 4) and/or "
                  "iterative J^k_max pruning (Section 5.2)")
        else:
            print("handled via: reduction to 1-var succinct constraints "
                  "(Figures 2-3)")
    else:
        print("kind: constant (no set variables)")
    return 0


def _render_telemetry_text(document) -> List[str]:
    """Human summary of a ``repro.serve.telemetry`` snapshot."""
    from repro.db.stats import CacheStats

    lines = [
        f"serving telemetry (uptime {document.get('uptime_seconds', 0):.1f}s, "
        f"{document.get('runs_merged', 0)} run registr(ies) merged)"
    ]
    outcomes = document.get("outcomes", {})
    if outcomes:
        lines.append("per-outcome latency (seconds):")
        lines.append(
            f"  {'outcome':<15} {'count':>7} {'p50':>10} {'p95':>10} "
            f"{'p99':>10} {'max':>10}"
        )
        for outcome, summary in sorted(outcomes.items()):
            lines.append(
                f"  {outcome:<15} {summary['count']:>7} "
                f"{summary['p50']:>10.6f} {summary['p95']:>10.6f} "
                f"{summary['p99']:>10.6f} {summary['max']:>10.6f}"
            )
    else:
        lines.append("no servings recorded")
    if document.get("cache"):
        lines.append(
            f"cache: {CacheStats.from_dict(document['cache']).summary()}"
        )
    journal = document.get("journal", {})
    counts = journal.get("counts", {})
    if counts:
        rendered = ", ".join(f"{kind} {n}" for kind, n in counts.items())
        lines.append(
            f"journal: seq {journal.get('seq', 0)}, "
            f"{journal.get('dropped', 0)} dropped from window; {rendered}"
        )
    return lines


def _render_report_text(document) -> List[str]:
    """Human summary of a ``repro.run_report`` document."""
    lines = [
        f"run report v{document['version']} "
        f"(query: {document['meta'].get('query', '?')})"
    ]
    answers = document.get("answers", {})
    if answers.get("frequent_valid"):
        for var, n in sorted(answers["frequent_valid"].items()):
            lines.append(f"  frequent valid {var}-sets: {n}")
    if answers.get("status"):
        lines.append(f"  status: {answers['status']}")
    spans = document.get("trace", {}).get("spans", [])
    if spans:
        total = sum(s.get("wall_seconds", 0.0) for s in spans)
        lines.append(f"  trace: {len(spans)} root span(s), {total:.4f}s wall")
    if document.get("cache"):
        lines.append(f"  served from: {document['cache'].get('source', '?')}")
    if document.get("telemetry"):
        lines.append("")
        lines.extend(_render_telemetry_text(document["telemetry"]))
    return lines


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import render_chrome_trace, render_prometheus
    from repro.obs.report import RUN_REPORT_SCHEMA
    from repro.serve.telemetry import TELEMETRY_SCHEMA

    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ExecutionError(f"cannot read {args.file}: {exc}")
    schema = document.get("schema") if isinstance(document, dict) else None
    if schema not in (TELEMETRY_SCHEMA, RUN_REPORT_SCHEMA):
        raise ExecutionError(
            f"{args.file}: unrecognized schema {schema!r}; expected a "
            f"{TELEMETRY_SCHEMA!r} snapshot (--telemetry-out) or a "
            f"{RUN_REPORT_SCHEMA!r} run report (--trace-out/--report-out)"
        )
    if args.format_ == "text":
        if schema == TELEMETRY_SCHEMA:
            output = "\n".join(_render_telemetry_text(document)) + "\n"
        else:
            output = "\n".join(_render_report_text(document)) + "\n"
    elif args.format_ == "prometheus":
        output = render_prometheus(document.get("metrics", {}))
    else:  # chrome-trace
        if schema == TELEMETRY_SCHEMA:
            raise ExecutionError(
                "--format chrome-trace needs a run report (telemetry "
                "snapshots carry no span tree); pass a --trace-out file"
            )
        output = json.dumps(
            render_chrome_trace(document.get("trace", {})), indent=2
        ) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"written to {args.out}")
    else:
        sys.stdout.write(output)
    return 0


def _build_server(
    transactions: int,
    seed: int,
    minsup: float = 0.02,
    tenants_path: Optional[str] = None,
    window_seconds: float = 0.004,
    max_width: int = 16,
    queue_limit: int = 64,
    cache_entries: int = 64,
    cache_dir: Optional[str] = None,
    backend_name: str = "hybrid",
    journal_path: Optional[str] = None,
):
    """A QueryServer over the quickstart workload (serve/replay share it)."""
    from repro.serve.admission import TenantRegistry
    from repro.serve.server import QueryServer
    from repro.serve.service import QueryService

    workload = quickstart_workload(n_transactions=transactions, seed=seed)
    service = QueryService(
        max_entries=cache_entries,
        cache_dir=cache_dir,
        telemetry=True,
        journal_path=journal_path,
    )
    tenants = (
        TenantRegistry.load(tenants_path)
        if tenants_path
        else TenantRegistry.open_registry()
    )
    core = QueryServer(
        service,
        workload.db,
        workload.domains,
        tenants=tenants,
        window_seconds=window_seconds,
        max_width=max_width,
        queue_limit=queue_limit,
        default_minsup=minsup,
        backend=make_backend(backend_name),
    )
    return workload, core


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import start_server

    workload, core = _build_server(
        transactions=args.transactions,
        seed=args.seed,
        minsup=args.minsup,
        tenants_path=args.tenants,
        window_seconds=args.window_ms / 1000.0,
        max_width=args.max_width,
        queue_limit=args.queue_limit,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        backend_name=args.backend,
        journal_path=args.journal_out,
    )
    handle = start_server(
        core, host=args.host, port=args.port, workers=args.http_workers
    )
    print(f"serving workload {workload.name!r} "
          f"({len(workload.db)} transactions) at {handle.url}")
    print("endpoints: POST /query   GET /healthz   GET /stats")
    print("Ctrl-C to stop")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
        handle.shutdown()
        return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.serve import replay as replay_mod
    from repro.serve.server import start_server

    workload, core = _build_server(
        transactions=args.transactions,
        seed=args.seed,
        window_seconds=args.window_ms / 1000.0,
    )
    requests = replay_mod.session_requests(
        workload, n_requests=args.queries, steps=args.steps,
        relax=args.relax, min_step=args.min_step,
    )
    handle = None
    url = args.url
    if url is None:
        handle = start_server(core, port=0)
        url = handle.url
        print(f"replaying against in-process server at {url}")
    try:
        start = time.perf_counter()
        outcomes = replay_mod.replay(url, requests, threads=args.threads)
        report = replay_mod.summarize(
            outcomes, wall_seconds=time.perf_counter() - start
        )
        if args.verify_cold:
            report.verify = replay_mod.verify_cold(
                outcomes, workload.db, workload.domains,
                default_minsup=workload.minsup,
            )
    finally:
        if handle is not None:
            handle.shutdown()
    document = report.as_dict()
    print(json.dumps(document, indent=2))
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as out:
            json.dump(document, out, indent=2)
            out.write("\n")
        print(f"report written to {args.report_out}")
    if report.n_errors:
        print(f"error: {report.n_errors} request(s) failed", file=sys.stderr)
        return 2
    if args.verify_cold and not report.verify["ok"]:
        print(
            f"error: {len(report.verify['mismatches'])} served answer(s) "
            "diverged from the cold oracle",
            file=sys.stderr,
        )
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        configure_logging(args.log_level)
    handlers = {
        "query": _cmd_query,
        "batch": _cmd_batch,
        "experiments": _cmd_experiments,
        "classify": _cmd_classify,
        "stats": _cmd_stats,
        "serve": _cmd_serve,
        "replay": _cmd_replay,
    }
    try:
        plan_path = getattr(args, "fault_plan", None)
        if plan_path:
            from repro.runtime import faults

            plan = faults.FaultPlan.from_file(plan_path)
            with faults.installed(plan):
                code = handlers[args.command](args)
            if plan.fired:
                # A degraded-but-complete run keeps exit code 0: the
                # answers are proven bit-identical to a fault-free run,
                # and the degradation is narrated here + in telemetry.
                print(f"fault plan: {len(plan.fired)} fault(s) fired "
                      f"({', '.join(sorted({s for s, _, _ in plan.fired}))}); "
                      "service degraded but answers are fault-free-identical")
            return code
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
