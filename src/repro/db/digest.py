"""Content digests of transaction lists.

One canonical digest is shared by every subsystem that keys on dataset
content — checkpoint fingerprints (:mod:`repro.runtime.checkpoint`), the
serving layer's dataset fingerprints (:mod:`repro.serve.fingerprint`),
the vertical/bitmap backends' content-keyed caches, and the churn layer's
:class:`~repro.db.delta.DatasetDelta` — so "same digest" means exactly
"same transactions in the same order" everywhere.
"""

from __future__ import annotations

import hashlib


def transactions_digest(transactions) -> str:
    """Order-sensitive SHA-256 digest of a transaction list.

    Streams each transaction's ids through the hash without
    materializing anything; two lists get the same digest iff they hold
    the same transactions in the same order (order matters — it
    determines counting dict order, which replay must reproduce).
    """
    digest = hashlib.sha256()
    for t in transactions:
        digest.update(",".join(map(str, t)).encode("ascii"))
        digest.update(b";")
    return digest.hexdigest()


def dataset_digest(db) -> str:
    """:func:`transactions_digest` of a whole transaction database."""
    return transactions_digest(db.transactions)
