"""First-class dataset deltas: what changed between two database versions.

The serving layer treats a dataset as immutable content identified by an
order-sensitive digest (:mod:`repro.db.digest`).  Churn therefore never
mutates a :class:`~repro.db.transactions.TransactionDatabase` in place —
``db.append(...)`` / ``db.delete(...)`` return a **new** database plus a
:class:`DatasetDelta` describing exactly which transactions entered and
left.  The delta is what makes incremental maintenance sound: a consumer
holding state derived from ``base_digest`` can check the delta really
starts from its version, adjust supports by counting only the
added/removed transactions, and re-key itself under ``new_digest``
(:mod:`repro.serve.delta`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

Transaction = Tuple[int, ...]


@dataclass(frozen=True)
class DatasetDelta:
    """An append/delete step between two immutable database versions.

    Attributes
    ----------
    base_digest / new_digest:
        Content digests (:func:`repro.db.digest.transactions_digest`) of
        the database before and after the step — the same strings the
        serving layer uses as dataset fingerprints, so a delta can be
        validated against live objects without trusting the caller.
    base_size / new_size:
        Transaction counts before and after (they drive ``min_count``
        rescaling under relative minsup).
    added / added_tids:
        Normalized (sorted, deduplicated) transactions appended, and the
        TIDs they occupy in the *new* database.
    removed / removed_tids:
        Transactions deleted, and the TIDs they occupied in the *base*
        database.  TIDs after a deletion shift down, which is why the
        delta carries the transactions themselves — support arithmetic
        never needs positional identity.
    """

    base_digest: str
    new_digest: str
    base_size: int
    new_size: int
    added: Tuple[Transaction, ...] = ()
    added_tids: Tuple[int, ...] = ()
    removed: Tuple[Transaction, ...] = ()
    removed_tids: Tuple[int, ...] = ()
    #: Union of item ids occurring in any added or removed transaction —
    #: an itemset disjoint from a delta transaction cannot change count
    #: on it, so only candidates drawing from this set need recounting.
    touched_items: frozenset = field(default_factory=frozenset)

    @property
    def churn_fraction(self) -> float:
        """Changed transactions relative to the base size (>= 0.0)."""
        if self.base_size == 0:
            return float(len(self.added) + len(self.removed))
        return (len(self.added) + len(self.removed)) / self.base_size

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def describes(self, base_digest: str, new_digest: str) -> bool:
        """Whether this delta is the step ``base -> new``."""
        return self.base_digest == base_digest and self.new_digest == new_digest

    def as_dict(self) -> Dict[str, Any]:
        """Flat summary for reports and the CLI's delta block."""
        return {
            "base_digest": self.base_digest,
            "new_digest": self.new_digest,
            "base_size": self.base_size,
            "new_size": self.new_size,
            "added": len(self.added),
            "removed": len(self.removed),
            "touched_items": len(self.touched_items),
            "churn_fraction": round(self.churn_fraction, 6),
        }


def make_delta(
    base_transactions: Tuple[Transaction, ...],
    new_transactions: Tuple[Transaction, ...],
    base_digest: str,
    new_digest: str,
    added_tids: Tuple[int, ...] = (),
    removed_tids: Tuple[int, ...] = (),
) -> DatasetDelta:
    """Assemble a :class:`DatasetDelta` from resolved TID positions."""
    added = tuple(new_transactions[tid] for tid in added_tids)
    removed = tuple(base_transactions[tid] for tid in removed_tids)
    touched = frozenset(
        item for t in added for item in t
    ) | frozenset(item for t in removed for item in t)
    return DatasetDelta(
        base_digest=base_digest,
        new_digest=new_digest,
        base_size=len(base_transactions),
        new_size=len(new_transactions),
        added=added,
        added_tids=added_tids,
        removed=removed,
        removed_tids=removed_tids,
        touched_items=touched,
    )
