"""Instrumentation counters for the ccc cost model.

The paper's notion of ccc-optimality (Definition 6) is defined over two
fundamental operations:

* **support counting** — the number of candidate sets whose support is
  counted, and
* **constraint checking** — the number of invocations of the constraint
  checking operation, split by whether the checked set is a singleton
  (condition (2) permits checks only on sets of size 1).

:class:`OpCounters` records both, plus the I/O-side quantities the
Section 5.2 dovetailing discussion cares about (database scans and tuples
read).  Every mining strategy in :mod:`repro.mining` threads a single
:class:`OpCounters` through its run so strategies can be compared on a
deterministic, machine-independent cost.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Sequence, Tuple


def debug_checks_enabled() -> bool:
    """Whether expensive internal consistency assertions are on.

    Controlled by the ``REPRO_DEBUG`` environment variable (``1``/
    ``true``/``yes``/``on``); read at check time so tests can toggle it
    per-case.
    """
    return os.environ.get("REPRO_DEBUG", "").strip().lower() in (
        "1", "true", "yes", "on"
    )


@dataclass
class ScanStats:
    """Scan-level I/O statistics for a transaction database."""

    scans: int = 0
    tuples_read: int = 0

    def record_scan(self, tuples: int) -> None:
        """Record one full pass over ``tuples`` transactions."""
        self.scans += 1
        self.tuples_read += tuples

    def merged(self, other: "ScanStats") -> "ScanStats":
        """Return the sum of two scan statistics."""
        return ScanStats(self.scans + other.scans, self.tuples_read + other.tuples_read)


@dataclass
class OpCounters:
    """Operation counts underlying the ccc cost model.

    Attributes
    ----------
    support_counted:
        Number of candidate sets whose support was counted, per variable
        name and level: ``{("S", 2): 153, ...}``.
    constraint_checks_singleton / constraint_checks_larger:
        Constraint-checking invocations on singletons vs larger sets.
        Condition (2) of Definition 6 allows only the former during the
        lattice computation.
    subset_tests:
        Fine-grained counting work: number of (candidate, transaction)
        containment tests performed — the dominant CPU term, standing in
        for the paper's CPU time.
    scans / tuples_read:
        Database passes and transactions touched, standing in for I/O.
    pair_checks:
        Constraint checks performed while forming final (S, T) pairs; the
        paper treats pair formation as a separate, cheap phase, so these
        are tracked apart from lattice-time checks.
    """

    support_counted: Dict[Tuple[str, int], int] = field(default_factory=dict)
    constraint_checks_singleton: int = 0
    constraint_checks_larger: int = 0
    subset_tests: int = 0
    scans: int = 0
    tuples_read: int = 0
    pair_checks: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_counted(self, var: str, level: int, n_sets: int) -> None:
        """Record that ``n_sets`` candidates of size ``level`` for variable
        ``var`` had their support counted."""
        key = (var, level)
        self.support_counted[key] = self.support_counted.get(key, 0) + n_sets

    def record_check(self, set_size: int, n_checks: int = 1) -> None:
        """Record constraint-check invocations on sets of ``set_size``."""
        if set_size <= 1:
            self.constraint_checks_singleton += n_checks
        else:
            self.constraint_checks_larger += n_checks

    def record_scan(self, tuples: int) -> None:
        """Record one database pass touching ``tuples`` transactions."""
        self.scans += 1
        self.tuples_read += tuples

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def total_counted(self) -> int:
        """Total number of sets counted for support, all variables/levels."""
        return sum(self.support_counted.values())

    @property
    def total_checks(self) -> int:
        """Total lattice-time constraint-check invocations."""
        return self.constraint_checks_singleton + self.constraint_checks_larger

    def counted_for(self, var: str) -> int:
        """Total sets counted for one variable."""
        return sum(n for (v, __), n in self.support_counted.items() if v == var)

    def counted_by_level(self, var: str) -> Dict[int, int]:
        """Per-level counted-set totals for one variable."""
        return {
            level: n
            for (v, level), n in sorted(self.support_counted.items())
            if v == var
        }

    def cost(self, weights: "CostWeights" = None) -> float:
        """Scalar cost under the (weighted) ccc cost model.

        The default weights make support-counting work (subset tests) the
        dominant term with I/O next, mirroring the paper's "CPU + I/O"
        total; constraint checks are cheap but non-free.
        """
        w = weights or CostWeights()
        return (
            w.subset_test * self.subset_tests
            + w.counted_set * self.total_counted
            + w.check * (self.total_checks + self.pair_checks)
            + w.tuple_read * self.tuples_read
        )

    def merged(self, other: "OpCounters") -> "OpCounters":
        """Return the element-wise sum of two counter sets."""
        merged = OpCounters(
            support_counted=dict(self.support_counted),
            constraint_checks_singleton=self.constraint_checks_singleton
            + other.constraint_checks_singleton,
            constraint_checks_larger=self.constraint_checks_larger
            + other.constraint_checks_larger,
            subset_tests=self.subset_tests + other.subset_tests,
            scans=self.scans + other.scans,
            tuples_read=self.tuples_read + other.tuples_read,
            pair_checks=self.pair_checks + other.pair_checks,
        )
        for key, n in other.support_counted.items():
            merged.support_counted[key] = merged.support_counted.get(key, 0) + n
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports."""
        return {
            "sets_counted": self.total_counted,
            "constraint_checks_singleton": self.constraint_checks_singleton,
            "constraint_checks_larger": self.constraint_checks_larger,
            "subset_tests": self.subset_tests,
            "scans": self.scans,
            "tuples_read": self.tuples_read,
            "pair_checks": self.pair_checks,
            "cost": self.cost(),
        }

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Lossless JSON-serializable copy of every counter.

        Unlike :meth:`as_dict` (a reporting summary), this preserves the
        full per-``(var, level)`` ledger — including its insertion order,
        which :meth:`restore` reproduces — so a checkpointed run's
        counters can be reconstructed bit-identically on resume.
        """
        return {
            "support_counted": [
                [var, level, n] for (var, level), n in self.support_counted.items()
            ],
            "constraint_checks_singleton": self.constraint_checks_singleton,
            "constraint_checks_larger": self.constraint_checks_larger,
            "subset_tests": self.subset_tests,
            "scans": self.scans,
            "tuples_read": self.tuples_read,
            "pair_checks": self.pair_checks,
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Overwrite every counter in place from a :meth:`snapshot`.

        In-place so the instance already threaded through lattices and
        backends snaps to the checkpointed state without re-wiring.
        """
        self.support_counted.clear()
        for var, level, n in snapshot["support_counted"]:
            self.support_counted[(var, int(level))] = int(n)
        self.constraint_checks_singleton = int(
            snapshot["constraint_checks_singleton"]
        )
        self.constraint_checks_larger = int(snapshot["constraint_checks_larger"])
        self.subset_tests = int(snapshot["subset_tests"])
        self.scans = int(snapshot["scans"])
        self.tuples_read = int(snapshot["tuples_read"])
        self.pair_checks = int(snapshot["pair_checks"])

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "OpCounters":
        """A fresh instance equal to the snapshotted one."""
        counters = cls()
        counters.restore(snapshot)
        return counters


def merge_shard_counters(shards: Sequence[OpCounters]) -> OpCounters:
    """Merge per-shard counters from one sharded count of ONE candidate set.

    This is *not* :meth:`OpCounters.merged`, which sums everything: when a
    transaction list is partitioned into shards and every shard counts the
    *same* candidates, the work-style quantities (``subset_tests``,
    ``scans``, ``tuples_read``) are additive across shards, but the
    candidate-set ledger (``support_counted``) is not — each shard counted
    the same sets, so summing would multiply the ccc "sets counted" figure
    by the shard fan-out.  The merged counters therefore take the ledger
    from the first shard (all shards' ledgers are identical by
    construction) and sum the rest, which makes a sharded run's totals
    equal a serial run's.

    Disagreeing ledgers are a merge-protocol bug.  A cheap total-count
    comparison always runs; the full per-(var, level) ledger equality
    check — O(ledger size) per shard — additionally runs when
    ``REPRO_DEBUG=1`` (see :func:`debug_checks_enabled`).
    """
    if not shards:
        return OpCounters()
    first = shards[0]
    deep = debug_checks_enabled()
    for other in shards[1:]:
        if other.total_counted != first.total_counted or (
            deep and other.support_counted != first.support_counted
        ):
            raise ValueError(
                "shard counters disagree on the counted candidate sets; "
                "merge_shard_counters is only valid when every shard "
                "counted the same candidates"
            )
    merged = OpCounters(support_counted=dict(first.support_counted))
    for shard in shards:
        merged.subset_tests += shard.subset_tests
        merged.scans += shard.scans
        merged.tuples_read += shard.tuples_read
        merged.constraint_checks_singleton += shard.constraint_checks_singleton
        merged.constraint_checks_larger += shard.constraint_checks_larger
        merged.pair_checks += shard.pair_checks
    return merged


@dataclass
class ParallelLevelStats:
    """Timing record for one sharded counting pass (one lattice level).

    ``failures`` counts failed shard attempts (worker crashes, timeouts,
    lost workers), ``retries`` counts pool resubmissions, and
    ``fallback_shards`` counts shards that exhausted their retries and
    were counted in-process instead.
    """

    shard_sizes: Tuple[int, ...]
    shard_seconds: Tuple[float, ...]
    merge_seconds: float
    in_process: bool
    failures: int = 0
    retries: int = 0
    fallback_shards: int = 0

    @property
    def span_seconds(self) -> float:
        """Critical-path estimate: the slowest shard plus the merge."""
        return (max(self.shard_seconds) if self.shard_seconds else 0.0) + (
            self.merge_seconds
        )


@dataclass
class ParallelStats:
    """Shard-level instrumentation of a :class:`ParallelBackend` run.

    One :class:`ParallelLevelStats` is recorded per counting call (i.e.
    per lattice level), so speedup and shard balance are measurable after
    the fact: compare ``sum(shard_seconds)`` (serial work) against
    ``span_seconds`` (parallel critical path).

    The fault-tolerance side of the backend is recorded here too:
    ``pool_forks`` counts actual pool creations (one per mining run under
    the persistent-pool lifecycle), ``failure_log`` keeps one line per
    failed shard attempt, and ``pool_broken`` flags a pool that was torn
    down mid-run (all remaining work degrades to in-process counting).
    """

    #: Cap on retained failure-log entries: a pathological run (every
    #: shard of every level timing out) must not grow memory unboundedly.
    MAX_FAILURE_LOG = 50

    #: Label `CFQResult.explain()` renders this block under.
    explain_label: ClassVar[str] = "parallel counting"

    levels: List[ParallelLevelStats] = field(default_factory=list)
    #: Which per-shard counting kernel the backend ran ("hybrid" or
    #: "bitmap"); purely descriptive — the shard/merge machinery is
    #: kernel-agnostic.
    kernel: str = "hybrid"
    pool_forks: int = 0
    pool_broken: bool = False
    failure_log: List[str] = field(default_factory=list)
    failure_log_dropped: int = 0
    #: Counting passes cancelled by a run guard trip: the pool was torn
    #: down to cancel outstanding shard tasks, but (unlike a broken
    #: pool) it may be re-forked by a later run.
    cancelled_levels: int = 0

    def record_level(
        self,
        shard_sizes: Sequence[int],
        shard_seconds: Sequence[float],
        merge_seconds: float,
        in_process: bool,
        failures: int = 0,
        retries: int = 0,
        fallback_shards: int = 0,
    ) -> None:
        self.levels.append(
            ParallelLevelStats(
                shard_sizes=tuple(shard_sizes),
                shard_seconds=tuple(shard_seconds),
                merge_seconds=merge_seconds,
                in_process=in_process,
                failures=failures,
                retries=retries,
                fallback_shards=fallback_shards,
            )
        )

    def record_fork(self) -> None:
        """Record one worker-pool creation."""
        self.pool_forks += 1

    def record_failure(self, message: str) -> None:
        """Record one failed shard attempt (crash, timeout, lost worker).

        At most :data:`MAX_FAILURE_LOG` entries are retained; further
        failures only bump ``failure_log_dropped`` (the totals in
        :meth:`as_dict` still count every failure via the level records).
        """
        if len(self.failure_log) < self.MAX_FAILURE_LOG:
            self.failure_log.append(message)
        else:
            self.failure_log_dropped += 1

    def mark_broken(self, reason: str) -> None:
        """Record that the pool was abandoned mid-run."""
        self.pool_broken = True
        self.record_failure(f"pool broken: {reason}")

    def record_cancellation(self, reason: str) -> None:
        """Record one counting pass abandoned by a guard trip."""
        self.cancelled_levels += 1
        self.record_failure(f"cancelled: {reason}")

    @property
    def total_shard_seconds(self) -> float:
        """Summed per-shard wall time (the serialized work)."""
        return sum(sum(level.shard_seconds) for level in self.levels)

    @property
    def total_merge_seconds(self) -> float:
        return sum(level.merge_seconds for level in self.levels)

    @property
    def total_span_seconds(self) -> float:
        """Summed critical paths — what a perfectly parallel run pays."""
        return sum(level.span_seconds for level in self.levels)

    @property
    def total_failures(self) -> int:
        """Failed shard attempts across all levels."""
        return sum(level.failures for level in self.levels)

    @property
    def total_retries(self) -> int:
        """Shard resubmissions across all levels."""
        return sum(level.retries for level in self.levels)

    @property
    def total_fallback_shards(self) -> int:
        """Shards that degraded to in-process serial counting."""
        return sum(level.fallback_shards for level in self.levels)

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports."""
        return {
            "levels": len(self.levels),
            "kernel": self.kernel,
            "max_shards": max(
                (len(level.shard_sizes) for level in self.levels), default=0
            ),
            "pooled_levels": sum(1 for lvl in self.levels if not lvl.in_process),
            "total_shard_seconds": self.total_shard_seconds,
            "total_merge_seconds": self.total_merge_seconds,
            "total_span_seconds": self.total_span_seconds,
            "pool_forks": self.pool_forks,
            "pool_broken": self.pool_broken,
            "failures": self.total_failures,
            "retries": self.total_retries,
            "fallback_shards": self.total_fallback_shards,
            "failure_log_dropped": self.failure_log_dropped,
            "cancelled_levels": self.cancelled_levels,
        }

    def summary(self) -> str:
        """One-line rendering for CLI ``--explain`` output."""
        d = self.as_dict()
        text = (
            f"{d['levels']} sharded levels "
            f"({d['kernel']} kernel, "
            f"{d['pooled_levels']} via worker pool, "
            f"max {d['max_shards']} shards, "
            f"{d['pool_forks']} pool fork(s)); "
            f"shard work {d['total_shard_seconds']:.3f}s, "
            f"critical path {d['total_span_seconds']:.3f}s, "
            f"merge {d['total_merge_seconds']:.3f}s"
        )
        if d["failures"] or d["retries"] or d["fallback_shards"]:
            text += (
                f"; {d['failures']} shard failure(s), "
                f"{d['retries']} retry(ies), "
                f"{d['fallback_shards']} serial fallback(s)"
            )
        if d["failure_log_dropped"]:
            text += (
                f"; {d['failure_log_dropped']} failure-log entry(ies) "
                f"dropped beyond the {self.MAX_FAILURE_LOG}-entry cap"
            )
        if d["cancelled_levels"]:
            text += (
                f"; {d['cancelled_levels']} counting pass(es) cancelled by "
                "run guard"
            )
        if d["pool_broken"]:
            text += "; pool broken — degraded to in-process counting"
        return text


@dataclass
class BitmapLevelStats:
    """One bitmap counting pass: candidates counted, uint64 words
    touched by the AND/popcount kernel, and kernel wall time."""

    candidates: int
    words: int
    seconds: float


@dataclass
class BitmapStats:
    """Instrumentation of a :class:`~repro.mining.bitmap.BitmapBackend`.

    One :class:`BitmapLevelStats` per counting pass, plus matrix-build
    accounting: ``builds`` counts actual packings (content-digest cache
    misses) and ``cache_hits`` counts passes served from a cached
    matrix, so tests can assert that equal-content transaction lists
    share one build.  Shaped like :class:`ParallelStats` (``levels`` +
    ``as_dict`` + ``summary``) so ``--explain`` and the run report's
    backend-stats block render it through the same generic hook.
    """

    #: Label `CFQResult.explain()` renders this block under.
    explain_label: ClassVar[str] = "bitmap counting"

    levels: List[BitmapLevelStats] = field(default_factory=list)
    builds: int = 0
    cache_hits: int = 0
    #: Which representation the backend packs ("numpy" or "int").
    kernel: str = "numpy"

    def record_level(self, candidates: int, words: int, seconds: float) -> None:
        self.levels.append(BitmapLevelStats(candidates, words, seconds))

    def record_build(self) -> None:
        self.builds += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    @property
    def total_candidates(self) -> int:
        return sum(level.candidates for level in self.levels)

    @property
    def total_words(self) -> int:
        return sum(level.words for level in self.levels)

    @property
    def total_seconds(self) -> float:
        return sum(level.seconds for level in self.levels)

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports."""
        return {
            "levels": len(self.levels),
            "kernel": self.kernel,
            "builds": self.builds,
            "cache_hits": self.cache_hits,
            "candidates_counted": self.total_candidates,
            "words_touched": self.total_words,
            "kernel_seconds": self.total_seconds,
        }

    def summary(self) -> str:
        """One-line rendering for CLI ``--explain`` output."""
        d = self.as_dict()
        return (
            f"{d['levels']} counting pass(es) ({d['kernel']} kernel); "
            f"{d['builds']} matrix build(s), {d['cache_hits']} cache hit(s); "
            f"{d['candidates_counted']} candidates over "
            f"{d['words_touched']} uint64 words in "
            f"{d['kernel_seconds']:.4f}s"
        )


@dataclass
class CacheStats:
    """Hit/miss accounting for the serving layer's fingerprinted caches.

    One instance is shared by a :class:`~repro.serve.QueryService`'s
    result cache and skeleton cache, so a single snapshot describes the
    whole service: how often full results were served from cache
    (``hits``/``misses``), how entries left (``evictions`` by LRU
    pressure, ``expirations`` by TTL, ``invalidations`` explicitly), how
    the frequency-skeleton tier fared, and how many payload bytes the
    caches currently hold.  ``as_dict`` feeds the run report's ``cache``
    block and ``--explain`` output.

    **Thread safety.**  One stats object is written by every serving
    thread of the concurrent query server, and ``count += 1`` is a
    non-atomic read-modify-write in CPython — two racing threads can
    lose an increment.  Every mutation therefore goes through
    :meth:`bump` (or a ``record_*`` helper built on it), which holds the
    instance lock.  The lock is **innermost** in the serving lock order
    (see ``docs/server.md``): code holding it never calls out, so it can
    be taken while a cache-tier lock is held.  Reads of individual
    fields stay lock-free (a torn multi-field snapshot is acceptable for
    monitoring output; individual int reads are atomic under the GIL).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    skeleton_hits: int = 0
    skeleton_misses: int = 0
    skeleton_builds: int = 0
    #: skeletons migrated across a dataset delta instead of rebuilt
    skeleton_refreshes: int = 0
    bytes_held: int = 0
    #: disk-tier I/O failures absorbed by the degradation ladder
    disk_errors: int = 0
    #: corrupt disk artifacts renamed aside (never re-read)
    quarantined: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, name: str, delta: int = 1) -> None:
        """Atomically add ``delta`` to one counter field by name."""
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    def record_hit(self) -> None:
        self.bump("hits")

    def record_miss(self) -> None:
        self.bump("misses")

    def record_disk_promotion(self) -> None:
        """A disk-tier hit after a memory miss: the memory probe above it
        was metered as a miss, so convert it into a hit atomically."""
        with self._lock:
            self.hits += 1
            self.misses -= 1

    def record_store(self, nbytes: int) -> None:
        with self._lock:
            self.stores += 1
            self.bytes_held += nbytes

    def record_eviction(self, nbytes: int, expired: bool = False) -> None:
        with self._lock:
            if expired:
                self.expirations += 1
            else:
                self.evictions += 1
            self.bytes_held -= nbytes

    def record_invalidation(self, nbytes: int) -> None:
        with self._lock:
            self.invalidations += 1
            self.bytes_held -= nbytes

    @property
    def hit_rate(self) -> float:
        """Fraction of result lookups served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "stores": self.stores,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "skeleton_hits": self.skeleton_hits,
            "skeleton_misses": self.skeleton_misses,
            "skeleton_builds": self.skeleton_builds,
            "skeleton_refreshes": self.skeleton_refreshes,
            "bytes_held": self.bytes_held,
            "disk_errors": self.disk_errors,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, float]) -> "CacheStats":
        """Rebuild from an :meth:`as_dict` snapshot (the derived
        ``hit_rate`` key is ignored; unknown keys are too, so newer
        snapshots stay readable)."""
        stats = cls()
        for name in (
            "hits",
            "misses",
            "stores",
            "evictions",
            "expirations",
            "invalidations",
            "skeleton_hits",
            "skeleton_misses",
            "skeleton_builds",
            "skeleton_refreshes",
            "bytes_held",
            "disk_errors",
            "quarantined",
        ):
            if name in document:
                setattr(stats, name, int(document[name]))
        return stats

    def summary(self) -> str:
        """One-line rendering for CLI ``--explain`` output."""
        d = self.as_dict()
        text = (
            f"{d['hits']} hit(s), {d['misses']} miss(es) "
            f"(rate {d['hit_rate']:.0%}), {d['stores']} store(s), "
            f"{d['bytes_held']} bytes held"
        )
        if d["evictions"] or d["expirations"] or d["invalidations"]:
            text += (
                f"; {d['evictions']} evicted, {d['expirations']} expired, "
                f"{d['invalidations']} invalidated"
            )
        if d["skeleton_builds"] or d["skeleton_hits"] or d["skeleton_misses"]:
            text += (
                f"; skeleton: {d['skeleton_builds']} build(s), "
                f"{d['skeleton_hits']} hit(s), {d['skeleton_misses']} miss(es)"
            )
            if d["skeleton_refreshes"]:
                text += f", {d['skeleton_refreshes']} refresh(es)"
        if d["disk_errors"] or d["quarantined"]:
            text += (
                f"; disk: {d['disk_errors']} error(s), "
                f"{d['quarantined']} quarantined"
            )
        return text


@dataclass(frozen=True)
class CostWeights:
    """Weights for collapsing :class:`OpCounters` into a scalar cost."""

    subset_test: float = 1.0
    counted_set: float = 5.0
    check: float = 1.0
    tuple_read: float = 0.5
