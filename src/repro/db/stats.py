"""Instrumentation counters for the ccc cost model.

The paper's notion of ccc-optimality (Definition 6) is defined over two
fundamental operations:

* **support counting** — the number of candidate sets whose support is
  counted, and
* **constraint checking** — the number of invocations of the constraint
  checking operation, split by whether the checked set is a singleton
  (condition (2) permits checks only on sets of size 1).

:class:`OpCounters` records both, plus the I/O-side quantities the
Section 5.2 dovetailing discussion cares about (database scans and tuples
read).  Every mining strategy in :mod:`repro.mining` threads a single
:class:`OpCounters` through its run so strategies can be compared on a
deterministic, machine-independent cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class ScanStats:
    """Scan-level I/O statistics for a transaction database."""

    scans: int = 0
    tuples_read: int = 0

    def record_scan(self, tuples: int) -> None:
        """Record one full pass over ``tuples`` transactions."""
        self.scans += 1
        self.tuples_read += tuples

    def merged(self, other: "ScanStats") -> "ScanStats":
        """Return the sum of two scan statistics."""
        return ScanStats(self.scans + other.scans, self.tuples_read + other.tuples_read)


@dataclass
class OpCounters:
    """Operation counts underlying the ccc cost model.

    Attributes
    ----------
    support_counted:
        Number of candidate sets whose support was counted, per variable
        name and level: ``{("S", 2): 153, ...}``.
    constraint_checks_singleton / constraint_checks_larger:
        Constraint-checking invocations on singletons vs larger sets.
        Condition (2) of Definition 6 allows only the former during the
        lattice computation.
    subset_tests:
        Fine-grained counting work: number of (candidate, transaction)
        containment tests performed — the dominant CPU term, standing in
        for the paper's CPU time.
    scans / tuples_read:
        Database passes and transactions touched, standing in for I/O.
    pair_checks:
        Constraint checks performed while forming final (S, T) pairs; the
        paper treats pair formation as a separate, cheap phase, so these
        are tracked apart from lattice-time checks.
    """

    support_counted: Dict[Tuple[str, int], int] = field(default_factory=dict)
    constraint_checks_singleton: int = 0
    constraint_checks_larger: int = 0
    subset_tests: int = 0
    scans: int = 0
    tuples_read: int = 0
    pair_checks: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_counted(self, var: str, level: int, n_sets: int) -> None:
        """Record that ``n_sets`` candidates of size ``level`` for variable
        ``var`` had their support counted."""
        key = (var, level)
        self.support_counted[key] = self.support_counted.get(key, 0) + n_sets

    def record_check(self, set_size: int, n_checks: int = 1) -> None:
        """Record constraint-check invocations on sets of ``set_size``."""
        if set_size <= 1:
            self.constraint_checks_singleton += n_checks
        else:
            self.constraint_checks_larger += n_checks

    def record_scan(self, tuples: int) -> None:
        """Record one database pass touching ``tuples`` transactions."""
        self.scans += 1
        self.tuples_read += tuples

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def total_counted(self) -> int:
        """Total number of sets counted for support, all variables/levels."""
        return sum(self.support_counted.values())

    @property
    def total_checks(self) -> int:
        """Total lattice-time constraint-check invocations."""
        return self.constraint_checks_singleton + self.constraint_checks_larger

    def counted_for(self, var: str) -> int:
        """Total sets counted for one variable."""
        return sum(n for (v, __), n in self.support_counted.items() if v == var)

    def counted_by_level(self, var: str) -> Dict[int, int]:
        """Per-level counted-set totals for one variable."""
        return {
            level: n
            for (v, level), n in sorted(self.support_counted.items())
            if v == var
        }

    def cost(self, weights: "CostWeights" = None) -> float:
        """Scalar cost under the (weighted) ccc cost model.

        The default weights make support-counting work (subset tests) the
        dominant term with I/O next, mirroring the paper's "CPU + I/O"
        total; constraint checks are cheap but non-free.
        """
        w = weights or CostWeights()
        return (
            w.subset_test * self.subset_tests
            + w.counted_set * self.total_counted
            + w.check * (self.total_checks + self.pair_checks)
            + w.tuple_read * self.tuples_read
        )

    def merged(self, other: "OpCounters") -> "OpCounters":
        """Return the element-wise sum of two counter sets."""
        merged = OpCounters(
            support_counted=dict(self.support_counted),
            constraint_checks_singleton=self.constraint_checks_singleton
            + other.constraint_checks_singleton,
            constraint_checks_larger=self.constraint_checks_larger
            + other.constraint_checks_larger,
            subset_tests=self.subset_tests + other.subset_tests,
            scans=self.scans + other.scans,
            tuples_read=self.tuples_read + other.tuples_read,
            pair_checks=self.pair_checks + other.pair_checks,
        )
        for key, n in other.support_counted.items():
            merged.support_counted[key] = merged.support_counted.get(key, 0) + n
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Flat summary suitable for reports."""
        return {
            "sets_counted": self.total_counted,
            "constraint_checks_singleton": self.constraint_checks_singleton,
            "constraint_checks_larger": self.constraint_checks_larger,
            "subset_tests": self.subset_tests,
            "scans": self.scans,
            "tuples_read": self.tuples_read,
            "pair_checks": self.pair_checks,
            "cost": self.cost(),
        }


@dataclass(frozen=True)
class CostWeights:
    """Weights for collapsing :class:`OpCounters` into a scalar cost."""

    subset_test: float = 1.0
    counted_set: float = 5.0
    check: float = 1.0
    tuple_read: float = 0.5
