"""In-memory database substrate for CFQ mining.

The paper's experiments assume two relations:

* ``trans(TID, Itemset)`` — the transaction database, represented here by
  :class:`~repro.db.transactions.TransactionDatabase`;
* ``itemInfo(Item, Type, Price)`` — auxiliary per-item attributes,
  represented by :class:`~repro.db.catalog.ItemCatalog`.

The substrate also provides :class:`~repro.db.domain.Domain` (the range of
a set variable, possibly a segment of the item universe or a derived
domain such as the set of Types) and :class:`~repro.db.stats.OpCounters`
(instrumentation used by the ccc-optimality audit).
"""

from repro.db.catalog import ItemCatalog
from repro.db.delta import DatasetDelta
from repro.db.digest import dataset_digest, transactions_digest
from repro.db.domain import Domain, derived_type_domain
from repro.db.stats import OpCounters, ScanStats
from repro.db.transactions import TransactionDatabase

__all__ = [
    "ItemCatalog",
    "DatasetDelta",
    "Domain",
    "dataset_digest",
    "derived_type_domain",
    "OpCounters",
    "ScanStats",
    "TransactionDatabase",
    "transactions_digest",
]
