"""Domains: the ranges of the set variables ``S`` and ``T``.

Section 3 of the paper stresses that the two variables of a CFQ may range
over *different* domains — e.g. ``S`` over ``Item`` and ``T`` over the
``Type`` domain — and that even when both range over ``Item`` their 1-var
constraints may force them into different segments.  A :class:`Domain`
captures a variable's range:

* ``elements`` — the element ids the variable's sets draw from;
* ``catalog`` — attributes of those elements (``Price``, ``Type``, ...);
* ``project(transaction)`` — how a raw transaction (a set of item ids)
  induces a set of domain elements, which is what frequency counting
  operates on.

Two kinds of domain are provided: item domains (identity projection,
optionally restricted to a segment of the item universe) and derived
domains such as the Type domain (each transaction projects to the set of
types of its items).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.db.catalog import AttrValue, ItemCatalog
from repro.errors import DataError


class Domain:
    """The range of a set variable, with attribute access and projection.

    Use the factories :meth:`Domain.items` and
    :func:`derived_type_domain` rather than the constructor.
    """

    def __init__(
        self,
        name: str,
        elements: Iterable[int],
        catalog: ItemCatalog,
        values: Mapping[int, AttrValue],
        item_to_element: Optional[Mapping[int, int]] = None,
    ):
        self.name = name
        self.elements: Tuple[int, ...] = tuple(sorted(elements))
        self.catalog = catalog
        self._values: Dict[int, AttrValue] = dict(values)
        self._membership = frozenset(self.elements)
        self._item_to_element = dict(item_to_element) if item_to_element is not None else None
        if set(self.elements) != set(catalog.items):
            raise DataError(
                f"domain {name!r}: elements and catalog items disagree"
            )
        missing = self._membership - set(self._values)
        if missing:
            raise DataError(
                f"domain {name!r}: {len(missing)} elements lack identity values"
            )

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def items(
        cls,
        catalog: ItemCatalog,
        name: str = "Item",
        subset: Optional[Iterable[int]] = None,
    ) -> "Domain":
        """An item domain: elements are item ids, projection is identity.

        ``subset`` restricts the domain to a segment of the item universe
        (e.g. the items a 1-var range constraint allows), which is how the
        paper models variables ranging over different parts of ``Item``.
        """
        if subset is not None:
            catalog = catalog.restrict(subset)
        values = {i: i for i in catalog.items}
        return cls(name, catalog.items, catalog, values)

    # ------------------------------------------------------------------
    # Projection and lookups
    # ------------------------------------------------------------------
    @property
    def is_derived(self) -> bool:
        """Whether transactions project through an item->element mapping."""
        return self._item_to_element is not None

    def project(self, transaction: Iterable[int]) -> Tuple[int, ...]:
        """Project a raw transaction onto this domain's elements, sorted."""
        mapping = self._item_to_element
        if mapping is None:
            return tuple(sorted(self._membership.intersection(transaction)))
        projected = {mapping[i] for i in transaction if i in mapping}
        return tuple(sorted(projected))

    def element_value(self, element_id: int) -> AttrValue:
        """The identity value of an element (the item id itself for item
        domains; the underlying value, e.g. the type string, for derived
        domains)."""
        try:
            return self._values[element_id]
        except KeyError:
            raise DataError(
                f"element {element_id} not in domain {self.name!r}"
            ) from None

    def element_values(self, elements: Iterable[int]) -> frozenset:
        """Identity values of a set of elements, as a frozenset."""
        return frozenset(self.element_value(e) for e in elements)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._membership

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self.name!r}, {len(self.elements)} elements)"


def derived_type_domain(
    catalog: ItemCatalog,
    attribute: str = "Type",
    name: Optional[str] = None,
) -> Domain:
    """Build the derived domain of an item attribute (e.g. the Type domain).

    Each distinct value of ``attribute`` becomes one domain element; a
    transaction projects to the set of attribute values of its items.  The
    resulting domain's catalog exposes a single attribute, named after
    ``attribute``, holding each element's underlying value, plus the same
    value under the name ``"Value"`` for generic access.
    """
    column = catalog.column(attribute)
    distinct = sorted(set(column.values()), key=lambda v: (str(type(v)), v))
    value_to_eid = {value: eid for eid, value in enumerate(distinct)}
    eid_values: Dict[int, AttrValue] = {eid: value for value, eid in value_to_eid.items()}
    element_catalog = ItemCatalog(
        {
            attribute: dict(eid_values),
            "Value": dict(eid_values),
        }
    )
    item_to_element = {item: value_to_eid[value] for item, value in column.items()}
    return Domain(
        name or f"{attribute}Domain",
        eid_values.keys(),
        element_catalog,
        eid_values,
        item_to_element=item_to_element,
    )
