"""The transaction database: the paper's ``trans(TID, Itemset)`` relation.

Transactions are stored as sorted tuples of int item ids.  The class keeps
its own :class:`~repro.db.stats.ScanStats` and offers :meth:`scan`, a
generator that records one database pass per full iteration — mining
strategies use it so the dovetailing experiments can report scan savings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.db.stats import ScanStats
from repro.errors import DataError


class TransactionDatabase:
    """An in-memory transaction database with scan accounting.

    Parameters
    ----------
    transactions:
        Iterable of item-id collections.  Each transaction is deduplicated
        and stored sorted.  Empty transactions are kept (they simply never
        support anything) so TID arithmetic stays simple.

    Examples
    --------
    >>> db = TransactionDatabase([[3, 1], [1, 2], [1, 2, 3]])
    >>> len(db)
    3
    >>> db.support((1, 2))
    2
    """

    def __init__(self, transactions: Iterable[Sequence[int]]):
        self._transactions: List[Tuple[int, ...]] = [
            tuple(sorted(set(t))) for t in transactions
        ]
        self.stats = ScanStats()

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Iterate without scan accounting (for tests and inspection)."""
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> Tuple[int, ...]:
        return self._transactions[tid]

    @property
    def transactions(self) -> List[Tuple[int, ...]]:
        """The underlying transaction list (treat as read-only)."""
        return self._transactions

    def item_universe(self) -> frozenset:
        """All item ids occurring in any transaction."""
        universe = set()
        for t in self._transactions:
            universe.update(t)
        return frozenset(universe)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, stats: Optional[ScanStats] = None) -> Iterator[Tuple[int, ...]]:
        """Yield every transaction, recording one full database pass.

        The pass is recorded up front (on both the database's own stats and
        the optional per-run ``stats``), matching the paper's model where a
        levelwise iteration always reads the whole database.
        """
        self.stats.record_scan(len(self._transactions))
        if stats is not None:
            stats.record_scan(len(self._transactions))
        return iter(self._transactions)

    # ------------------------------------------------------------------
    # Derived databases
    # ------------------------------------------------------------------
    def filtered(self, keep_items: Iterable[int]) -> "TransactionDatabase":
        """Project every transaction onto ``keep_items``.

        Used for transaction trimming: once the frequent items are known,
        infrequent items can never contribute to a frequent set, so
        dropping them shrinks every later scan.
        """
        keep = frozenset(keep_items)
        return TransactionDatabase(
            tuple(i for i in t if i in keep) for t in self._transactions
        )

    def projected(self, domain) -> "TransactionDatabase":
        """Project every transaction through a :class:`~repro.db.domain.Domain`."""
        return TransactionDatabase(domain.project(t) for t in self._transactions)

    # ------------------------------------------------------------------
    # Direct support queries (reference implementations; miners count in
    # bulk via repro.mining.counting)
    # ------------------------------------------------------------------
    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support of an itemset (number of containing transactions)."""
        target = frozenset(itemset)
        if not target:
            return len(self._transactions)
        return sum(1 for t in self._transactions if target.issubset(t))

    def support_fraction(self, itemset: Iterable[int]) -> float:
        """Relative support of an itemset."""
        if not self._transactions:
            return 0.0
        return self.support(itemset) / len(self._transactions)

    def min_count(self, minsup: float) -> int:
        """Absolute support threshold for a relative ``minsup`` in [0, 1].

        A set is frequent iff its absolute support is >= this value; the
        threshold is at least 1 so that empty data never declares anything
        frequent.
        """
        if not 0.0 < minsup <= 1.0:
            raise DataError(f"minsup must be in (0, 1], got {minsup}")
        import math

        return max(1, math.ceil(minsup * len(self._transactions)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(t) for t in self._transactions]
        avg = sum(sizes) / len(sizes) if sizes else 0.0
        return (
            f"TransactionDatabase({len(self._transactions)} transactions, "
            f"avg size {avg:.1f})"
        )
