"""The transaction database: the paper's ``trans(TID, Itemset)`` relation.

Transactions are stored as sorted tuples of int item ids.  The class keeps
its own :class:`~repro.db.stats.ScanStats` and offers :meth:`scan`, a
generator that records one database pass per full iteration — mining
strategies use it so the dovetailing experiments can report scan savings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.db.delta import DatasetDelta, make_delta
from repro.db.digest import transactions_digest
from repro.db.stats import ScanStats
from repro.errors import DataError


class TransactionDatabase:
    """An in-memory transaction database with scan accounting.

    Parameters
    ----------
    transactions:
        Iterable of item-id collections.  Each transaction is deduplicated
        and stored sorted.  Empty transactions are kept (they simply never
        support anything) so TID arithmetic stays simple.

    Examples
    --------
    >>> db = TransactionDatabase([[3, 1], [1, 2], [1, 2, 3]])
    >>> len(db)
    3
    >>> db.support((1, 2))
    2
    """

    def __init__(self, transactions: Iterable[Sequence[int]]):
        self._transactions: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(set(t))) for t in transactions
        )
        self.stats = ScanStats()
        #: Monotonic churn counter: 0 for a freshly built database,
        #: parent + 1 for databases produced by :meth:`append`/:meth:`delete`.
        self.version = 0

    @classmethod
    def _from_normalized(
        cls, transactions: Tuple[Tuple[int, ...], ...], version: int
    ) -> "TransactionDatabase":
        """Internal fast path for churn: transactions already normalized."""
        db = cls.__new__(cls)
        db._transactions = transactions
        db.stats = ScanStats()
        db.version = version
        return db

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Iterate without scan accounting (for tests and inspection)."""
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> Tuple[int, ...]:
        return self._transactions[tid]

    @property
    def transactions(self) -> Tuple[Tuple[int, ...], ...]:
        """The transactions as an immutable tuple.

        Always the *same* tuple object for the life of the database —
        content-fingerprint memos and backend matrix caches pin digests
        by object identity, so both the immutability and the identity
        stability are load-bearing.  Mutation happens only through
        :meth:`append` / :meth:`delete`, which return new databases.
        """
        return self._transactions

    def item_universe(self) -> frozenset:
        """All item ids occurring in any transaction."""
        universe = set()
        for t in self._transactions:
            universe.update(t)
        return frozenset(universe)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, stats: Optional[ScanStats] = None) -> Iterator[Tuple[int, ...]]:
        """Yield every transaction, recording one full database pass.

        The pass is recorded up front (on both the database's own stats and
        the optional per-run ``stats``), matching the paper's model where a
        levelwise iteration always reads the whole database.
        """
        self.stats.record_scan(len(self._transactions))
        if stats is not None:
            stats.record_scan(len(self._transactions))
        return iter(self._transactions)

    # ------------------------------------------------------------------
    # Derived databases
    # ------------------------------------------------------------------
    def filtered(self, keep_items: Iterable[int]) -> "TransactionDatabase":
        """Project every transaction onto ``keep_items``.

        Used for transaction trimming: once the frequent items are known,
        infrequent items can never contribute to a frequent set, so
        dropping them shrinks every later scan.
        """
        keep = frozenset(keep_items)
        return TransactionDatabase(
            tuple(i for i in t if i in keep) for t in self._transactions
        )

    def projected(self, domain) -> "TransactionDatabase":
        """Project every transaction through a :class:`~repro.db.domain.Domain`."""
        return TransactionDatabase(domain.project(t) for t in self._transactions)

    # ------------------------------------------------------------------
    # Churn: appends and deletes as first-class deltas
    # ------------------------------------------------------------------
    def append(
        self, transactions: Iterable[Sequence[int]]
    ) -> Tuple["TransactionDatabase", DatasetDelta]:
        """Append transactions, returning ``(new_db, delta)``.

        The receiver is untouched (databases are immutable content); the
        new database carries ``version + 1`` and the delta records the
        appended transactions, their TIDs in the new database, and the
        touched item set — everything incremental skeleton maintenance
        (:mod:`repro.serve.delta`) needs.
        """
        added = tuple(tuple(sorted(set(t))) for t in transactions)
        combined = self._transactions + added
        new_db = TransactionDatabase._from_normalized(combined, self.version + 1)
        delta = make_delta(
            self._transactions,
            combined,
            base_digest=transactions_digest(self._transactions),
            new_digest=transactions_digest(combined),
            added_tids=tuple(range(len(self._transactions), len(combined))),
        )
        return new_db, delta

    def delete(
        self, tids: Iterable[int]
    ) -> Tuple["TransactionDatabase", DatasetDelta]:
        """Delete transactions by TID, returning ``(new_db, delta)``.

        TIDs refer to positions in *this* database; the survivors keep
        their relative order (so the new content digest is deterministic)
        and are renumbered densely.  Unknown or duplicate TIDs raise
        :class:`~repro.errors.DataError` — a delta must describe exactly
        what happened.
        """
        removed_tids = tuple(sorted(set(tids)))
        for tid in removed_tids:
            if not 0 <= tid < len(self._transactions):
                raise DataError(
                    f"delete: TID {tid} out of range for database of "
                    f"{len(self._transactions)} transactions"
                )
        drop = set(removed_tids)
        survivors = tuple(
            t for tid, t in enumerate(self._transactions) if tid not in drop
        )
        new_db = TransactionDatabase._from_normalized(survivors, self.version + 1)
        delta = make_delta(
            self._transactions,
            survivors,
            base_digest=transactions_digest(self._transactions),
            new_digest=transactions_digest(survivors),
            removed_tids=removed_tids,
        )
        return new_db, delta

    # ------------------------------------------------------------------
    # Direct support queries (reference implementations; miners count in
    # bulk via repro.mining.counting)
    # ------------------------------------------------------------------
    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support of an itemset (number of containing transactions)."""
        target = frozenset(itemset)
        if not target:
            return len(self._transactions)
        return sum(1 for t in self._transactions if target.issubset(t))

    def support_fraction(self, itemset: Iterable[int]) -> float:
        """Relative support of an itemset."""
        if not self._transactions:
            return 0.0
        return self.support(itemset) / len(self._transactions)

    def min_count(self, minsup: float) -> int:
        """Absolute support threshold for a relative ``minsup`` in [0, 1].

        A set is frequent iff its absolute support is >= this value; the
        threshold is at least 1 so that empty data never declares anything
        frequent.
        """
        if not 0.0 < minsup <= 1.0:
            raise DataError(f"minsup must be in (0, 1], got {minsup}")
        import math

        return max(1, math.ceil(minsup * len(self._transactions)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(t) for t in self._transactions]
        avg = sum(sizes) / len(sizes) if sizes else 0.0
        return (
            f"TransactionDatabase({len(self._transactions)} transactions, "
            f"avg size {avg:.1f})"
        )
