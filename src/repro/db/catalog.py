"""The item catalog: the paper's ``itemInfo(Item, Type, Price)`` relation.

An :class:`ItemCatalog` stores, for every item id, a value for each named
attribute (``Type``, ``Price``, ...).  Attribute values may be numbers or
strings.  The catalog supports the operations the constraint machinery
needs:

* projecting a set of items onto an attribute (``S.Price``),
* selecting the items satisfying a predicate on an attribute
  (the succinct-set operation ``sigma_p(Item)`` of Definition 2), and
* answering per-item lookups during constraint evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.errors import ConstraintTypeError, DataError

AttrValue = Union[int, float, str]


class ItemCatalog:
    """Per-item attribute store, the ``itemInfo`` relation of the paper.

    Parameters
    ----------
    attributes:
        Mapping from attribute name to a mapping ``item_id -> value``.
        Every attribute must cover exactly the same set of item ids.

    Examples
    --------
    >>> catalog = ItemCatalog({
    ...     "Price": {1: 100, 2: 250},
    ...     "Type": {1: "snacks", 2: "beer"},
    ... })
    >>> catalog.value(1, "Price")
    100
    >>> sorted(catalog.select("Price", lambda p: p >= 200))
    [2]
    """

    def __init__(self, attributes: Mapping[str, Mapping[int, AttrValue]]):
        if not attributes:
            raise DataError("an item catalog needs at least one attribute")
        self._attributes: Dict[str, Dict[int, AttrValue]] = {
            name: dict(column) for name, column in attributes.items()
        }
        first_name = next(iter(self._attributes))
        item_ids = set(self._attributes[first_name])
        for name, column in self._attributes.items():
            if set(column) != item_ids:
                raise DataError(
                    f"attribute {name!r} covers a different set of items than "
                    f"{first_name!r}; all attributes must cover the same items"
                )
        self._items: Tuple[int, ...] = tuple(sorted(item_ids))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def items(self) -> Tuple[int, ...]:
        """All item ids, sorted ascending."""
        return self._items

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of the attributes stored in this catalog."""
        return tuple(self._attributes)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: int) -> bool:
        return bool(self._items) and item_id in self._attributes[next(iter(self._attributes))]

    def has_attribute(self, name: str) -> bool:
        """Return whether attribute ``name`` exists in the catalog."""
        return name in self._attributes

    # ------------------------------------------------------------------
    # Lookups and projections
    # ------------------------------------------------------------------
    def value(self, item_id: int, attribute: str) -> AttrValue:
        """Return the value of ``attribute`` for ``item_id``."""
        column = self._column(attribute)
        try:
            return column[item_id]
        except KeyError:
            raise DataError(f"unknown item id {item_id}") from None

    def project(self, items: Iterable[int], attribute: str) -> List[AttrValue]:
        """Project a set of items onto an attribute (``S.A`` as a multiset).

        The paper's notation ``S.A`` denotes the *set* of A-values of the
        elements of ``S``; aggregate semantics (``sum``, ``avg``) operate on
        the multiset, so this returns one value per item.  Use
        :meth:`project_set` for the set semantics of domain constraints.
        """
        column = self._column(attribute)
        try:
            return [column[i] for i in items]
        except KeyError as exc:
            raise DataError(f"unknown item id {exc.args[0]}") from None

    def project_set(self, items: Iterable[int], attribute: str) -> frozenset:
        """Project items onto an attribute with set semantics (``S.A``)."""
        column = self._column(attribute)
        try:
            return frozenset(column[i] for i in items)
        except KeyError as exc:
            raise DataError(f"unknown item id {exc.args[0]}") from None

    def select(self, attribute: str, predicate: Callable[[AttrValue], bool]) -> frozenset:
        """Return the succinct set ``sigma_{predicate(attribute)}(Item)``."""
        column = self._column(attribute)
        return frozenset(i for i, v in column.items() if predicate(v))

    def column(self, attribute: str) -> Dict[int, AttrValue]:
        """Return a copy of the full ``item -> value`` column."""
        return dict(self._column(attribute))

    def numeric_attribute(self, attribute: str) -> bool:
        """Return whether every value of ``attribute`` is numeric."""
        column = self._column(attribute)
        return all(isinstance(v, (int, float)) for v in column.values())

    def non_negative_attribute(self, attribute: str) -> bool:
        """Return whether ``attribute`` is numeric with all values >= 0.

        The induced-weaker-constraint results of Section 5.1 assume the
        aggregated domains are non-negative; the optimizer consults this
        before applying them.
        """
        column = self._column(attribute)
        return all(isinstance(v, (int, float)) and v >= 0 for v in column.values())

    def restrict(self, items: Iterable[int]) -> "ItemCatalog":
        """Return a new catalog restricted to the given item ids."""
        keep = set(items)
        unknown = keep - set(self._items)
        if unknown:
            raise DataError(f"unknown item ids in restriction: {sorted(unknown)[:5]}")
        return ItemCatalog(
            {
                name: {i: v for i, v in column.items() if i in keep}
                for name, column in self._attributes.items()
            }
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _column(self, attribute: str) -> Dict[int, AttrValue]:
        try:
            return self._attributes[attribute]
        except KeyError:
            raise ConstraintTypeError(
                f"unknown attribute {attribute!r}; catalog has "
                f"{sorted(self._attributes)}"
            ) from None


def catalog_from_rows(
    rows: Sequence[Tuple[int, AttrValue, AttrValue]],
    attribute_names: Tuple[str, str] = ("Type", "Price"),
) -> ItemCatalog:
    """Build a catalog from ``(item, type, price)``-style rows.

    Convenience mirroring the paper's ``itemInfo(Item, Type, Price)``
    relation layout.
    """
    first: Dict[int, AttrValue] = {}
    second: Dict[int, AttrValue] = {}
    for item_id, a, b in rows:
        if item_id in first:
            raise DataError(f"duplicate item id {item_id} in itemInfo rows")
        first[item_id] = a
        second[item_id] = b
    return ItemCatalog({attribute_names[0]: first, attribute_names[1]: second})
