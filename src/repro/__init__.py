"""repro — reproduction of *Optimization of Constrained Frequent Set
Queries with 2-variable Constraints* (Lakshmanan, Ng, Han, Pang;
SIGMOD 1999).

Public API
----------
Query building and execution::

    from repro import CFQ, mine_cfq
    result = mine_cfq(db, CFQ(domains={...}, minsup=0.01,
                              constraints=["max(S.Price) <= min(T.Price)"]))
    result.pairs()

Strategies (for comparison and benchmarking)::

    from repro import apriori_plus, cap_mine, apriori

Substrate::

    from repro import TransactionDatabase, ItemCatalog, Domain

Analysis::

    from repro import classify_twovar, audit_ccc, parse_constraint

Observability (tracing, metrics, run reports — see
``docs/observability.md``)::

    from repro import Tracer, RunReport, build_run_report
    tracer = Tracer()
    result = mine_cfq(db, cfq, tracer=tracer)
    build_run_report(result).write("run.json")

Run guardrails (budgets, cancellation, checkpoint/resume — see
``docs/run-lifecycle.md``)::

    from repro import RunGuard, RunInterrupted
    guard = RunGuard(deadline_seconds=30.0)
    with guard.signals():
        result = CFQOptimizer(cfq).execute(db, guard=guard,
                                           checkpoint_dir="ckpt")
    if result.is_partial:
        print(result.interruption.summary())
"""

from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.properties import classify_onevar
from repro.constraints.twovar import TwoVarView
from repro.core.ccc import CCCReport, audit_ccc
from repro.core.classify import classify_twovar
from repro.core.optimizer import CFQOptimizer, CFQResult, mine_cfq
from repro.core.pairs import Rule, form_valid_pairs, rules_from_pairs
from repro.core.query import CFQ
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain, derived_type_domain
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import ReproError, RunInterrupted
from repro.mining.apriori import apriori
from repro.mining.aprioriplus import apriori_plus
from repro.mining.cap import cap_mine
from repro.obs import (
    MetricsRegistry,
    RunReport,
    Tracer,
    build_run_report,
    configure_logging,
    get_logger,
)
from repro.runtime import (
    Checkpoint,
    CheckpointManager,
    GuardTrip,
    RunGuard,
    run_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "parse_constraint",
    "parse_constraints",
    "classify_onevar",
    "TwoVarView",
    "CCCReport",
    "audit_ccc",
    "classify_twovar",
    "CFQOptimizer",
    "CFQResult",
    "mine_cfq",
    "Rule",
    "form_valid_pairs",
    "rules_from_pairs",
    "CFQ",
    "ItemCatalog",
    "Domain",
    "derived_type_domain",
    "OpCounters",
    "TransactionDatabase",
    "ReproError",
    "apriori",
    "apriori_plus",
    "cap_mine",
    "RunGuard",
    "GuardTrip",
    "RunInterrupted",
    "Checkpoint",
    "CheckpointManager",
    "run_fingerprint",
    "MetricsRegistry",
    "RunReport",
    "Tracer",
    "build_run_report",
    "configure_logging",
    "get_logger",
    "__version__",
]
