"""Crash-safe checkpoint/resume for levelwise mining runs.

A long dovetailed run that dies at level 7 — OOM, SIGKILL, a tripped
:class:`~repro.runtime.guard.RunGuard` budget — should not have to pay
for levels 1–6 again.  After every completed level boundary the
:class:`~repro.mining.dovetail.DovetailEngine` hands its
:class:`CheckpointManager` a :class:`Checkpoint`, which is serialized as
versioned JSON via **atomic write-rename** (write to a temp file in the
same directory, ``fsync``, ``os.replace``), so a crash mid-write leaves
the previous checkpoint intact.

Resume by replay
----------------
The checkpoint deliberately stores *inputs*, not engine state: the exact
support mappings each counting pass returned (one ordered
:class:`CountEvent` per ``(variable, level)`` pass, level 1 included),
plus an :class:`~repro.db.stats.OpCounters` snapshot taken at the
boundary.  On ``--resume`` the engine re-executes its normal code path —
candidate generation, reduction, ``J^k_max`` series, pruning attribution
— but substitutes the stored supports for the database passes, then
overwrites its counters from the snapshot the moment the last stored
event is consumed.  Everything downstream of the supports is a
deterministic function of them (dicts and rank orders are rebuilt with
the same insertion order), so a resumed run is **bit-identical** to an
uninterrupted one: same frequent sets, same supports, same counters,
same bound histories.  Replay costs no database scans and no support
counting — only the (cheap) candidate regeneration.

Fingerprinting
--------------
A checkpoint binds to ``sha256(query text + dataset digest + the
plan-shaping engine options)``.  ``--resume`` against a different query,
dataset, or option set is refused with
:class:`~repro.errors.ExecutionError` — silently replaying supports
against the wrong inputs would produce confidently wrong answers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.db.stats import OpCounters
from repro.errors import ExecutionError
from repro.obs.logs import get_logger
from repro.runtime import faults

logger = get_logger(__name__)

CHECKPOINT_SCHEMA = "repro.checkpoint"
CHECKPOINT_VERSION = 1
CHECKPOINT_FILENAME = "checkpoint.json"

Itemset = Tuple[int, ...]


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
# The canonical transaction-content digest lives in :mod:`repro.db.digest`
# (it is shared with the churn layer's DatasetDelta, which sits below the
# runtime layer); re-exported here for the historical import path.
from repro.db.digest import dataset_digest, transactions_digest  # noqa: E402,F401


def checkpoint_integrity(document: Dict[str, Any]) -> str:
    """Content checksum of a checkpoint document (minus the checksum)."""
    payload = {k: v for k, v in document.items() if k != "integrity"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_fingerprint(query: str, db, options: Dict[str, Any]) -> str:
    """The identity a checkpoint binds to: query + data + plan options."""
    payload = json.dumps(
        {
            "query": query,
            "dataset": dataset_digest(db),
            "options": options,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Checkpoint document
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CountEvent:
    """One counting pass: the supports a ``(var, level)`` pass produced.

    ``supports`` preserves the exact mapping (and its insertion order)
    the counting backend returned — for level 1 the keys are singleton
    tuples wrapping the raw :func:`count_singletons` elements.
    ``candidates_in`` is the number of candidates that were counted;
    replay asserts the regenerated candidates match it, catching
    corrupt or mismatched checkpoints before they can corrupt answers.
    """

    var: str
    level: int
    candidates_in: int
    supports: Tuple[Tuple[Itemset, int], ...]

    def support_map(self) -> Dict[Itemset, int]:
        return {itemset: n for itemset, n in self.supports}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "var": self.var,
            "level": self.level,
            "candidates_in": self.candidates_in,
            "supports": [[list(itemset), n] for itemset, n in self.supports],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "CountEvent":
        return cls(
            var=document["var"],
            level=int(document["level"]),
            candidates_in=int(document["candidates_in"]),
            supports=tuple(
                (tuple(int(i) for i in itemset), int(n))
                for itemset, n in document["supports"]
            ),
        )


@dataclass(frozen=True)
class Checkpoint:
    """One completed-boundary snapshot of a mining run (see module doc).

    ``events`` is the ordered log of every counting pass completed so
    far; ``counters`` is the :meth:`OpCounters.snapshot` taken at the
    boundary; ``levels_completed`` maps each variable to its deepest
    fully absorbed level (reporting only — replay is driven by
    ``events``).
    """

    fingerprint: str
    events: Tuple[CountEvent, ...]
    counters: Dict[str, Any]
    levels_completed: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        document = {
            "schema": CHECKPOINT_SCHEMA,
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "levels_completed": dict(self.levels_completed),
            "events": [event.as_dict() for event in self.events],
            "counters": self.counters,
        }
        # Content checksum over everything else: a bit-flip that happens
        # to keep the JSON parseable (a digit in a support count!) must
        # be caught before replay can turn it into a wrong answer.
        document["integrity"] = checkpoint_integrity(document)
        return document

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Checkpoint":
        if not isinstance(document, dict):
            raise ExecutionError("checkpoint must be a JSON object")
        if document.get("schema") != CHECKPOINT_SCHEMA:
            raise ExecutionError(
                f"not a checkpoint document (schema "
                f"{document.get('schema')!r}, expected {CHECKPOINT_SCHEMA!r})"
            )
        if document.get("version") != CHECKPOINT_VERSION:
            raise ExecutionError(
                f"unsupported checkpoint version {document.get('version')!r}; "
                f"this reader understands version {CHECKPOINT_VERSION}"
            )
        for key in ("fingerprint", "events", "counters"):
            if key not in document:
                raise ExecutionError(f"checkpoint missing required key {key!r}")
        stored = document.get("integrity")
        if stored is not None and stored != checkpoint_integrity(document):
            # Parseable JSON but flipped content (a digit in a support
            # count).  Refusing here is what keeps resume bit-identical.
            raise ExecutionError(
                "checkpoint integrity checksum mismatch: the file was "
                "modified or corrupted after it was written"
            )
        return cls(
            fingerprint=document["fingerprint"],
            events=tuple(CountEvent.from_dict(e) for e in document["events"]),
            counters=dict(document["counters"]),
            levels_completed={
                var: int(level)
                for var, level in document.get("levels_completed", {}).items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExecutionError(f"checkpoint is not valid JSON: {exc}") from exc
        return cls.from_dict(document)

    def counters_snapshot(self) -> OpCounters:
        """Rebuild the :class:`OpCounters` captured at the boundary."""
        return OpCounters.from_snapshot(self.counters)


# ----------------------------------------------------------------------
# Manager: persistence + resume validation
# ----------------------------------------------------------------------
class CheckpointManager:
    """Owns one run's checkpoint file: load-and-validate, atomic save.

    Parameters
    ----------
    directory:
        Where ``checkpoint.json`` lives; created if missing.
    fingerprint:
        The current run's :func:`run_fingerprint`.  Saves stamp it;
        :meth:`load_for_resume` refuses a stored checkpoint whose
        fingerprint differs (changed query, dataset, or engine options).

    Degradation
    -----------
    Checkpointing is an *optimization* (crash recovery), never a
    correctness dependency — so persistent save failures (disk full,
    permissions) downgrade the run to checkpoint-less execution rather
    than killing it: after :data:`FAILURE_THRESHOLD` consecutive
    ``OSError`` saves the manager sets ``degraded`` and skips every
    subsequent save.  A *corrupt* stored checkpoint (torn JSON, failed
    integrity checksum) is quarantined — renamed to
    ``checkpoint.json.quarantined`` so it is never re-read — and the run
    starts fresh.  Only a fingerprint mismatch still raises: that file
    is valid, it just belongs to a different run, and silently ignoring
    it would surprise the operator who asked to resume it.
    """

    #: Consecutive failed saves before downgrading to checkpoint-less.
    FAILURE_THRESHOLD = 3

    def __init__(self, directory: str, fingerprint: str):
        self.directory = directory
        self.fingerprint = fingerprint
        self.path = os.path.join(directory, CHECKPOINT_FILENAME)
        self.saves = 0
        self.failures = 0
        self.quarantined = 0
        self._consecutive_failures = 0
        self.degraded = False
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            logger.warning(
                "cannot create checkpoint directory %s (%s); "
                "running without checkpoints", directory, exc,
            )
            self.failures += 1
            self.degraded = True

    # -- resume --------------------------------------------------------
    def load_for_resume(self) -> Optional[Checkpoint]:
        """The stored checkpoint, fingerprint-validated.

        Returns ``None`` when no checkpoint exists yet (a ``--resume``
        of a run that never reached its first boundary simply starts
        fresh).  A fingerprint mismatch raises
        :class:`~repro.errors.ExecutionError` — resuming another run's
        supports would silently corrupt answers.
        """
        if not os.path.exists(self.path):
            logger.info("no checkpoint at %s; starting fresh", self.path)
            return None
        try:
            text = faults.fs_read_text(self.path, "checkpoint.load")
        except OSError as exc:
            logger.warning(
                "cannot read checkpoint at %s (%s); starting fresh",
                self.path, exc,
            )
            return None
        try:
            checkpoint = Checkpoint.from_json(text)
        except ExecutionError as exc:
            self._quarantine(str(exc))
            return None
        if checkpoint.fingerprint != self.fingerprint:
            raise ExecutionError(
                f"checkpoint at {self.path} belongs to a different run "
                f"(stored fingerprint {checkpoint.fingerprint[:12]}..., "
                f"current {self.fingerprint[:12]}...): the query, dataset, "
                "or engine options changed. Delete the checkpoint directory "
                "or rerun without --resume."
            )
        logger.info(
            "resuming from %s: %d counting pass(es), levels %s",
            self.path, len(checkpoint.events), checkpoint.levels_completed,
        )
        return checkpoint

    def _quarantine(self, reason: str) -> None:
        """Rename a corrupt checkpoint aside so it is never re-read."""
        aside = self.path + ".quarantined"
        try:
            os.replace(self.path, aside)
            self.quarantined += 1
            logger.warning(
                "quarantined corrupt checkpoint %s -> %s (%s); "
                "starting fresh", self.path, aside, reason,
            )
        except OSError as exc:
            # Can't even rename it: leave it; the next load will fail
            # the same way and the run still starts fresh.
            logger.warning(
                "corrupt checkpoint at %s (%s) could not be quarantined "
                "(%s); starting fresh anyway", self.path, reason, exc,
            )

    # -- save ----------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> Optional[str]:
        """Atomically persist ``checkpoint`` (write temp + fsync + rename).

        A crash at any instant leaves either the previous checkpoint or
        the new one on disk, never a torn file.  An ``OSError`` (disk
        full, permissions, injected fault) is absorbed: the failure is
        counted, and after :data:`FAILURE_THRESHOLD` consecutive
        failures the manager goes ``degraded`` and stops trying — the
        run continues checkpoint-less.  Returns the checkpoint path on
        success, ``None`` when the save was skipped or failed.
        """
        if self.degraded:
            return None
        payload = checkpoint.to_json()
        try:
            faults.fire("checkpoint.save")
            fd, tmp_path = tempfile.mkstemp(
                prefix=".checkpoint-", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                    handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.failures += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.FAILURE_THRESHOLD:
                self.degraded = True
                logger.warning(
                    "checkpoint save failed %d time(s) in a row (%s); "
                    "continuing without checkpoints",
                    self._consecutive_failures, exc,
                )
            else:
                logger.warning("checkpoint save failed (%s); will retry "
                               "at the next boundary", exc)
            return None
        self.saves += 1
        self._consecutive_failures = 0
        return self.path
