"""Run guardrails: budgets, cooperative cancellation, trip telemetry.

The candidate lattices this library mines can explode combinatorially
(the very motivation of the paper's ``J^k_max`` and quasi-succinct
machinery), and Tatti's complexity results show the general problem is
intractable — so a production run needs *enforceable* resource budgets
rather than hope.  :class:`RunGuard` carries three:

* a **wall-clock deadline** (seconds from :meth:`start`),
* an **RSS memory watermark** (sampled cheaply from ``/proc/self/statm``
  between candidate batches; ``getrusage`` peak-RSS fallback),
* a **per-level candidate budget** (checked the moment a level's
  candidates are generated, before any counting).

Checks are *cooperative*: the engines call :meth:`check` at level
boundaries, :meth:`tick` every N work units inside counting loops, and
:meth:`check_candidates` after candidate generation.  A tripped budget —
or a SIGINT/SIGTERM delivered while :meth:`signals` is installed —
raises :class:`~repro.errors.RunInterrupted`, which unwinds the engines
cleanly and lets the optimizer package partial results
(``CFQResult.status == "partial"``).

The disabled path is free: every instrumented call site takes a guard
defaulting to :data:`NULL_GUARD`, whose methods are no-ops, and the hot
counting kernel only arms its per-transaction tick when
``guard.enabled`` is true (the overhead budget is enforced in
``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import contextlib
import os
import signal as _signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ExecutionError, RunInterrupted

#: Work units (candidate probes) between cooperative checks inside
#: counting loops.  Small enough to react within milliseconds on the
#: paper's workloads, large enough that the check cost disappears.
DEFAULT_CHECK_EVERY = 100_000

#: Full checks between RSS samples (a sample is two syscalls).
DEFAULT_MEMORY_SAMPLE_EVERY = 4


def _read_rss_mb() -> Optional[float]:
    """Current resident set size in MiB, or ``None`` if unmeasurable.

    Prefers ``/proc/self/statm`` (Linux: field 2 is resident pages);
    falls back to ``resource.getrusage`` peak RSS (kilobytes on Linux).
    Both are cheap enough to sample between candidate batches.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * (os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0))
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:  # pragma: no cover - exotic platforms only
        return None


@dataclass(frozen=True)
class GuardTrip:
    """What tripped a :class:`RunGuard`, and the state of the run then.

    ``reason`` is a stable machine-readable code (``"deadline"``,
    ``"memory"``, ``"candidates"``, ``"sigint"``, ``"sigterm"``,
    ``"cancelled"``); ``detail`` is the human-readable sentence.
    ``levels_completed`` maps each variable to its deepest fully counted
    and verified level at trip time.
    """

    reason: str
    detail: str
    where: str = ""
    elapsed_seconds: float = 0.0
    rss_mb: Optional[float] = None
    levels_completed: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "detail": self.detail,
            "where": self.where,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "rss_mb": round(self.rss_mb, 3) if self.rss_mb is not None else None,
            "levels_completed": dict(self.levels_completed),
        }

    def summary(self) -> str:
        """One-line rendering for ``explain()`` and bench tables."""
        levels = ", ".join(
            f"{var}:L{level}" for var, level in sorted(self.levels_completed.items())
        ) or "none"
        text = (
            f"{self.reason} after {self.elapsed_seconds:.2f}s "
            f"(levels completed: {levels}"
        )
        if self.rss_mb is not None:
            text += f", rss {self.rss_mb:.0f}MB"
        return text + ")"


class RunGuard:
    """Cooperative budget enforcement for one mining run.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget, measured from :meth:`start` (the optimizer
        starts the guard when execution begins).  ``None`` disables.
    max_memory_mb:
        RSS watermark in MiB.  Sampled at level boundaries and every few
        full checks inside counting loops; unmeasurable platforms
        disable the budget with a note in :meth:`telemetry`.
    max_candidates:
        Per-level candidate-count budget: a level generating more
        candidates than this trips *before* the level is counted —
        catching the combinatorial explosions the paper's Section 4–5
        bounds exist to avoid.
    check_every:
        Work units (candidate probes) between cooperative checks inside
        counting loops.
    """

    enabled = True

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_memory_mb: Optional[float] = None,
        max_candidates: Optional[int] = None,
        check_every: int = DEFAULT_CHECK_EVERY,
        memory_sample_every: int = DEFAULT_MEMORY_SAMPLE_EVERY,
    ):
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ExecutionError(
                f"deadline_seconds must be >= 0, got {deadline_seconds}"
            )
        if max_memory_mb is not None and max_memory_mb <= 0:
            raise ExecutionError(f"max_memory_mb must be > 0, got {max_memory_mb}")
        if max_candidates is not None and max_candidates < 1:
            raise ExecutionError(f"max_candidates must be >= 1, got {max_candidates}")
        if check_every < 1:
            raise ExecutionError(f"check_every must be >= 1, got {check_every}")
        self.deadline_seconds = deadline_seconds
        self.max_memory_mb = max_memory_mb
        self.max_candidates = max_candidates
        self.check_every = check_every
        self.memory_sample_every = max(1, memory_sample_every)
        self.levels_completed: Dict[str, int] = {}
        self.trip: Optional[GuardTrip] = None
        self._started_at: Optional[float] = None
        self._cancel_reason: Optional[str] = None
        self._cancel_detail: str = ""
        self._tick_units = 0
        self._checks = 0
        self._peak_rss_mb: Optional[float] = None
        self._memory_unmeasurable = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RunGuard":
        """Arm the deadline clock (idempotent; resumes keep the first)."""
        if self._started_at is None:
            self._started_at = time.monotonic()
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before the guard started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def request_cancel(self, reason: str = "cancelled", detail: str = "") -> None:
        """Ask the run to stop at its next cooperative check.

        Async-signal-safe (two attribute writes); this is what the
        :meth:`signals` handlers call on SIGINT/SIGTERM.
        """
        if self._cancel_reason is None:
            self._cancel_reason = reason
            self._cancel_detail = detail or f"cancellation requested ({reason})"

    @contextlib.contextmanager
    def signals(self, signums=(_signal.SIGINT, _signal.SIGTERM)):
        """Route SIGINT/SIGTERM into :meth:`request_cancel` while active.

        The previous handlers are restored on exit.  Outside the main
        thread (where ``signal.signal`` raises), this is a no-op, so
        library callers can use it unconditionally.
        """
        installed = {}

        def _handler(signum, frame):
            name = _signal.Signals(signum).name.lower()
            self.request_cancel(name, f"received {name.upper()}")

        try:
            for signum in signums:
                installed[signum] = _signal.signal(signum, _handler)
        except ValueError:  # not the main thread
            installed = {}
        try:
            yield self
        finally:
            for signum, previous in installed.items():
                _signal.signal(signum, previous)

    # ------------------------------------------------------------------
    # Cooperative checks
    # ------------------------------------------------------------------
    def check(self, where: str = "") -> None:
        """Full check: cancellation flag, deadline, memory watermark.

        Raises :class:`~repro.errors.RunInterrupted` on (or after) a
        trip; re-raising on every later check keeps a tripped guard from
        letting work continue through a swallowed exception.
        """
        if self.trip is not None:
            raise self._interrupt(self.trip)
        self._checks += 1
        if self._cancel_reason is not None:
            raise self._trip(self._cancel_reason, self._cancel_detail, where)
        if (
            self.deadline_seconds is not None
            and self._started_at is not None
            and self.elapsed() > self.deadline_seconds
        ):
            raise self._trip(
                "deadline",
                f"wall-clock budget of {self.deadline_seconds:g}s exceeded",
                where,
            )
        if self.max_memory_mb is not None and not self._memory_unmeasurable:
            if where == "level" or self._checks % self.memory_sample_every == 0:
                rss = _read_rss_mb()
                if rss is None:
                    self._memory_unmeasurable = True
                else:
                    if self._peak_rss_mb is None or rss > self._peak_rss_mb:
                        self._peak_rss_mb = rss
                    if rss > self.max_memory_mb:
                        raise self._trip(
                            "memory",
                            f"resident set {rss:.0f}MB exceeds the "
                            f"{self.max_memory_mb:g}MB watermark",
                            where,
                        )

    def tick(self, units: int = 1, where: str = "counting") -> None:
        """Cheap in-loop check: accumulate work units, run a full
        :meth:`check` every :attr:`check_every` of them."""
        self._tick_units += units
        if self._tick_units >= self.check_every:
            self._tick_units = 0
            self.check(where)

    def check_candidates(self, n_candidates: int, var: str, level: int) -> None:
        """Enforce the per-level candidate budget, pre-counting."""
        if self.max_candidates is not None and n_candidates > self.max_candidates:
            raise self._trip(
                "candidates",
                f"level {level} of {var} generated {n_candidates} candidates, "
                f"over the {self.max_candidates} budget",
                where=f"candidates {var}:L{level}",
            )
        self.check(where=f"candidates {var}:L{level}")

    def level_completed(self, var: str, level: int) -> None:
        """Record one fully counted-and-absorbed level, then check.

        Subclassable test hook: deterministic interruption tests override
        this to trip after a chosen number of completed levels.
        """
        current = self.levels_completed.get(var, 0)
        if level > current:
            self.levels_completed[var] = level
        self.check(where="level")

    # ------------------------------------------------------------------
    # Tripping
    # ------------------------------------------------------------------
    def _trip(self, reason: str, detail: str, where: str) -> RunInterrupted:
        self.trip = GuardTrip(
            reason=reason,
            detail=detail,
            where=where,
            elapsed_seconds=self.elapsed(),
            rss_mb=self._sample_rss(),
            levels_completed=dict(self.levels_completed),
        )
        return self._interrupt(self.trip)

    @staticmethod
    def _interrupt(trip: GuardTrip) -> RunInterrupted:
        return RunInterrupted(f"run interrupted: {trip.detail}", trip=trip)

    def _sample_rss(self) -> Optional[float]:
        rss = _read_rss_mb()
        if rss is not None and (self._peak_rss_mb is None or rss > self._peak_rss_mb):
            self._peak_rss_mb = rss
        return rss if rss is not None else self._peak_rss_mb

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def telemetry(self) -> Dict[str, Any]:
        """The run report's ``budget`` block: configured budgets and how
        much of each was consumed (plus the trip, if one happened)."""
        return {
            "budgets": {
                "deadline_seconds": self.deadline_seconds,
                "max_memory_mb": self.max_memory_mb,
                "max_candidates": self.max_candidates,
            },
            "consumed": {
                "elapsed_seconds": round(self.elapsed(), 6),
                "peak_rss_mb": (
                    round(self._peak_rss_mb, 3)
                    if self._peak_rss_mb is not None
                    else None
                ),
                "checks": self._checks,
                "levels_completed": dict(self.levels_completed),
            },
            "memory_unmeasurable": self._memory_unmeasurable,
            "trip": self.trip.as_dict() if self.trip is not None else None,
        }


class NullGuard:
    """The disabled guard: every operation is a no-op.

    Mirrors the ``NULL_TRACER`` pattern — instrumented call sites take a
    guard defaulting to the shared :data:`NULL_GUARD`, and hot loops gate
    their per-batch ticks on ``guard.enabled``, so an unguarded run pays
    at most one attribute read per call site.
    """

    enabled = False
    trip = None
    levels_completed: Dict[str, int] = {}

    def start(self) -> "NullGuard":
        return self

    def elapsed(self) -> float:
        return 0.0

    def request_cancel(self, reason: str = "cancelled", detail: str = "") -> None:
        return None

    @contextlib.contextmanager
    def signals(self, signums=None):
        yield self

    def check(self, where: str = "") -> None:
        return None

    def tick(self, units: int = 1, where: str = "counting") -> None:
        return None

    def check_candidates(self, n_candidates: int, var: str, level: int) -> None:
        return None

    def level_completed(self, var: str, level: int) -> None:
        return None

    def telemetry(self) -> Dict[str, Any]:
        return {}


#: Shared singleton: the default guard of every instrumented call site.
NULL_GUARD = NullGuard()


def resolve_guard(guard) -> RunGuard:
    """Normalize an optional guard argument (``None`` → disabled)."""
    return NULL_GUARD if guard is None else guard
