"""Deterministic, seeded, process-wide fault injection for the serving stack.

PR 2's :class:`~repro.mining.backends.FaultInjector` proved the worker
pool degrades bit-identically under crash/hang/kill — but it stops at the
pool.  This module generalizes the idea to **every infrastructure seam**
the serving stack crosses: filesystem writes and reads (torn write,
short read, ``ENOSPC``, ``EACCES``, ``EIO``, corrupt bytes, rename
failure), the event journal's append/rotate path, checkpoint
persistence, incremental skeleton refresh, and the monotonic clock.

The design is a *plan*, not a monkeypatch: production code threads its
fragile operations through the tiny helpers here
(:func:`fs_write_text`, :func:`fs_read_text`, :func:`fs_replace`,
:func:`fs_remove`, :func:`fire`), each tagged with a **site name** from
:data:`FAULT_SITES`.  With no plan installed the helpers compile down to
plain I/O — one ``is None`` check on the hot path.  With a plan
installed (:func:`install` / :func:`installed`), each site keeps a
deterministic hit counter and each :class:`FaultRule` describes a
half-open window ``[after, after + times)`` of hits that fault.  Two
runs with the same plan and the same operation sequence inject the same
faults at the same instants — which is what lets the chaos differential
harness shrink failures and replay them.

Randomness (which byte a ``corrupt`` read flips) comes only from the
plan's seed, never from global state, so corruption is reproducible too.

The guiding invariant (see ``docs/fault-tolerance.md``): under any
injected fault the service may *degrade* — slower tier, cold re-mine,
memory-only cache — but must never return answers that differ from a
fault-free cold run.  The fault plan is the attack half of that proof;
the degradation ladders in :mod:`repro.serve.service`,
:mod:`repro.obs.events`, and :mod:`repro.runtime.checkpoint` are the
defense half.
"""

from __future__ import annotations

import errno
import json
import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError

#: Every injectable failure site in the serving stack, by name.  A plan
#: naming an unknown site raises immediately — a typo'd site would
#: silently never fire and the chaos harness would "prove" nothing.
FAULT_SITES = frozenset(
    {
        # the QueryService result-cache disk tier
        "serve.disk.write",
        "serve.disk.read",
        "serve.disk.replace",
        "serve.disk.remove",
        # the telemetry event journal
        "journal.open",
        "journal.write",
        "journal.rotate",
        # crash-safe checkpointing
        "checkpoint.save",
        "checkpoint.load",
        # incremental skeleton maintenance under churn
        "skeleton.refresh",
        # the monotonic clock feeding TTL and the circuit breaker
        "clock",
    }
)

#: Fault kinds with filesystem semantics (the errno-raising ones work at
#: any fs site; ``torn`` only at write sites, ``short``/``corrupt`` only
#: at read sites, ``rename`` only at replace sites).
FS_KINDS = ("enospc", "eacces", "eio", "torn", "short", "corrupt", "rename")

#: All fault kinds.  ``error`` raises :class:`~repro.errors.ExecutionError`
#: (for non-filesystem sites like ``skeleton.refresh``); ``clock_jump``
#: advances a wrapped clock by ``jump_seconds``.
FAULT_KINDS = FS_KINDS + ("error", "clock_jump")

_ERRNO = {
    "enospc": errno.ENOSPC,
    "eacces": errno.EACCES,
    "eio": errno.EIO,
    "rename": errno.EIO,
    "torn": errno.ENOSPC,
}


class InjectedFault(OSError):
    """An injected filesystem fault (an ``OSError`` with a real errno),
    distinguishable from organic failures in logs and tests."""

    def __init__(self, err: int, site: str, kind: str):
        super().__init__(err, f"injected {kind} at {site}")
        self.site = site
        self.kind = kind


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection: fault ``site`` on hits
    ``[after, after + times)`` of its counter (0-based).

    ``times=-1`` means "every hit from ``after`` on" — the persistent
    fault the circuit-breaker proofs need.  ``jump_seconds`` only
    applies to ``clock_jump`` rules.
    """

    site: str
    kind: str
    times: int = 1
    after: int = 0
    jump_seconds: float = 0.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ExecutionError(
                f"unknown fault site {self.site!r}; choose from "
                f"{sorted(FAULT_SITES)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.times < -1 or self.times == 0:
            raise ExecutionError(
                f"times must be a positive count or -1 (forever), "
                f"got {self.times}"
            )
        if self.after < 0:
            raise ExecutionError(f"after must be >= 0, got {self.after}")

    def covers(self, n: int) -> bool:
        """Whether hit number ``n`` (0-based) of the site faults."""
        if n < self.after:
            return False
        return self.times == -1 or n < self.after + self.times

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "site": self.site, "kind": self.kind,
            "times": self.times, "after": self.after,
        }
        if self.jump_seconds:
            out["jump_seconds"] = self.jump_seconds
        return out

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultRule":
        if not isinstance(document, dict):
            raise ExecutionError("fault rule must be a JSON object")
        unknown = set(document) - {
            "site", "kind", "times", "after", "jump_seconds"
        }
        if unknown:
            raise ExecutionError(
                f"fault rule has unknown key(s) {sorted(unknown)}"
            )
        for key in ("site", "kind"):
            if key not in document:
                raise ExecutionError(f"fault rule missing required {key!r}")
        return cls(
            site=document["site"],
            kind=document["kind"],
            times=int(document.get("times", 1)),
            after=int(document.get("after", 0)),
            jump_seconds=float(document.get("jump_seconds", 0.0)),
        )


class FaultPlan:
    """A seeded, deterministic set of :class:`FaultRule` s plus the
    per-site hit counters that decide when each fires.

    The plan records every injection in :attr:`fired` (``(site, kind,
    hit_number)`` tuples), so tests assert not just that the service
    survived but that the faults they asked for actually happened — a
    chaos harness whose faults silently stopped firing proves nothing.
    """

    def __init__(self, rules: Optional[List[FaultRule]] = None, seed: int = 0):
        self.rules: List[FaultRule] = list(rules or [])
        self.seed = seed
        self._rng = random.Random(seed)
        self.hits: Dict[str, int] = {}
        self.fired: List[Tuple[str, str, int]] = []
        self._lock = threading.Lock()
        self.clock_offset = 0.0

    # -- construction --------------------------------------------------
    def add(self, site: str, kind: str, times: int = 1, after: int = 0,
            jump_seconds: float = 0.0) -> "FaultPlan":
        """Append one rule (chainable); the chaos harness grows plans
        mid-run this way."""
        self.rules.append(FaultRule(site, kind, times, after, jump_seconds))
        return self

    def clear_rules(self) -> None:
        """Drop every rule — "faults clear" — keeping hit counters and
        the fired log, so recovery proofs can still see the history."""
        self.rules = []

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(document, dict):
            raise ExecutionError("fault plan must be a JSON object")
        unknown = set(document) - {"seed", "rules"}
        if unknown:
            raise ExecutionError(
                f"fault plan has unknown key(s) {sorted(unknown)}"
            )
        rules = document.get("rules", [])
        if not isinstance(rules, list):
            raise ExecutionError("fault plan 'rules' must be a list")
        return cls(
            rules=[FaultRule.from_dict(r) for r in rules],
            seed=int(document.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExecutionError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(document)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ExecutionError(f"cannot read fault plan {path}: {exc}")
        return cls.from_json(text)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.as_dict() for rule in self.rules],
        }

    # -- matching ------------------------------------------------------
    def hit(self, site: str) -> Optional[FaultRule]:
        """Count one hit of ``site``; the matching rule if it faults.

        The counter advances whether or not a rule matches, so rule
        windows are stable under plan edits mid-run.
        """
        with self._lock:
            n = self.hits.get(site, 0)
            self.hits[site] = n + 1
            for rule in self.rules:
                if rule.site == site and rule.covers(n):
                    self.fired.append((site, rule.kind, n))
                    return rule
        return None

    def fired_kinds(self, site: str) -> List[str]:
        """The kinds that fired at one site, in order (test assertion)."""
        return [kind for s, kind, _ in self.fired if s == site]

    # -- deterministic corruption --------------------------------------
    def mangle(self, text: str) -> str:
        """Deterministically corrupt ``text``: flip one character chosen
        by the plan's seeded RNG (never into itself)."""
        if not text:
            return "\x00"
        index = self._rng.randrange(len(text))
        old = text[index]
        new = chr((ord(old) + 1) % 128) if old != "\x00" else "A"
        return text[:index] + new + text[index + 1:]

    # -- clock ---------------------------------------------------------
    def wrap_clock(self, clock: Callable[[], float]) -> Callable[[], float]:
        """A clock that additionally applies this plan's ``clock_jump``
        rules: every call counts one hit of the ``clock`` site; a firing
        rule permanently advances the returned time by its
        ``jump_seconds``."""

        def jumped() -> float:
            rule = self.hit("clock")
            if rule is not None and rule.kind == "clock_jump":
                self.clock_offset += rule.jump_seconds
            return clock() + self.clock_offset

        return jumped


# ----------------------------------------------------------------------
# Process-wide installation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan (returns it)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (helpers become plain I/O again)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The installed plan, or ``None``."""
    return _ACTIVE


@contextmanager
def installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with installed(plan):`` — scoped installation, restoring the
    previously active plan (tests nest safely)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def _match(site: str) -> Optional[FaultRule]:
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.hit(site)


def _raise_fs(rule: FaultRule, site: str) -> None:
    raise InjectedFault(_ERRNO.get(rule.kind, errno.EIO), site, rule.kind)


# ----------------------------------------------------------------------
# Injection-aware primitives (plain I/O when no plan is active)
# ----------------------------------------------------------------------
def fire(site: str) -> None:
    """Non-filesystem injection point: raises the planned fault, if any.

    ``error`` raises :class:`~repro.errors.ExecutionError`; the errno
    kinds raise :class:`InjectedFault` (an ``OSError``).  Sites that
    only narrate (``clock``) are handled elsewhere and never raise here.
    """
    rule = _match(site)
    if rule is None:
        return
    if rule.kind == "error":
        raise ExecutionError(f"injected error at {site}")
    if rule.kind in _ERRNO:
        _raise_fs(rule, site)
    # short/corrupt/clock_jump have no meaning for a bare fire(): the
    # hit is still counted (and logged) so plans stay deterministic.


def fs_write_text(path: str, text: str, site: str) -> None:
    """``open(path, "w").write(text)`` with injection.

    ``torn`` writes a prefix and then raises ``ENOSPC`` — the torn file
    is left behind, exactly like a real half-flushed write on a full
    disk; errno kinds raise before any byte lands.
    """
    rule = _match(site)
    if rule is not None:
        if rule.kind == "torn":
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text[: max(1, len(text) // 2)])
            _raise_fs(rule, site)
        if rule.kind in _ERRNO:
            _raise_fs(rule, site)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def fs_read_text(path: str, site: str) -> str:
    """``open(path).read()`` with injection: errno kinds raise;
    ``short`` returns a truncated prefix (a torn read); ``corrupt``
    returns the content with one seed-chosen character flipped."""
    rule = _match(site)
    if rule is not None and rule.kind in ("eacces", "eio", "enospc"):
        _raise_fs(rule, site)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if rule is not None:
        if rule.kind == "short":
            return text[: len(text) // 2]
        if rule.kind == "corrupt":
            plan = _ACTIVE
            return plan.mangle(text) if plan is not None else text
    return text


def fs_replace(src: str, dst: str, site: str) -> None:
    """``os.replace`` with injection (``rename`` or errno kinds)."""
    rule = _match(site)
    if rule is not None and rule.kind in _ERRNO:
        _raise_fs(rule, site)
    os.replace(src, dst)


def fs_remove(path: str, site: str) -> None:
    """``os.remove`` with injection."""
    rule = _match(site)
    if rule is not None and rule.kind in _ERRNO:
        _raise_fs(rule, site)
    os.remove(path)
