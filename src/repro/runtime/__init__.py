"""Run-lifecycle guardrails: budgets, cancellation, checkpoint/resume.

See ``docs/run-lifecycle.md`` for the guard semantics, the
partial-result contract, and the checkpoint format.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_FILENAME,
    Checkpoint,
    CheckpointManager,
    CountEvent,
    dataset_digest,
    run_fingerprint,
)
from repro.runtime.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
)
from repro.runtime.faults import active as active_fault_plan
from repro.runtime.faults import install as install_fault_plan
from repro.runtime.faults import installed as installed_fault_plan
from repro.runtime.faults import uninstall as uninstall_fault_plan
from repro.runtime.guard import (
    NULL_GUARD,
    GuardTrip,
    NullGuard,
    RunGuard,
    resolve_guard,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "Checkpoint",
    "CheckpointManager",
    "CountEvent",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "GuardTrip",
    "InjectedFault",
    "NULL_GUARD",
    "NullGuard",
    "RunGuard",
    "active_fault_plan",
    "dataset_digest",
    "install_fault_plan",
    "installed_fault_plan",
    "resolve_guard",
    "run_fingerprint",
    "uninstall_fault_plan",
]
