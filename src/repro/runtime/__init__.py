"""Run-lifecycle guardrails: budgets, cancellation, checkpoint/resume.

See ``docs/run-lifecycle.md`` for the guard semantics, the
partial-result contract, and the checkpoint format.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_FILENAME,
    Checkpoint,
    CheckpointManager,
    CountEvent,
    dataset_digest,
    run_fingerprint,
)
from repro.runtime.guard import (
    NULL_GUARD,
    GuardTrip,
    NullGuard,
    RunGuard,
    resolve_guard,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "Checkpoint",
    "CheckpointManager",
    "CountEvent",
    "GuardTrip",
    "NULL_GUARD",
    "NullGuard",
    "RunGuard",
    "dataset_digest",
    "resolve_guard",
    "run_fingerprint",
]
