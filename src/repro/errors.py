"""Exception hierarchy for the CFQ reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subclass corresponds to one stage of the pipeline:
parsing the constraint language, validating a query against the catalog,
classifying constraints, and executing a mining strategy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConstraintSyntaxError(ReproError):
    """The constraint DSL text could not be parsed.

    Carries the offending text and the character position where parsing
    failed, so callers can render a caret diagnostic.
    """

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if text and position >= 0:
            caret = " " * position + "^"
            message = f"{message}\n  {text}\n  {caret}"
        super().__init__(message)


class ConstraintTypeError(ReproError):
    """A parsed constraint is ill-typed for the CFQ language.

    Examples: aggregating a non-numeric attribute with ``sum``, comparing a
    set expression to a scalar, or referencing an attribute that does not
    exist in the item catalog.
    """


class QueryValidationError(ReproError):
    """A CFQ is structurally invalid (unknown variables, empty body, ...)."""


class ClassificationError(ReproError):
    """A constraint falls outside the characterized CFQ language."""


class ExecutionError(ReproError):
    """A mining strategy failed at run time (bad parameters, etc.)."""


class RunInterrupted(ReproError):
    """A mining run was cut short by a resource guard or a signal.

    Raised cooperatively by :class:`repro.runtime.RunGuard` at its check
    points when a budget (wall-clock deadline, memory watermark,
    per-level candidate count) trips or a SIGINT/SIGTERM cancellation was
    requested.  The exception unwinds the engines cleanly; drivers that
    can package partial results attach them before re-raising:

    ``trip``
        The :class:`repro.runtime.GuardTrip` describing what tripped,
        where, and the telemetry at that moment.
    ``partial``
        Engine-dependent partial-result payload (``None`` when nothing
        completed): a ``LatticeResult`` for the single-lattice miners, a
        ``{var: LatticeResult}`` dict for ``apriori_plus``.  The
        optimizer catches this exception itself and returns a
        ``CFQResult`` with ``status="partial"`` instead.
    """

    def __init__(self, message: str, trip=None, partial=None):
        super().__init__(message)
        self.trip = trip
        self.partial = partial


class DataError(ReproError):
    """The transaction database or item catalog is malformed."""
