"""Itemset representation helpers.

Throughout the mining code an itemset is a **canonical tuple**: element
ids sorted ascending.  Candidate generation additionally works in *rank
space* — tuples sorted by a per-run rank that places required-bucket
elements first (the member-generating-function ordering of CAP) — and the
helpers here convert between the two.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

Itemset = Tuple[int, ...]


def canonical(elements: Iterable[int]) -> Itemset:
    """The canonical (id-sorted) form of an itemset."""
    return tuple(sorted(elements))


def ranked(elements: Iterable[int], rank: Mapping[int, int]) -> Itemset:
    """The rank-space form of an itemset (sorted by rank)."""
    return tuple(sorted(elements, key=rank.__getitem__))


def subsets_of_size(itemset: Sequence[int], size: int) -> Iterator[Itemset]:
    """All subsets of the given size, in generation order."""
    return combinations(itemset, size)


def proper_subsets(itemset: Sequence[int]) -> Iterator[Itemset]:
    """All (k-1)-subsets of a k-itemset."""
    return combinations(itemset, len(itemset) - 1)


def all_nonempty_subsets(elements: Sequence[int]) -> Iterator[Itemset]:
    """Every non-empty subset, smallest first (for the FM strategy and
    brute-force oracles; exponential — small universes only)."""
    elements = canonical(elements)
    for size in range(1, len(elements) + 1):
        yield from combinations(elements, size)


def max_level(frequent_by_level: Mapping[int, Mapping[Itemset, int]]) -> int:
    """The largest level with at least one frequent set (0 if none)."""
    levels = [k for k, sets in frequent_by_level.items() if sets]
    return max(levels) if levels else 0


def flatten(frequent_by_level: Mapping[int, Mapping[Itemset, int]]) -> Dict[Itemset, int]:
    """Merge the per-level maps into one ``itemset -> support`` map."""
    merged: Dict[Itemset, int] = {}
    for sets in frequent_by_level.values():
        merged.update(sets)
    return merged
