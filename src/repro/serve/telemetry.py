"""Process-lifetime serving telemetry: histograms, gauges, journal.

A :class:`ServiceTelemetry` is owned by one
:class:`~repro.serve.service.QueryService` and outlives individual
queries: while a :class:`~repro.obs.trace.Tracer` describes one run and
:class:`~repro.db.stats.CacheStats` counts transitions, the telemetry
object accumulates the *distributional* view a serving operator needs —

* **per-outcome latency histograms**
  (``serve_seconds{outcome=...}``) for every way a query can be
  answered: ``cold``, ``warm-memory``, ``warm-disk``, ``skeleton``,
  ``skeleton-batch``, ``partial`` — quantile-accurate
  (:class:`~repro.obs.hist.QuantileHistogram`), so warm-hit p50/p99 are
  first-class numbers, not anecdotes;
* **cache gauges** — hit ratio, held bytes, per-tier entry occupancy
  (entries / capacity), and the age of the most recent eviction (plus
  an ``eviction_age_seconds`` histogram per tier);
* **maintenance timings** — ``apply_delta`` wall time and per-skeleton
  refresh seconds;
* an **event journal** (:class:`~repro.obs.events.EventJournal`)
  narrating every lifecycle transition (hit, miss, store, evict,
  TTL-expiry, disk sweep, delta refresh, guard trip) with monotonic
  sequence numbers, memory-bounded and optionally rotating on disk.

Everything folds into one :class:`~repro.obs.metrics.MetricsRegistry`,
so per-run registries merge in (:meth:`merge_run`) and the whole object
exports as Prometheus text or a JSON snapshot (``repro stats``,
``--telemetry-out``, the run report's schema-v5 ``telemetry`` block).

Telemetry is on by default — the serving layer's per-query overhead is
a handful of dict operations against runs that are measured in
milliseconds — but ``ServiceTelemetry(enabled=False)`` (or
``QueryService(telemetry=False)``) turns every recording method into an
early return.  The *engine's* disabled-path guarantee is untouched:
uncached runs never construct a service, and NULL_TRACER/NULL_METRICS
call sites are unchanged.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Optional

from repro.obs.events import NULL_JOURNAL, EventJournal
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry

TELEMETRY_SCHEMA = "repro.serve.telemetry"
TELEMETRY_VERSION = 1

#: The ways one query can be answered, as histogram labels.
SERVE_OUTCOMES = (
    "cold",
    "warm-memory",
    "warm-disk",
    "skeleton",
    "skeleton-batch",
    "partial",
)


class ServiceTelemetry:
    """Lifetime instrumentation for one :class:`QueryService`.

    Parameters
    ----------
    journal_path:
        Optional JSONL path for the on-disk event journal (rotating);
        ``None`` keeps the journal memory-only.
    journal:
        A pre-built :class:`EventJournal` (overrides ``journal_path``).
    clock:
        Monotonic clock shared with the service (drives eviction ages
        and journal timestamps).
    enabled:
        ``False`` makes every recording method an early return and the
        journal the null journal.
    """

    def __init__(
        self,
        journal_path: Optional[str] = None,
        journal: Optional[EventJournal] = None,
        clock: Callable[[], float] = time.monotonic,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.clock = clock
        self.started_at = clock()
        self.metrics = MetricsRegistry()
        if not enabled:
            self.journal = NULL_JOURNAL
        elif journal is not None:
            self.journal = journal
        else:
            self.journal = EventJournal(path=journal_path, clock=clock)
        self.runs_merged = 0

    # ------------------------------------------------------------------
    # Serving outcomes
    # ------------------------------------------------------------------
    def record_serve(
        self, outcome: str, seconds: float, query_fp: Optional[str] = None
    ) -> None:
        """One answered query: latency into the outcome's histogram."""
        if not self.enabled:
            return
        if outcome not in SERVE_OUTCOMES:
            raise ValueError(
                f"unknown serve outcome {outcome!r}; expected one of "
                f"{SERVE_OUTCOMES}"
            )
        self.metrics.inc("serves", outcome=outcome)
        self.metrics.observe("serve_seconds", seconds, outcome=outcome)

    def record_lookup(
        self, tier: str, key: str, dataset_fp: str, hit: bool
    ) -> None:
        """One result-cache probe (tier ``memory``/``disk``)."""
        if not self.enabled:
            return
        if hit:
            self.journal.record(
                "result_hit", tier=tier, key=key[:16], dataset=dataset_fp[:16]
            )
        else:
            self.journal.record(
                "result_miss", key=key[:16], dataset=dataset_fp[:16]
            )

    def record_store(self, key: str, dataset_fp: str, nbytes: int) -> None:
        """One completed cold run stored into the result cache."""
        if not self.enabled:
            return
        self.journal.record(
            "result_store", key=key[:16], dataset=dataset_fp[:16], nbytes=nbytes
        )

    def record_guard_trip(self, query_fp: str, reason: Any) -> None:
        """One guard-interrupted (partial) serving."""
        if not self.enabled:
            return
        self.metrics.inc("guard_trips")
        self.journal.record("guard_trip", query=query_fp[:16], reason=str(reason))

    # ------------------------------------------------------------------
    # Query server (docs/server.md)
    # ------------------------------------------------------------------
    def record_admit(self, tenant: str, query_fp: str) -> None:
        """One request admitted past rate-limit and queue checks."""
        if not self.enabled:
            return
        self.metrics.inc("server_admits", tenant=tenant)
        self.journal.record("server_admit", tenant=tenant, query=query_fp[:16])

    def record_reject(self, tenant: str, reason: str) -> None:
        """One request rejected by admission control (``rate_limit``,
        ``unknown_tenant``, ``bad_request`` ...)."""
        if not self.enabled:
            return
        self.metrics.inc("server_rejections", tenant=tenant, reason=reason)
        self.journal.record("server_reject", tenant=tenant, reason=reason)

    def record_shed(self, tenant: str) -> None:
        """One request shed because the bounded global queue was full."""
        if not self.enabled:
            return
        self.metrics.inc("server_sheds", tenant=tenant)
        self.journal.record("server_shed", tenant=tenant)

    def record_dedup(self, key: str, waiters: int) -> None:
        """One single-flight join: ``waiters`` requests shared a leader's
        execution instead of mining themselves."""
        if not self.enabled:
            return
        self.metrics.inc("flight_dedup_hits", waiters)
        self.journal.record("flight_dedup", key=key[:16], waiters=waiters)

    def record_coalesce(self, dataset_fp: str, width: int) -> None:
        """One coalesced dispatch of ``width`` distinct in-flight queries
        as a single shared-scan batch."""
        if not self.enabled:
            return
        self.metrics.inc("coalesced_batches")
        self.metrics.observe("coalesce_width", width)
        self.journal.record(
            "server_coalesce", dataset=dataset_fp[:16], width=width
        )

    def set_queue_depth(self, depth: int) -> None:
        """Point-in-time depth of the server's bounded work queue."""
        if not self.enabled:
            return
        self.metrics.set_gauge("server_queue_depth", depth)

    # ------------------------------------------------------------------
    # Fault tolerance (docs/fault-tolerance.md)
    # ------------------------------------------------------------------
    def record_disk_error(self, op: str, error: str, state: str) -> None:
        """One absorbed disk-tier I/O failure (after its own retries)."""
        if not self.enabled:
            return
        self.metrics.inc("disk_errors", op=op)
        self.journal.record(
            "disk_error", op=op, error=error[:120], breaker=state
        )

    def record_disk_transition(self, new_state: str, old_state: str) -> None:
        """The disk-tier circuit breaker changed state."""
        if not self.enabled:
            return
        self.metrics.set_gauge(
            "disk_breaker_open", 0.0 if new_state == "closed" else 1.0
        )
        if new_state == "closed":
            self.journal.record("disk_recovered", from_state=old_state)
        elif new_state == "open":
            self.journal.record("disk_degraded", from_state=old_state)

    def record_quarantine(self, path: str, reason: str) -> None:
        """One corrupt disk artifact renamed aside (never re-read)."""
        if not self.enabled:
            return
        self.metrics.inc("quarantined")
        self.journal.record(
            "result_quarantine",
            file=path.rsplit("/", 1)[-1][:48],
            reason=reason[:120],
        )

    def record_refresh_fallback(self, domain_fp: str, reason: str) -> None:
        """One skeleton whose delta refresh failed and was dropped (its
        queries fall back to cold rebuilds)."""
        if not self.enabled:
            return
        self.metrics.inc("refresh_fallbacks")
        self.journal.record(
            "refresh_fallback", domain=domain_fp[:16], reason=reason[:120]
        )

    def record_checkpoint_degraded(self, failures: int) -> None:
        """A run downgraded to checkpoint-less execution."""
        if not self.enabled:
            return
        self.metrics.inc("checkpoint_degradations")
        self.journal.record("checkpoint_degraded", failures=failures)

    # ------------------------------------------------------------------
    # Skeleton tier
    # ------------------------------------------------------------------
    def record_skeleton_build(
        self, domain_fp: str, seconds: float, nbytes: int
    ) -> None:
        if not self.enabled:
            return
        self.metrics.observe("skeleton_build_seconds", seconds)
        self.journal.record(
            "skeleton_store", domain=domain_fp[:16], nbytes=nbytes,
            seconds=round(seconds, 6),
        )

    def record_skeleton_reuse(self, domain_fp: str) -> None:
        if not self.enabled:
            return
        self.journal.record("skeleton_hit", domain=domain_fp[:16])

    # ------------------------------------------------------------------
    # Batches, deltas, sweeps, clears
    # ------------------------------------------------------------------
    def record_batch(
        self,
        n_queries: int,
        build_seconds: float,
        sources: Dict[str, int],
        wall_seconds: float,
    ) -> None:
        if not self.enabled:
            return
        self.metrics.inc("batches")
        self.metrics.inc("batch_queries", n_queries)
        self.metrics.observe("batch_seconds", wall_seconds)
        if build_seconds:
            self.metrics.observe("batch_skeleton_build_seconds", build_seconds)
        self.journal.record(
            "batch_execute",
            queries=n_queries,
            skeleton_build_seconds=round(build_seconds, 6),
            wall_seconds=round(wall_seconds, 6),
            sources=dict(sorted(sources.items())),
        )

    def record_delta(self, report: Any) -> None:
        """One :meth:`QueryService.apply_delta` maintenance pass."""
        if not self.enabled:
            return
        self.metrics.inc("deltas_applied")
        self.metrics.observe("delta_apply_seconds", report.wall_seconds)
        for stats in getattr(report, "refreshes", ()):
            self.metrics.observe("skeleton_refresh_seconds", stats.seconds)
        self.journal.record(
            "delta_refresh",
            base=report.base_fingerprint[:16],
            new=report.new_fingerprint[:16],
            skeletons_refreshed=report.skeletons_refreshed,
            skeletons_dropped=report.skeletons_dropped,
            results_invalidated=report.results_invalidated,
            wall_seconds=round(report.wall_seconds, 6),
        )

    def record_sweep(self, dataset_fp: str, removed: int) -> None:
        if not self.enabled:
            return
        if removed:
            self.metrics.inc("disk_swept", removed)
        self.journal.record(
            "disk_sweep", dataset=dataset_fp[:16], removed=removed
        )

    def record_clear(self, removed: int) -> None:
        if not self.enabled:
            return
        self.journal.record("service_clear", removed=removed)

    # ------------------------------------------------------------------
    # Cache departure events (wired as LRUCache.on_event)
    # ------------------------------------------------------------------
    def cache_event_hook(
        self, tier: str
    ) -> Callable[[str, str, Any], None]:
        """The ``on_event`` callback for one cache tier (``result`` or
        ``skeleton``): journals the departure and feeds the
        eviction-age histogram/gauge."""

        kind_map = {
            "evict": f"{tier}_evict",
            "replace": f"{tier}_evict",
            "expire": f"{tier}_expire",
            "invalidate": f"{tier}_invalidate",
        }

        def hook(event: str, key: str, entry: Any) -> None:
            if not self.enabled:
                return
            age = max(0.0, self.clock() - entry.stored_at)
            if event in ("evict", "expire", "replace"):
                self.metrics.observe("eviction_age_seconds", age, tier=tier)
                self.metrics.set_gauge(
                    "last_eviction_age_seconds", age, tier=tier
                )
            fields: Dict[str, Any] = {
                "key": key[:16],
                "age_seconds": round(age, 6),
                "nbytes": entry.nbytes,
            }
            if event == "replace":
                fields["reason"] = "replace"
            self.journal.record(kind_map[event], **fields)

        return hook

    # ------------------------------------------------------------------
    # Gauges / roll-ups
    # ------------------------------------------------------------------
    def update_cache_gauges(
        self,
        stats: Any,
        result_entries: int,
        result_capacity: int,
        skeleton_entries: int,
        skeleton_capacity: int,
    ) -> None:
        """Refresh point-in-time cache gauges from the shared stats."""
        if not self.enabled:
            return
        self.metrics.set_gauge("cache_hit_ratio", round(stats.hit_rate, 6))
        self.metrics.set_gauge("cache_bytes_held", stats.bytes_held)
        self.metrics.set_gauge("cache_entries", result_entries, tier="result")
        self.metrics.set_gauge(
            "cache_entries", skeleton_entries, tier="skeleton"
        )
        self.metrics.set_gauge(
            "cache_occupancy",
            round(result_entries / result_capacity, 6),
            tier="result",
        )
        self.metrics.set_gauge(
            "cache_occupancy",
            round(skeleton_entries / skeleton_capacity, 6),
            tier="skeleton",
        )

    def merge_run(self, registry: Optional[MetricsRegistry]) -> None:
        """Fold one run's metrics registry into the lifetime registry
        (counters add, gauges last-write, histograms merge)."""
        if not self.enabled or registry is None:
            return
        if not getattr(registry, "enabled", False):
            return  # NULL_METRICS
        self.metrics.merge(registry)
        self.runs_merged += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def outcome_latencies(self) -> Dict[str, Dict[str, float]]:
        """Per-outcome latency summaries (only outcomes actually seen)."""
        out: Dict[str, Dict[str, float]] = {}
        for outcome in SERVE_OUTCOMES:
            hist = self.metrics.histogram("serve_seconds", outcome=outcome)
            if hist is not None and hist.count:
                out[outcome] = hist.as_dict()
        return out

    def snapshot(self, stats: Any = None) -> Dict[str, Any]:
        """The serializable telemetry document (run-report v5's
        ``telemetry`` block; ``repro stats`` input)."""
        document: Dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA,
            "version": TELEMETRY_VERSION,
            "enabled": self.enabled,
            "uptime_seconds": round(self.clock() - self.started_at, 6),
            "runs_merged": self.runs_merged,
            "outcomes": self.outcome_latencies(),
            "metrics": self.metrics.to_state(),
            "journal": self.journal.snapshot(),
        }
        if stats is not None:
            document["cache"] = stats.as_dict()
        return document

    def write(self, path: str, stats: Any = None) -> str:
        """Write :meth:`snapshot` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(stats=stats), handle, indent=2)
            handle.write("\n")
        return path

    def to_prometheus(self) -> str:
        """The lifetime registry in Prometheus text exposition format."""
        return render_prometheus(self.metrics)


class _NullTelemetry:
    """Inert telemetry: the ``QueryService(telemetry=False)`` path."""

    enabled = False
    metrics = MetricsRegistry()  # never written (every recorder returns)
    journal = NULL_JOURNAL
    runs_merged = 0

    def record_serve(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_lookup(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_store(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_guard_trip(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_admit(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_reject(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_shed(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_dedup(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_coalesce(self, *args: Any, **kwargs: Any) -> None:
        return None

    def set_queue_depth(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_disk_error(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_disk_transition(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_quarantine(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_refresh_fallback(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_checkpoint_degraded(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_skeleton_build(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_skeleton_reuse(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_batch(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_delta(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_sweep(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_clear(self, *args: Any, **kwargs: Any) -> None:
        return None

    def cache_event_hook(self, tier: str) -> None:
        return None  # LRUCache treats a None on_event as "no hook"

    def update_cache_gauges(self, *args: Any, **kwargs: Any) -> None:
        return None

    def merge_run(self, registry: Any) -> None:
        return None

    def outcome_latencies(self) -> Dict[str, Any]:
        return {}

    def snapshot(self, stats: Any = None) -> Dict[str, Any]:
        return {
            "schema": TELEMETRY_SCHEMA,
            "version": TELEMETRY_VERSION,
            "enabled": False,
            "uptime_seconds": 0.0,
            "runs_merged": 0,
            "outcomes": {},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "journal": NULL_JOURNAL.snapshot(),
        }

    def write(self, path: str, stats: Any = None) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(stats=stats), handle, indent=2)
            handle.write("\n")
        return path

    def to_prometheus(self) -> str:
        return ""


NULL_TELEMETRY = _NullTelemetry()


def resolve_telemetry(
    telemetry: Any,
    journal_path: Optional[str] = None,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Normalize ``QueryService``'s ``telemetry`` argument.

    ``None``/``True`` → a fresh enabled :class:`ServiceTelemetry`;
    ``False`` → :data:`NULL_TELEMETRY`; an existing telemetry object
    passes through (shared across services if the caller wants).
    """
    if telemetry is False:
        return NULL_TELEMETRY
    if telemetry is None or telemetry is True:
        return ServiceTelemetry(journal_path=journal_path, clock=clock)
    return telemetry
