"""Threaded load-replay client for the query server.

Drives a running :mod:`repro.serve.server` instance from many client
threads (persistent HTTP/1.1 connections, one per thread), collects
per-request latencies and serving metadata, and aggregates them into a
:class:`ReplayReport` — the shape the load benchmark publishes through
the perf-trend gate.

The ``verify_cold`` pass is the serving layer's ground-truth check:
after the replay, every *unique* (query, options) pair that produced a
complete answer is re-executed cold — single-threaded
``CFQOptimizer.execute`` on a fresh engine, no caches, no skeletons, no
coalescing — and the served ``answer`` documents are compared
byte-for-byte against the cold one.  Any divergence is a serving bug by
definition (the concurrency machinery must be answer-invisible).
"""

from __future__ import annotations

import http.client
import json
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlparse

from repro.core.cfq_parser import parse_cfq
from repro.core.optimizer import CFQOptimizer
from repro.errors import ExecutionError
from repro.serve.server import answer_document


def query_text(cfq) -> str:
    """Render a CFQ as request text that re-parses to the same query.

    ``str(cfq)`` drops the support thresholds (they live beside the
    constraint list on the object), so explicit ``freq(var, threshold)``
    atoms are prepended; :func:`parse_cfq` folds them back into
    per-variable minsup and the fingerprints round-trip exactly.
    """
    atoms = [f"freq({var}, {cfq.minsup_for(var)!r})" for var in cfq.variables]
    body = " & ".join(atoms + [str(c) for c in cfq.parsed])
    variables = ", ".join(cfq.variables)
    return f"{{({variables}) | {body}}}"


@dataclass
class ReplayOutcome:
    """One request's round trip."""

    index: int
    request: Dict[str, Any]
    status: int
    body: Dict[str, Any]
    latency_seconds: float

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass
class ReplayReport:
    """Aggregates of one replay run (latencies in seconds)."""

    n_requests: int
    n_ok: int
    n_rejected: int          # 4xx admission outcomes (rate limit, bad request)
    n_shed: int              # 503 queue-full
    n_errors: int            # 5xx / transport failures
    n_partial: int           # 200s with a guard-tripped partial answer
    wall_seconds: float
    qps: float
    p50: float
    p95: float
    p99: float
    dedup_responses: int     # responses served off another request's flight
    coalesce_max_width: int
    coalesce_widths: Dict[int, int] = field(default_factory=dict)
    sources: Dict[str, int] = field(default_factory=dict)
    verify: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        document = {
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_shed": self.n_shed,
            "n_errors": self.n_errors,
            "n_partial": self.n_partial,
            "wall_seconds": round(self.wall_seconds, 4),
            "qps": round(self.qps, 2),
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
            "dedup_responses": self.dedup_responses,
            "coalesce_max_width": self.coalesce_max_width,
            "coalesce_widths": {
                str(k): v for k, v in sorted(self.coalesce_widths.items())
            },
            "sources": dict(sorted(self.sources.items())),
        }
        if self.verify is not None:
            document["verify"] = self.verify
        return document


class _Connection:
    """A persistent HTTP/1.1 connection to the server (per thread)."""

    def __init__(self, url: str, timeout: float):
        parsed = urlparse(url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ExecutionError(f"replay needs an http:// URL, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def post(self, path: str, document: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        payload = json.dumps(document)
        for attempt in (0, 1):  # one reconnect on a dropped keep-alive
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
                self._conn.connect()
                # Mirror the server's NODELAY: the request is a couple
                # of small writes and a Nagle stall per POST dwarfs
                # warm serving latency.
                self._conn.sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            try:
                self._conn.request(
                    "POST", path, body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = self._conn.getresponse()
                body = json.loads(response.read().decode("utf-8"))
                return response.status, body
            except (http.client.HTTPException, OSError, ValueError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


def replay(
    url: str,
    requests: Sequence[Dict[str, Any]],
    threads: int = 8,
    timeout: float = 60.0,
) -> List[ReplayOutcome]:
    """POST every request document from ``threads`` client threads.

    Requests are fed through a shared queue — arrival order is the
    sequence order, completion order is whatever concurrency yields.
    Transport failures become status ``599`` outcomes rather than
    exceptions so one flaky socket doesn't void a load run.
    """
    if threads < 1:
        raise ExecutionError(f"threads must be >= 1, got {threads}")
    work: "queue.Queue" = queue.Queue()
    for index, request in enumerate(requests):
        work.put((index, request))
    outcomes: List[Optional[ReplayOutcome]] = [None] * len(requests)

    def worker() -> None:
        connection = _Connection(url, timeout)
        try:
            while True:
                try:
                    index, request = work.get_nowait()
                except queue.Empty:
                    return
                start = time.perf_counter()
                try:
                    status, body = connection.post("/query", request)
                except Exception as exc:
                    status, body = 599, {
                        "code": "transport",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                outcomes[index] = ReplayOutcome(
                    index=index,
                    request=request,
                    status=status,
                    body=body,
                    latency_seconds=time.perf_counter() - start,
                )
        finally:
            connection.close()

    pool = [
        threading.Thread(target=worker, name=f"replay-{i}", daemon=True)
        for i in range(min(threads, max(len(requests), 1)))
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]


def _percentile(latencies: List[float], fraction: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def summarize(
    outcomes: Sequence[ReplayOutcome], wall_seconds: float
) -> ReplayReport:
    """Fold raw outcomes into the benchmark-facing report."""
    latencies = [o.latency_seconds for o in outcomes]
    n_ok = n_rejected = n_shed = n_errors = n_partial = dedup = 0
    widths: Dict[int, int] = {}
    sources: Dict[str, int] = {}
    for outcome in outcomes:
        if outcome.status == 200:
            n_ok += 1
            serving = outcome.body.get("serving", {})
            if serving.get("dedup"):
                dedup += 1
            width = int(serving.get("coalesced_width", 1))
            widths[width] = widths.get(width, 0) + 1
            source = serving.get("source", "unknown")
            sources[source] = sources.get(source, 0) + 1
            if outcome.body.get("answer", {}).get("status") == "partial":
                n_partial += 1
        elif outcome.status == 503:
            n_shed += 1
        elif 400 <= outcome.status < 500:
            n_rejected += 1
        else:
            n_errors += 1
    return ReplayReport(
        n_requests=len(outcomes),
        n_ok=n_ok,
        n_rejected=n_rejected,
        n_shed=n_shed,
        n_errors=n_errors,
        n_partial=n_partial,
        wall_seconds=wall_seconds,
        qps=(len(outcomes) / wall_seconds) if wall_seconds > 0 else 0.0,
        p50=_percentile(latencies, 0.50),
        p95=_percentile(latencies, 0.95),
        p99=_percentile(latencies, 0.99),
        dedup_responses=dedup,
        coalesce_max_width=max(widths, default=1),
        coalesce_widths=widths,
        sources=sources,
    )


def verify_cold(
    outcomes: Sequence[ReplayOutcome],
    db,
    domains: Dict[str, Any],
    default_minsup: float = 0.02,
    backend=None,
) -> Dict[str, Any]:
    """Ground-truth every served answer against a cold re-execution.

    Each unique (query text, options) pair with at least one complete
    200 response is parsed and executed once on a bare
    ``CFQOptimizer`` — no service, no caches, no concurrency — and its
    :func:`~repro.serve.server.answer_document` (JSON-normalized, so
    tuple/list and float spellings match the wire form) must equal every
    served ``answer`` bearing that pair.  Partial servings are checked
    for *status honesty* only (they self-identify; their truncated
    answer legitimately differs from the complete cold one).
    """
    groups: Dict[str, List[ReplayOutcome]] = {}
    for outcome in outcomes:
        if outcome.status != 200:
            continue
        request = outcome.request
        signature = json.dumps(
            {
                "query": request.get("query"),
                "minsup": request.get("minsup", default_minsup),
                "options": request.get("options") or {},
            },
            sort_keys=True,
        )
        groups.setdefault(signature, []).append(outcome)

    mismatches: List[Dict[str, Any]] = []
    checked = 0
    for signature, members in groups.items():
        spec = json.loads(signature)
        complete = [
            m for m in members
            if m.body["answer"].get("status") == "complete"
        ]
        if not complete:
            continue
        cfq = parse_cfq(
            spec["query"], domains, default_minsup=float(spec["minsup"])
        )
        cold = CFQOptimizer(cfq).execute(db, backend=backend, **spec["options"])
        oracle = json.loads(json.dumps(answer_document(cold)))
        for member in complete:
            checked += 1
            if member.body["answer"] != oracle:
                mismatches.append(
                    {
                        "index": member.index,
                        "query": spec["query"],
                        "served_counters": member.body["answer"].get("counters"),
                        "cold_counters": oracle.get("counters"),
                    }
                )
    return {
        "checked": checked,
        "unique_queries": len(groups),
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def session_requests(
    workload,
    n_requests: int,
    tenants: Sequence[str] = ("alice", "bob", "carol"),
    steps: int = 4,
    relax: float = 0.5,
    min_step: int = 0,
) -> List[Dict[str, Any]]:
    """The benchmark workload: interleaved refinement sessions.

    Cycles ``n_requests`` requests over a ``steps``-query refinement
    session (see :func:`repro.datagen.workloads.refinement_queries`)
    and the tenant ring — many tenants concurrently asking overlapping
    session queries, which is exactly the shape single-flight dedup and
    dataset coalescing are built for.

    ``min_step`` drops the session's first (broadest) queries: step 0
    applies one constraint at the most relaxed threshold and its answer
    can run to megabytes of pairs, which measures payload shuffling
    rather than serving — load runs typically start at step 1.
    """
    from repro.datagen.workloads import refinement_queries

    session = refinement_queries(workload, steps=steps, relax=relax)[min_step:]
    if not session:
        raise ExecutionError(
            f"min_step {min_step} leaves no queries of a {steps}-step session"
        )
    texts = [query_text(cfq) for cfq in session]
    return [
        {
            "query": texts[i % len(texts)],
            "tenant": tenants[i % len(tenants)],
        }
        for i in range(n_requests)
    ]
