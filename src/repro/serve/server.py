"""The multi-tenant concurrent query server.

This is the ROADMAP's "library → service" step: a threaded, stdlib-only
HTTP/JSON front-end over :class:`~repro.serve.service.QueryService`
that applies the paper's shared-scan argument *across users* instead of
within one session.  Layered (request → response):

1. **Admission** (:mod:`repro.serve.admission`): per-tenant token
   buckets (429), per-tenant :class:`~repro.runtime.guard.RunGuard`
   budgets, a bounded global queue with load shedding (503), and
   unknown-tenant rejection (403).
2. **Warm fast path**: a query already in the memory result tier is
   served directly (:meth:`QueryService.is_warm` → ``execute``) —
   sub-millisecond, no flight/coalescer bookkeeping.
3. **Single-flight** (:class:`~repro.serve.flight.SingleFlight`): N
   concurrent *identical* queries (same
   :func:`~repro.serve.fingerprint.result_key`) elect one leader; the
   others wait for its published response — guard-tripped partials and
   degraded servings propagate to every waiter, and partials are never
   cached, so a tripped leader cannot poison anyone.
4. **Coalescing** (:class:`~repro.serve.flight.Coalescer`): leaders on
   the same *dataset* fingerprint arriving within the admission window
   dispatch as one shared-scan
   :meth:`~repro.serve.service.QueryService.execute_batch`; a group of
   one falls back to singleton execution.

Every response's ``answer`` block is **bit-identical** to a cold
single-threaded ``CFQOptimizer.execute`` of the same query (the
concurrency test battery proves it); the ``serving`` block carries the
metadata that may legitimately differ (source, dedup, coalesce width,
timings).

**Lock order** (acquire strictly downward; document new locks here and
in ``docs/server.md``):

* level 0 — server structures: flight table, coalescer, the server's
  own state lock (queue depth, dataset swap);
* level 1 — ``LRUCache`` tier locks (result / skeleton / matrix);
* level 2 — ``CacheStats`` lock, ``MetricsRegistry`` lock;
* level 3 — ``EventJournal`` lock.

No lock is ever held across query execution; levels 2–3 are leaf locks
(code holding them calls nothing that locks).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.cfq_parser import parse_cfq
from repro.core.optimizer import CFQResult
from repro.errors import ExecutionError, ReproError
from repro.serve.admission import (
    TenantProfile,
    TenantRegistry,
    error_body,
)
from repro.serve.fingerprint import (
    RESULT_OPTIONS,
    dataset_fingerprint,
    query_fingerprint,
    result_key,
)
from repro.serve.cache import LRUCache
from repro.serve.flight import Coalescer, SingleFlight
from repro.serve.service import QueryService

SERVER_SCHEMA = "repro.serve.server"
SERVER_VERSION = 1

#: The answer-bearing counter fields every serving must reproduce
#: bit-identically to a cold run (scans/subset_tests/tuples_read are
#: the database-pass meters a skeleton-served run legitimately skips —
#: the same split the serving differential suite draws).
ANSWER_COUNTERS = (
    "sets_counted",
    "constraint_checks_singleton",
    "constraint_checks_larger",
    "pair_checks",
)

#: Request fields accepted by POST /query.
_REQUEST_FIELDS = frozenset({"query", "tenant", "minsup", "options"})


def answer_document(result: CFQResult) -> Dict[str, Any]:
    """The canonical, bit-comparable answer block for one result.

    Everything answer-bearing, orders made explicit: per-variable
    frequent valid sets with supports in dict insertion order, the full
    valid pair list (complete runs only — a partial run's pair phase
    never ran cold either), ``J^k_max`` bound histories, and the
    answer-bearing counter subset.  Two runs of the same query agree on
    this document byte-for-byte iff they agree on the paper's answer.
    """
    counters = result.counters.as_dict()
    document: Dict[str, Any] = {
        "query": str(result.cfq),
        "status": result.status,
        "frequent_valid": {
            var: [
                [list(items), support]
                for items, support in result.frequent_valid(var).items()
            ]
            for var in result.cfq.variables
        },
        "bound_histories": {
            key: [[int(k), float(bound)] for k, bound in history]
            for key, history in result.raw.bound_histories.items()
        },
        "counters": {name: counters[name] for name in ANSWER_COUNTERS},
    }
    if len(result.cfq.variables) == 2 and not result.is_partial:
        document["pairs"] = [
            [list(s), list(t)] for s, t in result.pairs()
        ]
    return document


class _Request:
    """One admitted query, parsed and fingerprinted."""

    __slots__ = (
        "cfq", "options", "defaulted", "tenant", "profile", "key", "query_fp",
    )

    def __init__(self, cfq, options, defaulted, tenant, profile, key, query_fp):
        self.cfq = cfq
        self.options = options
        #: Options with optimizer defaults filled in — the coalescing
        #: group key includes these: ``execute_batch`` runs one shared
        #: options dict, so only requests agreeing on every engine
        #: option may share a batch (counters are answer-bearing and
        #: option-dependent).
        self.defaulted = defaulted
        self.tenant = tenant
        self.profile = profile
        self.key = key
        self.query_fp = query_fp


class QueryServer:
    """The HTTP-agnostic serving core (the handler below is a shim).

    Parameters
    ----------
    service:
        The (thread-safe) :class:`QueryService` to serve through.
    db / domains:
        The dataset and the domain table queries are parsed against.
        :meth:`apply_delta` swaps the dataset under churn.
    tenants:
        The admission table; defaults to an open registry (one
        permissive shared bucket).
    window_seconds / max_width:
        Coalescing admission window and group cap
        (:class:`Coalescer`); ``window_seconds=0`` disables coalescing.
    queue_limit:
        Bound on concurrently admitted (executing + coalescing)
        requests; arrivals beyond it are shed with 503.
    doc_cache_entries:
        Capacity of the rendered-response cache.  Broad queries can
        carry answers in the megabytes (hundreds of thousands of
        pairs); rendering and serializing one takes ~1s, so repeats
        are served from a content-addressed cache of the finished
        ``answer`` document and its JSON bytes.  Safe by construction:
        the key is the full :func:`result_key` (dataset + query +
        options), and only complete answers are cached.
    default_minsup:
        Support threshold for queries that set none.
    backend:
        Counting backend handed to every execution.
    """

    def __init__(
        self,
        service: QueryService,
        db,
        domains: Dict[str, Any],
        tenants: Optional[TenantRegistry] = None,
        window_seconds: float = 0.004,
        max_width: int = 16,
        queue_limit: int = 64,
        default_minsup: float = 0.02,
        backend=None,
        doc_cache_entries: int = 128,
        clock: Callable[[], float] = time.monotonic,
    ):
        if queue_limit < 1:
            raise ExecutionError(f"queue_limit must be >= 1, got {queue_limit}")
        self.service = service
        self.domains = dict(domains)
        self.tenants = (
            tenants
            if tenants is not None
            else TenantRegistry.open_registry(clock=clock)
        )
        self.flights = SingleFlight()
        self.coalescer = Coalescer(
            window_seconds=window_seconds, max_width=max_width, clock=clock
        )
        self.queue_limit = queue_limit
        self.default_minsup = default_minsup
        self.backend = backend
        # Rendered (answer_dict, answer_json) pairs by result key; the
        # values are immutable by convention — every reader shares them.
        self._docs = LRUCache(max_entries=doc_cache_entries)
        self.clock = clock
        self._db = db
        self._state_lock = threading.Lock()
        self._queue_depth = 0
        self.started_at = clock()

    # ------------------------------------------------------------------
    # Dataset (swapped under churn)
    # ------------------------------------------------------------------
    @property
    def db(self):
        with self._state_lock:
            return self._db

    def apply_delta(self, new_db, delta, **kwargs) -> Any:
        """Migrate the service's cache tiers across a dataset delta and
        make ``new_db`` the served dataset.  In-flight queries keep the
        immutable snapshot they were admitted with — their answers stay
        correct for that version, and content-addressed keys mean a
        stale store can never serve the new fingerprint."""
        report = self.service.apply_delta(new_db, delta, **kwargs)
        with self._state_lock:
            self._db = new_db
        return report

    # ------------------------------------------------------------------
    # Queue accounting
    # ------------------------------------------------------------------
    def _enter_queue(self) -> bool:
        with self._state_lock:
            if self._queue_depth >= self.queue_limit:
                return False
            self._queue_depth += 1
            depth = self._queue_depth
        self.service.telemetry.set_queue_depth(depth)
        return True

    def _leave_queue(self) -> None:
        with self._state_lock:
            self._queue_depth -= 1
            depth = self._queue_depth
        self.service.telemetry.set_queue_depth(depth)

    @property
    def queue_depth(self) -> int:
        with self._state_lock:
            return self._queue_depth

    # ------------------------------------------------------------------
    # The request pipeline
    # ------------------------------------------------------------------
    def handle_query(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """One POST /query: admission → parse → execute → document.

        Returns ``(http_status, json_body)`` and never raises: every
        failure mode maps to a schema'd error body.
        """
        telemetry = self.service.telemetry
        if not isinstance(payload, dict):
            return 400, error_body(400, "bad_request", "body must be a JSON object")
        tenant = payload.get("tenant", "anonymous")
        if not isinstance(tenant, str) or not tenant:
            return 400, error_body(400, "bad_request", "tenant must be a non-empty string")

        # -- admission: tenant → rate limit → bounded queue ------------
        profile = self.tenants.resolve(tenant)
        if profile is None:
            telemetry.record_reject(tenant, "unknown_tenant")
            return 403, error_body(
                403, "unknown_tenant",
                f"tenant {tenant!r} has no profile and the server has no default",
                tenant=tenant,
            )
        bucket = self.tenants.bucket(tenant)
        if bucket is not None and not bucket.allow():
            telemetry.record_reject(tenant, "rate_limit")
            return 429, error_body(
                429, "rate_limit",
                f"tenant {tenant!r} is over its rate limit",
                tenant=tenant,
                retry_after_seconds=bucket.retry_after(),
            )
        if not self._enter_queue():
            telemetry.record_shed(tenant)
            return 503, error_body(
                503, "queue_full",
                f"server queue is full ({self.queue_limit} in flight)",
                tenant=tenant,
            )
        try:
            parsed = self._parse(payload, tenant, profile)
            if isinstance(parsed, tuple):  # (status, error body)
                telemetry.record_reject(tenant, "bad_request")
                return parsed
            telemetry.record_admit(tenant, parsed.query_fp)
            return self._execute(parsed)
        except ReproError as exc:
            return 500, error_body(500, "internal", str(exc), tenant=tenant)
        except Exception as exc:  # pragma: no cover - defense in depth
            return 500, error_body(
                500, "internal", f"{type(exc).__name__}: {exc}", tenant=tenant
            )
        finally:
            self._leave_queue()

    def _parse(self, payload: Dict[str, Any], tenant: str, profile: TenantProfile):
        unknown = set(payload) - _REQUEST_FIELDS
        if unknown:
            return 400, error_body(
                400, "bad_request",
                f"unknown request fields: {sorted(unknown)}", tenant=tenant,
            )
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            return 400, error_body(
                400, "bad_request", 'missing "query" text', tenant=tenant
            )
        minsup = payload.get("minsup", self.default_minsup)
        if not isinstance(minsup, (int, float)) or not 0 < minsup <= 1:
            return 400, error_body(
                400, "bad_request",
                f"minsup must be in (0, 1], got {minsup!r}", tenant=tenant,
            )
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            return 400, error_body(
                400, "bad_request", '"options" must be an object', tenant=tenant
            )
        bad_options = set(options) - set(RESULT_OPTIONS)
        if bad_options:
            return 400, error_body(
                400, "bad_request",
                f"unknown options: {sorted(bad_options)} "
                f"(allowed: {list(RESULT_OPTIONS)})",
                tenant=tenant,
            )
        db = self.db
        try:
            cfq = parse_cfq(text, self.domains, default_minsup=float(minsup))
        except ReproError as exc:
            return 400, error_body(400, "bad_request", str(exc), tenant=tenant)
        defaulted = self.service._defaulted(
            {name: options.get(name) for name in RESULT_OPTIONS}
        )
        return _Request(
            cfq=cfq,
            options=dict(options),
            defaulted=defaulted,
            tenant=tenant,
            profile=profile,
            key=result_key(cfq, db, defaulted),
            query_fp=query_fingerprint(cfq, db),
        )

    # ------------------------------------------------------------------
    # Execution: fast path → single-flight → coalescer
    # ------------------------------------------------------------------
    def _execute(self, request: _Request) -> Tuple[int, Dict[str, Any]]:
        db = self.db
        start = time.perf_counter()
        cached = self._docs.get(request.key)
        if cached is not None:
            answer, answer_json = cached
            return 200, {
                "schema": SERVER_SCHEMA,
                "version": SERVER_VERSION,
                "answer": answer,
                "serving": {
                    "tenant": request.tenant,
                    "source": "doc-cache",
                    "path": "doc-cache",
                    "dedup": False,
                    "coalesced_width": 1,
                    "query_fingerprint": request.query_fp,
                    "result_key": request.key,
                    "wall_seconds": round(time.perf_counter() - start, 6),
                },
                "_answer_json": answer_json,
            }
        if self.service.is_warm(db, request.cfq, **request.options):
            result = self.service.execute(
                db, request.cfq, backend=self.backend, **request.options
            )
            return self._respond(request, result, start, source="fast-path")

        flight, is_leader = self.flights.begin(request.key)
        if not is_leader:
            status, body = self.flights.wait(flight)
            document = dict(body)
            serving = dict(document.get("serving", {}))
            serving["dedup"] = True
            serving["tenant"] = request.tenant
            document["serving"] = serving
            return status, document

        try:
            response = self._execute_grouped(request, db, start)
        except BaseException as exc:
            self.flights.finish(flight, error=exc)
            raise
        waiters = flight.waiters
        self.flights.finish(flight, response=response)
        if waiters:
            self.service.telemetry.record_dedup(request.key, waiters)
        return response

    def _execute_grouped(
        self, request: _Request, db, start: float
    ) -> Tuple[int, Dict[str, Any]]:
        dataset_fp = dataset_fingerprint(db)
        # Group key includes the (defaulted) engine options: the batch
        # runs one shared options dict, and counters — answer-bearing —
        # depend on them, so only option-identical requests may share.
        group_key = dataset_fp + "|" + json.dumps(
            request.defaulted, sort_keys=True
        )
        group, index, is_group_leader = self.coalescer.join(group_key, request)
        if not is_group_leader:
            result, width = self.coalescer.wait(group, index)
            return self._respond(
                request, result, start, source="coalesced", width=width
            )
        members: List[_Request] = self.coalescer.close_after_window(group)
        try:
            if len(members) == 1:
                single_start = time.perf_counter()
                result = self.service.execute(
                    db,
                    request.cfq,
                    backend=self.backend,
                    guard=request.profile.guard(),
                    **request.options,
                )
                self._maybe_store(
                    db, request, result, time.perf_counter() - single_start
                )
                self.coalescer.publish(group, results=[(result, 1)])
                return self._respond(request, result, start, source="single")
            # One shared-scan batch for the whole group, mined under the
            # *leader's* tenant budgets (the batch is one run; a member
            # wanting stricter budgets still gets a correct — possibly
            # partial — answer, and the partial status is visible).
            report = self.service.execute_batch(
                db,
                [member.cfq for member in members],
                backend=self.backend,
                guard=request.profile.guard(),
                **request.options,
            )
            width = len(members)
            self.service.telemetry.record_coalesce(dataset_fp, width)
            for member, item in zip(members, report.items):
                self._maybe_store(db, member, item.result, item.wall_seconds)
            results = [(item.result, width) for item in report.items]
            self.coalescer.publish(group, results=results)
            return self._respond(
                request, results[index][0], start, source="coalesced",
                width=width,
            )
        except BaseException as exc:
            self.coalescer.publish(group, error=exc)
            raise

    def _maybe_store(
        self, db, request: _Request, result: CFQResult, elapsed: float
    ) -> None:
        """Server-side caching policy: a *complete* skeleton-served
        answer goes into the result cache too.  The library leaves
        skeleton servings uncached (cheap to recompute within one
        session); under multi-tenant load the same refinement queries
        recur across tenants, and caching them turns every repeat into
        a warm fast-path hit.  Answer-invariant: a stored skeleton
        run's ANSWER_COUNTERS already equal the cold run's (the serving
        differential contract), and only ``status == "complete"``
        results are ever stored."""
        if result.status != "complete":
            return
        info = result.cache_info or {}
        if info.get("source") != "skeleton":
            return
        self.service.store(db, request.cfq, request.defaulted, result, elapsed)

    def _respond(
        self,
        request: _Request,
        result: CFQResult,
        start: float,
        source: str,
        width: int = 1,
    ) -> Tuple[int, Dict[str, Any]]:
        elapsed = time.perf_counter() - start
        info = result.cache_info or {}
        serving: Dict[str, Any] = {
            "tenant": request.tenant,
            "source": info.get("source", "cold"),
            "path": source,
            "dedup": False,
            "coalesced_width": width,
            "query_fingerprint": request.query_fp,
            "result_key": request.key,
            "wall_seconds": round(elapsed, 6),
            "counters": result.counters.as_dict(),
        }
        if result.is_partial and result.interruption is not None:
            serving["interruption"] = result.interruption.as_dict()
        body: Dict[str, Any] = {
            "schema": SERVER_SCHEMA,
            "version": SERVER_VERSION,
            "serving": serving,
        }
        if result.is_partial:
            # Partials are honest but transient — never cached, so the
            # next identical request re-runs under its own budgets.
            body["answer"] = answer_document(result)
            return 200, body
        cached = self._docs.get(request.key)
        if cached is None:
            answer = answer_document(result)
            answer_json = json.dumps(answer)
            self._docs.put(request.key, (answer, answer_json), len(answer_json))
        else:
            answer, answer_json = cached
        body["answer"] = answer
        body["_answer_json"] = answer_json
        return 200, body

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "status": "ok",
            "uptime_seconds": round(self.clock() - self.started_at, 3),
            "queue_depth": self.queue_depth,
            "dataset": dataset_fingerprint(self.db)[:16],
        }

    def stats(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "schema": SERVER_SCHEMA,
            "version": SERVER_VERSION,
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "open_coalesce_groups": self.coalescer.open_groups(),
            "doc_cache_entries": len(self._docs),
            "telemetry": self.service.telemetry.snapshot(self.service.stats),
        }


# ----------------------------------------------------------------------
# HTTP front-end (stdlib http.server + a bounded thread pool)
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Thin shim: JSON in/out around :class:`QueryServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Response = small header writes + one body write; without NODELAY
    # the Nagle/delayed-ACK interaction stalls every keep-alive request
    # ~40ms, which swamps a sub-millisecond warm serving.
    disable_nagle_algorithm = True

    def _send(self, status: int, body: Dict[str, Any]) -> None:
        raw_answer = body.get("_answer_json")
        if raw_answer is not None:
            # Splice the pre-serialized answer (cached by result key —
            # broad answers run to megabytes) into the envelope instead
            # of re-serializing it per request.  Read-only: the body
            # dict may be shared with concurrent flight joiners.
            rest = {
                k: v
                for k, v in body.items()
                if k not in ("answer", "_answer_json")
            }
            payload = (
                json.dumps(rest)[:-1] + ',"answer":' + raw_answer + "}"
            ).encode("utf-8")
        else:
            payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        core: QueryServer = self.server.core  # type: ignore[attr-defined]
        if self.path == "/healthz":
            self._send(*core.healthz())
        elif self.path == "/stats":
            self._send(*core.stats())
        else:
            self._send(
                404, error_body(404, "bad_request", f"no route {self.path}")
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        core: QueryServer = self.server.core  # type: ignore[attr-defined]
        if self.path != "/query":
            self._send(
                404, error_body(404, "bad_request", f"no route {self.path}")
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            self._send(
                400, error_body(400, "bad_request", f"invalid JSON body: {exc}")
            )
            return
        self._send(*core.handle_query(payload))

    def log_message(self, format: str, *args: Any) -> None:
        # Request logging goes through the event journal, not stderr.
        return


class _PooledHTTPServer(HTTPServer):
    """``http.server`` with connections handled on a bounded
    :class:`ThreadPoolExecutor` instead of a thread per connection."""

    daemon_threads = True
    # 404s on unknown error-body codes aside, HTTP-level failures should
    # never kill the acceptor thread.
    allow_reuse_address = True

    def __init__(self, address, core: QueryServer, workers: int):
        super().__init__(address, _Handler)
        self.core = core
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )

    def process_request(self, request, client_address) -> None:
        self._executor.submit(self._work, request, client_address)

    def _work(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def server_close(self) -> None:
        super().server_close()
        self._executor.shutdown(wait=False)


class ServerHandle:
    """A running server: address, graceful shutdown, context manager."""

    def __init__(self, httpd: _PooledHTTPServer, thread: threading.Thread):
        self._httpd = httpd
        self._thread = thread
        self.host, self.port = httpd.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=10)
        self._httpd.server_close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def start_server(
    core: QueryServer,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 8,
) -> ServerHandle:
    """Bind, start the acceptor thread, and return a handle.

    ``port=0`` picks a free port (tests); ``workers`` bounds the
    HTTP worker pool — the serving-side queue bound is the core's
    ``queue_limit``.
    """
    httpd = _PooledHTTPServer((host, port), core, workers=workers)
    thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-serve-acceptor",
        daemon=True,
    )
    thread.start()
    return ServerHandle(httpd, thread)
