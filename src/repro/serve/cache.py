"""Bounded, TTL-aware, explicitly invalidatable caches for serving.

:class:`LRUCache` is the single cache primitive both serving tiers are
built on (full-result artifacts and frequency skeletons).  Policies:

* **bounded LRU** — at most ``max_entries`` live entries; a ``get``
  refreshes recency, a ``put`` past capacity evicts the least recently
  used entry;
* **TTL** — entries older than ``ttl_seconds`` are dropped at lookup
  time (lazy expiry: an expired entry behaves exactly like a miss, which
  is what the metamorphic suite's "TTL-expiry ≡ cold run" property
  pins down);
* **explicit invalidation** — by exact key, by predicate (the service
  invalidates every entry of one dataset fingerprint), or wholesale.

Every transition is metered on a shared
:class:`~repro.db.stats.CacheStats` (hits, misses, stores, evictions,
expirations, invalidations, bytes held), which the run report's
``cache`` block and ``--explain`` render.

Time is injected (``clock``) so tests drive TTL deterministically; the
default is :func:`time.monotonic`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.db.stats import CacheStats
from repro.errors import ExecutionError


@dataclass
class CacheEntry:
    """One cached value plus its accounting metadata."""

    value: Any
    nbytes: int
    stored_at: float
    #: Free-form grouping tag (the serving layer uses the dataset
    #: fingerprint) so invalidation can target one dataset's entries.
    tag: Optional[str] = None


class LRUCache:
    """Bounded LRU with TTL and explicit invalidation (see module doc).

    ``record_result_stats=False`` routes hit/miss accounting to the
    skeleton counters of the shared :class:`CacheStats` instead of the
    result counters, so one stats object can describe both tiers.

    ``on_event`` is an optional callback ``(event, key, entry)`` fired
    on every *departure* transition — ``"evict"`` (LRU pressure),
    ``"expire"`` (TTL), ``"replace"`` (a put over a live key), and
    ``"invalidate"`` — with the departing :class:`CacheEntry`, so the
    serving telemetry can journal which entry left and at what age.
    Lookup/store hot paths never call it.
    """

    def __init__(
        self,
        max_entries: int = 32,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[CacheStats] = None,
        record_result_stats: bool = True,
        on_event: Optional[Callable[[str, str, CacheEntry], None]] = None,
    ):
        if max_entries < 1:
            raise ExecutionError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ExecutionError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self.stats = stats if stats is not None else CacheStats()
        self._result_stats = record_result_stats
        self.on_event = on_event
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _record_hit(self) -> None:
        if self._result_stats:
            self.stats.record_hit()
        else:
            self.stats.skeleton_hits += 1

    def _record_miss(self) -> None:
        if self._result_stats:
            self.stats.record_miss()
        else:
            self.stats.skeleton_misses += 1

    def _record_store(self, nbytes: int) -> None:
        if self._result_stats:
            self.stats.record_store(nbytes)
        else:
            # Skeleton stores are counted by ``skeleton_builds`` (the
            # service meters them); only the held bytes are shared.
            self.stats.bytes_held += nbytes

    def _emit(self, event: str, key: str, entry: CacheEntry) -> None:
        if self.on_event is not None:
            self.on_event(event, key, entry)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[str]:
        return iter(list(self._entries))

    def _expired(self, entry: CacheEntry) -> bool:
        return (
            self.ttl_seconds is not None
            and self.clock() - entry.stored_at > self.ttl_seconds
        )

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry (metered)."""
        entry = self._entries.get(key)
        if entry is None:
            self._record_miss()
            return None
        if self._expired(entry):
            del self._entries[key]
            self.stats.record_eviction(entry.nbytes, expired=True)
            self._emit("expire", key, entry)
            self._record_miss()
            return None
        self._entries.move_to_end(key)
        self._record_hit()
        return entry.value

    def peek(self, key: str) -> Optional[CacheEntry]:
        """The live entry without touching recency or hit/miss stats."""
        entry = self._entries.get(key)
        if entry is None or self._expired(entry):
            return None
        return entry

    def put(self, key: str, value: Any, nbytes: int, tag: Optional[str] = None) -> None:
        """Store (or replace) an entry, evicting LRU past capacity."""
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.record_eviction(old.nbytes)
            self._emit("replace", key, old)
        self._entries[key] = CacheEntry(
            value=value, nbytes=nbytes, stored_at=self.clock(), tag=tag
        )
        self._record_store(nbytes)
        while len(self._entries) > self.max_entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.stats.record_eviction(evicted.nbytes)
            self._emit("evict", evicted_key, evicted)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry by key; returns whether it existed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.stats.record_invalidation(entry.nbytes)
        self._emit("invalidate", key, entry)
        return True

    def invalidate_tag(self, tag: str) -> int:
        """Drop every entry stored under ``tag`` (a dataset fingerprint);
        returns the number of entries removed."""
        doomed = [k for k, e in self._entries.items() if e.tag == tag]
        for key in doomed:
            entry = self._entries.pop(key)
            self.stats.record_invalidation(entry.nbytes)
            self._emit("invalidate", key, entry)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        n = len(self._entries)
        for key, entry in self._entries.items():
            self.stats.record_invalidation(entry.nbytes)
            self._emit("invalidate", key, entry)
        self._entries.clear()
        return n

    def items(self) -> Iterator[Tuple[str, CacheEntry]]:
        return iter(list(self._entries.items()))
