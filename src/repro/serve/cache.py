"""Bounded, TTL-aware, explicitly invalidatable caches for serving.

:class:`LRUCache` is the single cache primitive both serving tiers are
built on (full-result artifacts and frequency skeletons).  Policies:

* **bounded LRU** — at most ``max_entries`` live entries; a ``get``
  refreshes recency, a ``put`` past capacity evicts the least recently
  used entry;
* **TTL** — entries older than ``ttl_seconds`` are dropped at lookup
  time (lazy expiry: an expired entry behaves exactly like a miss, which
  is what the metamorphic suite's "TTL-expiry ≡ cold run" property
  pins down);
* **explicit invalidation** — by exact key, by predicate (the service
  invalidates every entry of one dataset fingerprint), or wholesale.

Every transition is metered on a shared
:class:`~repro.db.stats.CacheStats` (hits, misses, stores, evictions,
expirations, invalidations, bytes held), which the run report's
``cache`` block and ``--explain`` render.

Time is injected (``clock``) so tests drive TTL deterministically; the
default is :func:`time.monotonic`.

**Thread safety.**  Both tiers are hit concurrently by the query
server's worker threads, and an ``OrderedDict`` is not safe under
concurrent mutation (``move_to_end`` during an eviction loop corrupts
the list; check-then-act ``get``/``put`` pairs lose entries).  Every
public operation therefore holds the per-cache ``RLock``.  Lock order
(``docs/server.md``): the cache lock may be held while taking the
shared :class:`~repro.db.stats.CacheStats` lock, the telemetry
``on_event`` hook's metrics/journal locks, or neither — never the
reverse, and never another cache's lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.db.stats import CacheStats
from repro.errors import ExecutionError


@dataclass
class CacheEntry:
    """One cached value plus its accounting metadata."""

    value: Any
    nbytes: int
    stored_at: float
    #: Free-form grouping tag (the serving layer uses the dataset
    #: fingerprint) so invalidation can target one dataset's entries.
    tag: Optional[str] = None


class LRUCache:
    """Bounded LRU with TTL and explicit invalidation (see module doc).

    ``record_result_stats=False`` routes hit/miss accounting to the
    skeleton counters of the shared :class:`CacheStats` instead of the
    result counters, so one stats object can describe both tiers.

    ``on_event`` is an optional callback ``(event, key, entry)`` fired
    on every *departure* transition — ``"evict"`` (LRU pressure),
    ``"expire"`` (TTL), ``"replace"`` (a put over a live key), and
    ``"invalidate"`` — with the departing :class:`CacheEntry`, so the
    serving telemetry can journal which entry left and at what age.
    Lookup/store hot paths never call it.
    """

    def __init__(
        self,
        max_entries: int = 32,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[CacheStats] = None,
        record_result_stats: bool = True,
        on_event: Optional[Callable[[str, str, CacheEntry], None]] = None,
    ):
        if max_entries < 1:
            raise ExecutionError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ExecutionError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self.stats = stats if stats is not None else CacheStats()
        self._result_stats = record_result_stats
        self.on_event = on_event
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        # Reentrant: an on_event hook must be able to run while the
        # cache lock is held without self-deadlocking a same-thread
        # re-entry (e.g. a hook that reads len(cache)).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _record_hit(self) -> None:
        if self._result_stats:
            self.stats.record_hit()
        else:
            self.stats.bump("skeleton_hits")

    def _record_miss(self) -> None:
        if self._result_stats:
            self.stats.record_miss()
        else:
            self.stats.bump("skeleton_misses")

    def _record_store(self, nbytes: int) -> None:
        if self._result_stats:
            self.stats.record_store(nbytes)
        else:
            # Skeleton stores are counted by ``skeleton_builds`` (the
            # service meters them); only the held bytes are shared.
            self.stats.bump("bytes_held", nbytes)

    def _emit(self, event: str, key: str, entry: CacheEntry) -> None:
        if self.on_event is not None:
            self.on_event(event, key, entry)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._entries))

    def _expired(self, entry: CacheEntry) -> bool:
        return (
            self.ttl_seconds is not None
            and self.clock() - entry.stored_at > self.ttl_seconds
        )

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry (metered)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._record_miss()
                return None
            if self._expired(entry):
                del self._entries[key]
                self.stats.record_eviction(entry.nbytes, expired=True)
                self._emit("expire", key, entry)
                self._record_miss()
                return None
            self._entries.move_to_end(key)
            self._record_hit()
            return entry.value

    def peek(self, key: str) -> Optional[CacheEntry]:
        """The live entry without touching recency or hit/miss stats."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry):
                return None
            return entry

    def put(self, key: str, value: Any, nbytes: int, tag: Optional[str] = None) -> None:
        """Store (or replace) an entry, evicting LRU past capacity."""
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.record_eviction(old.nbytes)
                self._emit("replace", key, old)
            self._entries[key] = CacheEntry(
                value=value, nbytes=nbytes, stored_at=self.clock(), tag=tag
            )
            self._record_store(nbytes)
            while len(self._entries) > self.max_entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self.stats.record_eviction(evicted.nbytes)
                self._emit("evict", evicted_key, evicted)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, key: str) -> bool:
        """Drop one entry by key; returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self.stats.record_invalidation(entry.nbytes)
            self._emit("invalidate", key, entry)
            return True

    def invalidate_tag(self, tag: str) -> int:
        """Drop every entry stored under ``tag`` (a dataset fingerprint);
        returns the number of entries removed."""
        with self._lock:
            doomed = [k for k, e in self._entries.items() if e.tag == tag]
            for key in doomed:
                entry = self._entries.pop(key)
                self.stats.record_invalidation(entry.nbytes)
                self._emit("invalidate", key, entry)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            n = len(self._entries)
            for key, entry in self._entries.items():
                self.stats.record_invalidation(entry.nbytes)
                self._emit("invalidate", key, entry)
            self._entries.clear()
            return n

    def items(self) -> Iterator[Tuple[str, CacheEntry]]:
        with self._lock:
            return iter(list(self._entries.items()))


class CircuitBreaker:
    """Closed → open → half-open availability breaker for the disk tier.

    The serving layer keeps answering from memory when the disk tier
    misbehaves — but *retrying a dead disk on every request* would tax
    the hot path with syscall latency (or hanging NFS mounts) for
    nothing.  The breaker bounds that: ``failure_threshold`` consecutive
    failures **open** it, and while open every ``allow()`` is an instant
    ``False`` — the disk tier is skipped wholesale (memory-only mode).
    After ``cooldown_seconds`` the next ``allow()`` transitions to
    **half-open**: exactly one probe operation is let through; its
    success re-closes the breaker (full health), its failure re-opens it
    for another cooldown.

    Time comes from the injected ``clock`` (the service's cache clock),
    so TTL tests and the chaos harness drive recovery deterministically.
    ``on_transition(new_state, old_state)`` fires on every state change
    — the serving telemetry journals ``disk_degraded`` /
    ``disk_recovered`` from it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ExecutionError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ExecutionError(
                f"cooldown_seconds must be positive, got {cooldown_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self.on_transition = on_transition
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self.closes = 0
        self.probes = 0

    def _transition(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        if new_state == self.OPEN:
            self.opened_at = self.clock()
            self.opens += 1
        elif new_state == self.CLOSED:
            self.opened_at = None
            self.closes += 1
        if self.on_transition is not None and old != new_state:
            self.on_transition(new_state, old)

    def allow(self) -> bool:
        """Whether the guarded operation may run right now."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if (
                self.opened_at is not None
                and self.clock() - self.opened_at >= self.cooldown_seconds
            ):
                self._transition(self.HALF_OPEN)
                self.probes += 1
                return True
            return False
        # half-open: a probe is already in flight this serving; further
        # operations wait for its verdict.
        return True

    def record_success(self) -> None:
        """A guarded operation completed: half-open probes re-close."""
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A guarded operation failed (after its own retries)."""
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self._transition(self.OPEN)
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(self.OPEN)

    def snapshot(self) -> dict:
        """Serializable breaker state (telemetry snapshots, tests)."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
            "closes": self.closes,
            "probes": self.probes,
        }
