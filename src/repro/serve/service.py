"""The multi-query serving layer: fingerprinted caches + batch execution.

:class:`QueryService` answers CFQs over a dataset through three tiers,
cheapest first:

1. **result cache** — full artifacts of completed cold runs (frequent
   sets with supports in insertion order, bound histories, operation
   counters), keyed on content fingerprints of dataset × query ×
   engine options (:mod:`repro.serve.fingerprint`).  A hit rebuilds a
   bit-identical :class:`~repro.core.optimizer.CFQResult` without
   touching the database.
2. **frequency skeletons** — per (dataset, domain) unconstrained
   frequent lattices (:mod:`repro.serve.skeleton`).  A query whose
   thresholds every skeleton serves is re-executed through the *normal*
   engine with a :class:`~repro.serve.skeleton.SupportOracle`
   substituting dictionary lookups for database passes — same answers,
   no scans.  Batches exploit this tier with **shared scans**: one
   skeleton is mined per domain at the *weakest* threshold any query in
   the batch needs, then every query is served from it.
3. **cold run** — the plain optimizer; complete results are stored back
   into the result cache (partial, guard-tripped ones never are).

The service *is* the duck-typed ``cache=`` hook
:meth:`repro.core.optimizer.CFQOptimizer.execute` accepts: it
implements ``lookup``/``store`` directly, so single-query integration
is ``optimizer.execute(db, cache=service)``.

Both caches are bounded LRUs with optional TTL and explicit
invalidation (:mod:`repro.serve.cache`), metered on one shared
:class:`~repro.db.stats.CacheStats`.  An optional ``cache_dir`` adds a
disk tier under the result cache: artifacts are written atomically as
``<dataset-fp prefix>.<result key>.json`` and reloaded on memory
misses, which is what makes the CLI's warm-vs-cold smoke test work
across processes.

Every serving decision is additionally instrumented on a
process-lifetime :class:`~repro.serve.telemetry.ServiceTelemetry`
(per-outcome latency quantile histograms, cache gauges, and an event
journal); pass ``telemetry=False`` to disable it, ``journal_path=`` to
put the event journal on disk, and read it back via
``service.telemetry.snapshot()`` / ``repro stats``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.optimizer import CFQOptimizer, CFQResult
from repro.core.query import CFQ
from repro.db.delta import DatasetDelta
from repro.db.stats import CacheStats, OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import ExecutionError, RunInterrupted
from repro.obs.trace import resolve_tracer
from repro.runtime import faults
from repro.serve.delta import DeltaMaintenanceReport, refresh_skeleton
from repro.serve.artifacts import (
    parse_artifact,
    rebuild_counters,
    rebuild_result,
    serialize_result,
)
from repro.serve.cache import CircuitBreaker, LRUCache
from repro.serve.fingerprint import (
    RESULT_OPTIONS,
    dataset_fingerprint,
    domain_fingerprint,
    query_fingerprint,
    result_key,
)
from repro.serve.skeleton import (
    Skeleton,
    SupportOracle,
    build_skeleton,
    skeleton_key,
)
from repro.serve.telemetry import resolve_telemetry

#: ``execute()`` keywords that force a plain cold run outside every
#: cache tier (mirrors the optimizer's own ``cacheable`` gate).
_BYPASS_OPTIONS = ("checkpoint_dir", "resume", "keep_candidates")


@dataclass
class CacheHit:
    """What the optimizer's cache hook consumes on a lookup hit.

    ``raw`` is rebuilt fresh from the stored artifact on every hit, so
    two warm servings never share mutable state; ``counters_snapshot``
    is the cold run's full :meth:`~repro.db.stats.OpCounters.snapshot`.
    """

    raw: Any
    counters_snapshot: Dict[str, Any]
    info: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BatchItem:
    """One query's outcome within :meth:`QueryService.execute_batch`.

    ``source`` is ``"result-cache"``, ``"skeleton"``, or ``"cold"``;
    ``wall_seconds`` is this query's serving time inside the batch
    (skeleton mining is reported separately on the batch, since it is
    shared across queries).
    """

    cfq: CFQ
    result: CFQResult
    source: str
    wall_seconds: float
    query_fingerprint: str

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (the batch report's per-item row)."""
        return {
            "query": str(self.cfq),
            "query_fingerprint": self.query_fingerprint,
            "source": self.source,
            "wall_seconds": round(self.wall_seconds, 9),
            "status": getattr(self.result, "status", "complete"),
            "cache_info": self.result.cache_info,
        }


@dataclass
class BatchReport:
    """A batch's results plus the shared-scan accounting."""

    items: List[BatchItem]
    dataset_fingerprint: str
    #: Seconds spent mining skeletons for this batch (0.0 when every
    #: needed skeleton was already cached).
    skeleton_build_seconds: float
    #: Domain fingerprints whose skeleton build was interrupted by a
    #: guard; their queries fell back to cold runs.
    failed_domains: List[str] = field(default_factory=list)

    def results(self) -> List[CFQResult]:
        return [item.result for item in self.items]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary of the whole batch (items included);
        round-trips through ``json.dumps``/``loads`` unchanged."""
        return {
            "dataset_fingerprint": self.dataset_fingerprint,
            "skeleton_build_seconds": round(self.skeleton_build_seconds, 9),
            "failed_domains": list(self.failed_domains),
            "items": [item.as_dict() for item in self.items],
        }


class QueryService:
    """Fingerprint-keyed serving of CFQs (see module docstring).

    Parameters
    ----------
    max_entries / ttl_seconds:
        Result-cache bound and optional time-to-live.
    max_skeletons:
        Bound on cached frequency skeletons (their TTL is shared with
        the result cache).
    cache_dir:
        Optional directory for the persistent result tier.
    clock:
        Injectable monotonic clock driving TTL (tests pass a fake).
    telemetry:
        ``None``/``True`` builds a fresh enabled
        :class:`~repro.serve.telemetry.ServiceTelemetry`; ``False``
        disables instrumentation; an existing telemetry object is
        adopted (shareable across services).
    journal_path:
        Optional JSONL path for the telemetry event journal (rotating
        on disk); ignored when an existing telemetry object is passed.
    disk_retries / disk_backoff_seconds:
        Bounded retry for disk-tier I/O: each failed operation is
        retried up to ``disk_retries`` times with exponential backoff
        starting at ``disk_backoff_seconds`` (tests set 0).
    disk_failure_threshold / disk_cooldown_seconds:
        The disk tier's :class:`~repro.serve.cache.CircuitBreaker`:
        after ``disk_failure_threshold`` consecutive failed operations
        (each already retried) the tier is skipped wholesale
        (memory-only mode) until a half-open probe succeeds after
        ``disk_cooldown_seconds`` on the service clock.

    Degradation ladder (docs/fault-tolerance.md)
    --------------------------------------------
    Disk-tier I/O failures are **absorbed, never propagated**: a failed
    write leaves the entry memory-only, a failed read is a miss (the
    query re-mines cold — slower, bit-identical), a corrupt or
    checksum-failing artifact is *quarantined* (renamed to
    ``<name>.quarantined`` so it is never re-read) — every step counted
    (``CacheStats.disk_errors`` / ``quarantined``), journaled
    (``disk_error`` / ``result_quarantine`` / ``disk_degraded`` /
    ``disk_recovered``), and bounded by the circuit breaker.
    """

    def __init__(
        self,
        max_entries: int = 32,
        ttl_seconds: Optional[float] = None,
        max_skeletons: int = 8,
        cache_dir: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry=None,
        journal_path: Optional[str] = None,
        disk_retries: int = 1,
        disk_backoff_seconds: float = 0.05,
        disk_failure_threshold: int = 3,
        disk_cooldown_seconds: float = 30.0,
    ):
        self.stats = CacheStats()
        self.telemetry = resolve_telemetry(
            telemetry, journal_path=journal_path, clock=clock
        )
        self._results = LRUCache(
            max_entries=max_entries,
            ttl_seconds=ttl_seconds,
            clock=clock,
            stats=self.stats,
            on_event=self.telemetry.cache_event_hook("result"),
        )
        self._skeletons = LRUCache(
            max_entries=max_skeletons,
            ttl_seconds=ttl_seconds,
            clock=clock,
            stats=self.stats,
            record_result_stats=False,
            on_event=self.telemetry.cache_event_hook("skeleton"),
        )
        self.cache_dir = cache_dir
        self.disk_retries = disk_retries
        self.disk_backoff_seconds = disk_backoff_seconds
        self.disk_breaker = CircuitBreaker(
            failure_threshold=disk_failure_threshold,
            cooldown_seconds=disk_cooldown_seconds,
            clock=clock,
            on_transition=self.telemetry.record_disk_transition,
        )
        if cache_dir is not None:
            try:
                os.makedirs(cache_dir, exist_ok=True)
            except OSError as exc:
                # An uncreatable cache dir is counted like any other disk
                # failure; subsequent writes keep failing until the
                # breaker opens (memory-only mode) or the disk heals.
                self._disk_failure("mkdir", exc)

    # ------------------------------------------------------------------
    # The optimizer's cache hook (duck-typed contract)
    # ------------------------------------------------------------------
    def lookup(
        self, db: TransactionDatabase, cfq: CFQ, options: Dict[str, Any]
    ) -> Optional[CacheHit]:
        """Result-cache probe: memory first, then the disk tier.

        A TTL-expired memory entry kills its disk copy too, so "expired
        ≡ cold run" holds across tiers; a disk hit after an LRU
        eviction (or in a fresh process) repopulates memory.
        """
        key = result_key(cfq, db, options)
        dataset_fp = dataset_fingerprint(db)
        if self._results.peek(key) is not None:
            text = self._results.get(key)  # meters + recency
            if text is not None:
                self.telemetry.record_lookup(
                    "memory", key, dataset_fp, hit=True
                )
                return self._hit_from_text(text, db, cfq, tier="memory")
            # The entry expired *between* peek and get — possible when
            # the clock jumps mid-lookup.  The get metered the expiry;
            # kill the disk copy like any other TTL expiry.
            self._drop_disk(key, db)
            self.telemetry.record_lookup("memory", key, dataset_fp, hit=False)
            return None
        expired = key in self._results  # present but past TTL
        self._results.get(key)  # meters the miss (and evicts if expired)
        if expired:
            self._drop_disk(key, db)
            self.telemetry.record_lookup("memory", key, dataset_fp, hit=False)
            return None
        text = self._load_disk(key, db)
        if text is None:
            self.telemetry.record_lookup("disk", key, dataset_fp, hit=False)
            return None
        try:
            hit = self._hit_from_text(text, db, cfq, tier="disk")
        except ExecutionError as exc:
            # Corrupt on-disk artifact (torn JSON, failed checksum, a
            # short read): quarantine it and fall through to a cold run
            # — degraded, never wrong.
            self._quarantine_disk(key, db, str(exc))
            self.telemetry.record_lookup("disk", key, dataset_fp, hit=False)
            return None
        self._results.put(key, text, len(text), tag=dataset_fp)
        # The memory probe above was not a real miss: atomically convert
        # it into a hit (two separate +=/-= writes would let a
        # concurrent snapshot observe hits+misses double-counted).
        self.stats.record_disk_promotion()
        self.telemetry.record_lookup("disk", key, dataset_fp, hit=True)
        return hit

    def store(
        self,
        db: TransactionDatabase,
        cfq: CFQ,
        options: Dict[str, Any],
        result: CFQResult,
        elapsed_seconds: float,
    ) -> Dict[str, Any]:
        """Persist one completed cold run; returns its ``cache_info``.

        The optimizer only calls this for ``status == "complete"``
        results outside checkpoint/resume/keep-candidates runs, so
        every stored artifact is a full, replayable answer.
        """
        dataset_fp = dataset_fingerprint(db)
        query_fp = query_fingerprint(cfq, db)
        key = result_key(cfq, db, options)
        text = serialize_result(
            result.raw,
            result.counters,
            meta={
                "query": str(cfq),
                "dataset_fingerprint": dataset_fp,
                "query_fingerprint": query_fp,
                "options": {name: options.get(name) for name in RESULT_OPTIONS},
                "plan_signature": result.plan.signature(),
                "cold_wall_seconds": elapsed_seconds,
            },
        )
        self._results.put(key, text, len(text), tag=dataset_fp)
        self._write_disk(key, db, text)
        self.telemetry.record_store(key, dataset_fp, len(text))
        return self._info(
            "cold",
            dataset_fp,
            query_fp,
            cold_wall_seconds=elapsed_seconds,
        )

    def _hit_from_text(
        self, text: str, db: TransactionDatabase, cfq: CFQ,
        tier: str = "memory",
    ) -> CacheHit:
        # The checksum defends bytes that crossed the disk; memory-tier
        # text was serialized in-process and skips the re-hash.
        document = parse_artifact(text, verify_integrity=(tier == "disk"))
        meta = document.get("meta", {})
        return CacheHit(
            raw=rebuild_result(document),
            counters_snapshot=rebuild_counters(document),
            info=self._info(
                "result-cache",
                meta.get("dataset_fingerprint") or dataset_fingerprint(db),
                meta.get("query_fingerprint") or query_fingerprint(cfq, db),
                cold_wall_seconds=meta.get("cold_wall_seconds"),
                tier=tier,
            ),
        )

    def _info(
        self,
        source: str,
        dataset_fp: str,
        query_fp: str,
        **extra: Any,
    ) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "source": source,
            "dataset_fingerprint": dataset_fp,
            "query_fingerprint": query_fp,
            "stats": self.stats.as_dict(),
        }
        for name, value in extra.items():
            if value is not None:
                info[name] = value
        return info

    # ------------------------------------------------------------------
    # Disk tier (every operation absorbed by the degradation ladder)
    # ------------------------------------------------------------------
    def _disk_path(self, key: str, db: TransactionDatabase) -> Optional[str]:
        if self.cache_dir is None:
            return None
        # The FULL dataset fingerprint is the filename prefix: sweeps
        # match on it exactly, so artifacts of a different dataset can
        # never be caught by a truncated-prefix collision.
        return os.path.join(
            self.cache_dir, f"{dataset_fingerprint(db)}.{key}.json"
        )

    def _disk_failure(self, op: str, error: OSError) -> None:
        """Count, journal, and feed the breaker one absorbed failure."""
        self.stats.bump("disk_errors")
        self.disk_breaker.record_failure()
        self.telemetry.record_disk_error(
            op, f"{type(error).__name__}: {error}", self.disk_breaker.state
        )

    def _disk_attempts(self, op: str, attempt: Callable[[], Any]) -> Any:
        """Run one disk operation with bounded retry + backoff; raises
        the last ``OSError`` once the retries are spent."""
        last: Optional[OSError] = None
        for n in range(self.disk_retries + 1):
            if n and self.disk_backoff_seconds:
                time.sleep(self.disk_backoff_seconds * (2 ** (n - 1)))
            try:
                return attempt()
            except OSError as exc:
                last = exc
        assert last is not None
        raise last

    def _write_disk(self, key: str, db: TransactionDatabase, text: str) -> None:
        path = self._disk_path(key, db)
        if path is None or not self.disk_breaker.allow():
            return
        # Per-thread temp name: two workers storing the same key (e.g.
        # a coalesced batch racing a singleton) must not write through
        # one shared ``.tmp`` — a torn interleaving would then be
        # atomically renamed into place.  Both writers hold identical
        # bytes (the key is content-addressed), so whichever replace
        # lands last is correct.
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"

        def attempt() -> None:
            try:
                faults.fs_write_text(tmp, text, "serve.disk.write")
            except FileNotFoundError:
                # cache_dir removed out-of-band: recreate and retry once.
                os.makedirs(self.cache_dir, exist_ok=True)
                faults.fs_write_text(tmp, text, "serve.disk.write")
            faults.fs_replace(tmp, path, "serve.disk.replace")

        try:
            self._disk_attempts("write", attempt)
        except OSError as exc:
            # The entry stays memory-only; a torn temp file can never
            # shadow the real artifact (writes go tmp → atomic replace).
            try:
                os.remove(tmp)
            except OSError:
                pass
            self._disk_failure("write", exc)
            return
        self.disk_breaker.record_success()

    def _load_disk(self, key: str, db: TransactionDatabase) -> Optional[str]:
        path = self._disk_path(key, db)
        if path is None or not os.path.exists(path):
            return None
        if not self.disk_breaker.allow():
            return None

        def attempt() -> str:
            return faults.fs_read_text(path, "serve.disk.read")

        try:
            text = self._disk_attempts("read", attempt)
        except OSError as exc:
            # An unreadable artifact is a miss: the query re-mines cold.
            self._disk_failure("read", exc)
            return None
        self.disk_breaker.record_success()
        return text

    def _quarantine_disk(
        self, key: str, db: TransactionDatabase, reason: str
    ) -> None:
        """Rename a corrupt artifact aside so it is never re-read."""
        path = self._disk_path(key, db)
        if path is None:
            return
        try:
            os.replace(path, f"{path}.quarantined")
        except OSError:
            # Can't rename it either: best effort is removal; if even
            # that fails the next read hits the same corruption and
            # falls through to a cold run again — still never wrong.
            try:
                os.remove(path)
            except OSError:
                pass
        self.stats.bump("quarantined")
        self.telemetry.record_quarantine(path, reason)

    def _drop_disk(self, key: str, db: TransactionDatabase) -> None:
        path = self._disk_path(key, db)
        if path is None or not os.path.exists(path):
            return
        try:
            faults.fs_remove(path, "serve.disk.remove")
        except OSError as exc:
            # The stale artifact survives, but its content is still the
            # bit-exact answer for this key, so correctness holds; it is
            # re-dropped at the next expiry or sweep.
            self._disk_failure("remove", exc)
            return
        self.disk_breaker.record_success()

    def is_warm(self, db: TransactionDatabase, cfq: CFQ, **options: Any) -> bool:
        """Whether an identical query would be served from the *memory*
        result tier right now — a side-effect-free peek (no stats, no
        recency touch).  The query server's fast path uses this to skip
        single-flight/coalescing for already-warm queries."""
        if any(options.get(name) for name in _BYPASS_OPTIONS):
            return False
        cache_options = self._defaulted(
            {name: options.get(name) for name in RESULT_OPTIONS}
        )
        key = result_key(cfq, db, cache_options)
        return self._results.peek(key) is not None

    # ------------------------------------------------------------------
    # Single-query serving
    # ------------------------------------------------------------------
    def execute(
        self,
        db: TransactionDatabase,
        cfq: CFQ,
        counters: Optional[OpCounters] = None,
        backend=None,
        tracer=None,
        guard=None,
        **options: Any,
    ) -> CFQResult:
        """Answer one CFQ: result cache → existing skeletons → cold.

        The skeleton tier here consumes only *already cached* skeletons
        (a single query never pays a skeleton build; that is the batch
        executor's trade).  Checkpointing/resume/keep-candidates
        requests bypass every tier, matching the optimizer's gate.
        """
        tracer = resolve_tracer(tracer)
        optimizer = CFQOptimizer(cfq)
        if any(options.get(name) for name in _BYPASS_OPTIONS):
            start = time.perf_counter()
            result = optimizer.execute(
                db, counters=counters, backend=backend, tracer=tracer,
                guard=guard, cache=self, **options,
            )
            self._finish_serve(result, time.perf_counter() - start, db, cfq)
            return result
        cache_options = {name: options.get(name) for name in RESULT_OPTIONS}
        start = time.perf_counter()
        oracle = self._existing_oracle(db, cfq)
        if oracle is None:
            result = optimizer.execute(
                db, counters=counters, backend=backend, tracer=tracer,
                guard=guard, cache=self, **options,
            )
        else:
            hit = self.lookup(db, cfq, self._defaulted(cache_options))
            if hit is not None:
                tracer.event("cache.hit", query=str(cfq))
                result = self._materialize_hit(db, cfq, hit, counters, tracer)
            else:
                result = optimizer.execute(
                    db, counters=counters, backend=backend, tracer=tracer,
                    guard=guard, support_oracle=oracle, **options,
                )
                result.cache_info = self._info(
                    "skeleton",
                    dataset_fingerprint(db),
                    query_fingerprint(cfq, db),
                )
        elapsed = time.perf_counter() - start
        info = result.cache_info
        if info is not None and info.get("source") in ("result-cache", "skeleton"):
            info["warm_wall_seconds"] = elapsed
        self._finish_serve(result, elapsed, db, cfq)
        return result

    # ------------------------------------------------------------------
    # Telemetry helpers
    # ------------------------------------------------------------------
    def _serve_outcome(self, result: CFQResult, batch: bool = False) -> str:
        """Classify how one query was answered, as a telemetry label."""
        if getattr(result, "status", "complete") != "complete":
            return "partial"
        info = result.cache_info or {}
        source = info.get("source")
        if source == "result-cache":
            return "warm-disk" if info.get("tier") == "disk" else "warm-memory"
        if source == "skeleton":
            return "skeleton-batch" if batch else "skeleton"
        return "cold"

    def _finish_serve(
        self,
        result: CFQResult,
        elapsed: float,
        db: TransactionDatabase,
        cfq: CFQ,
        batch: bool = False,
    ) -> None:
        """Record one serving on the lifetime telemetry (latency
        histogram by outcome, guard trips, refreshed cache gauges)."""
        if not self.telemetry.enabled:
            return
        outcome = self._serve_outcome(result, batch=batch)
        if outcome == "partial":
            trip = getattr(result, "interruption", None)
            self.telemetry.record_guard_trip(
                query_fingerprint(cfq, db),
                getattr(trip, "reason", trip),
            )
        self.telemetry.record_serve(outcome, elapsed)
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        self.telemetry.update_cache_gauges(
            self.stats,
            len(self._results),
            self._results.max_entries,
            len(self._skeletons),
            self._skeletons.max_entries,
        )

    def _defaulted(self, cache_options: Dict[str, Any]) -> Dict[str, Any]:
        """Fill unspecified engine options with the optimizer defaults so
        ``execute(db, cfq)`` and ``optimizer.execute(db)`` share keys."""
        defaults = {
            "dovetail": True,
            "use_reduction": True,
            "use_jmax": True,
            "reduction_rounds": 1,
        }
        return {
            name: (
                cache_options[name]
                if cache_options.get(name) is not None
                else defaults[name]
            )
            for name in RESULT_OPTIONS
        }

    def _materialize_hit(
        self,
        db: TransactionDatabase,
        cfq: CFQ,
        hit: CacheHit,
        counters: Optional[OpCounters],
        tracer,
    ) -> CFQResult:
        """The optimizer's hit path, for servings the service routes
        itself (when a skeleton oracle is also in play)."""
        plan = CFQOptimizer(cfq).plan(db, tracer=tracer)
        if counters is None:
            counters = OpCounters()
        counters.restore(hit.counters_snapshot)
        raw = hit.raw
        raw.counters = counters
        return CFQResult(
            cfq=cfq,
            plan=plan,
            counters=counters,
            raw=raw,
            backend=None,
            trace=tracer if tracer.enabled else None,
            status="complete",
            cache_info=dict(hit.info),
        )

    def _existing_oracle(
        self, db: TransactionDatabase, cfq: CFQ
    ) -> Optional[SupportOracle]:
        """An oracle from already-cached skeletons, or ``None``."""
        dataset_fp = dataset_fingerprint(db)
        skeletons: Dict[str, Optional[Skeleton]] = {}
        for var in cfq.variables:
            fp = domain_fingerprint(cfq.domains[var])
            skeletons[var] = self._skeletons.get(skeleton_key(dataset_fp, fp))
        return SupportOracle.for_query(cfq, db, skeletons)

    # ------------------------------------------------------------------
    # Batch serving (shared scans)
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        db: TransactionDatabase,
        cfqs: Sequence[CFQ],
        backend=None,
        tracer=None,
        guard=None,
        **options: Any,
    ) -> BatchReport:
        """Answer a batch of CFQs over one dataset with shared scans.

        The common frequency skeleton of each domain is computed once at
        the **union of the batch's thresholds** (i.e. mined at the
        weakest ``min_count`` any query needs — a superset of every
        stronger lattice by anti-monotonicity) and each query is served
        against it with per-query filtering done by its own engine run.
        A query is answered from the result cache when possible; a
        domain whose skeleton build is guard-interrupted sends its
        queries down the cold path instead.
        """
        tracer = resolve_tracer(tracer)
        if any(options.get(name) for name in _BYPASS_OPTIONS):
            raise ValueError(
                "execute_batch does not support checkpointing, resume, or "
                "keep_candidates; run those queries individually"
            )
        cache_options = self._defaulted(
            {name: options.get(name) for name in RESULT_OPTIONS}
        )
        dataset_fp = dataset_fingerprint(db)
        batch_start = time.perf_counter()
        skeletons, build_seconds, failed = self._prepare_skeletons(
            db, cfqs, dataset_fp, backend=backend, tracer=tracer, guard=guard
        )
        items: List[BatchItem] = []
        for cfq in cfqs:
            start = time.perf_counter()
            query_fp = query_fingerprint(cfq, db)
            hit = self.lookup(db, cfq, cache_options)
            if hit is not None:
                tracer.event("cache.hit", query=str(cfq))
                result = self._materialize_hit(db, cfq, hit, None, tracer)
                source = "result-cache"
            else:
                per_var = {
                    var: skeletons.get(domain_fingerprint(cfq.domains[var]))
                    for var in cfq.variables
                }
                oracle = SupportOracle.for_query(cfq, db, per_var)
                if oracle is not None:
                    result = CFQOptimizer(cfq).execute(
                        db, backend=backend, tracer=tracer, guard=guard,
                        support_oracle=oracle, **options,
                    )
                    result.cache_info = self._info(
                        "skeleton", dataset_fp, query_fp
                    )
                    source = "skeleton"
                else:
                    result = CFQOptimizer(cfq).execute(
                        db, backend=backend, tracer=tracer, guard=guard,
                        **options,
                    )
                    source = "cold"
                    if result.status == "complete":
                        result.cache_info = self.store(
                            db, cfq, cache_options, result,
                            time.perf_counter() - start,
                        )
            elapsed = time.perf_counter() - start
            info = result.cache_info
            if info is not None and info.get("source") in (
                "result-cache", "skeleton"
            ):
                info["warm_wall_seconds"] = elapsed
            self._finish_serve(result, elapsed, db, cfq, batch=True)
            items.append(
                BatchItem(
                    cfq=cfq,
                    result=result,
                    source=source,
                    wall_seconds=elapsed,
                    query_fingerprint=query_fp,
                )
            )
        if self.telemetry.enabled:
            sources: Dict[str, int] = {}
            for item in items:
                sources[item.source] = sources.get(item.source, 0) + 1
            self.telemetry.record_batch(
                n_queries=len(items),
                build_seconds=build_seconds,
                sources=sources,
                wall_seconds=time.perf_counter() - batch_start,
            )
        return BatchReport(
            items=items,
            dataset_fingerprint=dataset_fp,
            skeleton_build_seconds=build_seconds,
            failed_domains=failed,
        )

    def prepare(
        self,
        db: TransactionDatabase,
        cfqs: Sequence[CFQ],
        backend=None,
        tracer=None,
        guard=None,
    ) -> int:
        """Warm the skeleton tier for a prospective batch; returns the
        number of skeletons now servable for it."""
        dataset_fp = dataset_fingerprint(db)
        skeletons, _, _ = self._prepare_skeletons(
            db, cfqs, dataset_fp, backend=backend,
            tracer=resolve_tracer(tracer), guard=guard,
        )
        return sum(1 for skeleton in skeletons.values() if skeleton is not None)

    def _prepare_skeletons(
        self,
        db: TransactionDatabase,
        cfqs: Sequence[CFQ],
        dataset_fp: str,
        backend=None,
        tracer=None,
        guard=None,
    ):
        """Build or reuse one skeleton per domain at the union threshold."""
        needs: Dict[str, list] = {}  # domain_fp -> [domain, weakest min_count]
        for cfq in cfqs:
            for var in cfq.variables:
                domain = cfq.domains[var]
                fp = domain_fingerprint(domain)
                min_count = db.min_count(cfq.minsup_for(var))
                if fp not in needs or min_count < needs[fp][1]:
                    needs[fp] = [domain, min_count]
        skeletons: Dict[str, Optional[Skeleton]] = {}
        failed: List[str] = []
        build_seconds = 0.0
        for fp, (domain, weakest) in needs.items():
            key = skeleton_key(dataset_fp, fp)
            cached = self._skeletons.get(key)
            if cached is not None and cached.serves(weakest):
                skeletons[fp] = cached
                self.telemetry.record_skeleton_reuse(fp)
                continue
            start = time.perf_counter()
            try:
                with tracer.span(
                    "skeleton.build",
                    domain=domain.name,
                    min_count=weakest,
                    dataset=dataset_fp[:16],
                ):
                    skeleton = build_skeleton(
                        db, domain, weakest,
                        backend=backend, guard=guard, tracer=tracer,
                    )
            except RunInterrupted:
                # A partial lattice must never serve as an oracle: leave
                # the tier untouched and let the queries run cold.
                build_seconds += time.perf_counter() - start
                skeletons[fp] = None
                failed.append(fp)
                continue
            built_seconds = time.perf_counter() - start
            build_seconds += built_seconds
            self.stats.bump("skeleton_builds")
            self._skeletons.put(key, skeleton, skeleton.nbytes, tag=dataset_fp)
            self.telemetry.record_skeleton_build(
                fp, built_seconds, skeleton.nbytes
            )
            skeletons[fp] = skeleton
        return skeletons, build_seconds, failed

    # ------------------------------------------------------------------
    # Churn: delta application
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        new_db: TransactionDatabase,
        delta: DatasetDelta,
        backend=None,
        tracer=None,
        guard=None,
    ) -> DeltaMaintenanceReport:
        """Migrate the service across one dataset delta.

        Result-cache entries of the base dataset are invalidated (both
        tiers — their fingerprints can never match the new dataset, so
        keeping them only wastes capacity), while frequency skeletons
        are **migrated**: each base-dataset skeleton is incrementally
        refreshed (:func:`~repro.serve.delta.refresh_skeleton`) at the
        rescaled threshold and re-keyed under the new fingerprint, so
        the very next query over ``new_db`` is served from the skeleton
        tier with zero database scans in the common case.  A skeleton
        whose refresh is guard-interrupted (or that cannot be refreshed)
        is dropped — never served stale; its queries fall back to cold.

        ``new_db``'s content must be the delta's ``new_digest`` — the
        service refuses a delta that does not describe the database it
        is handed, because a mis-described delta would poison every
        fingerprinted tier at once.
        """
        tracer = resolve_tracer(tracer)
        start = time.perf_counter()
        new_fp = dataset_fingerprint(new_db)
        if delta.new_digest != new_fp:
            raise ExecutionError(
                "apply_delta: the delta's new_digest "
                f"{delta.new_digest[:16]}... does not match the database "
                f"handed in ({new_fp[:16]}...)"
            )
        base_fp = delta.base_digest
        report = DeltaMaintenanceReport(
            base_fingerprint=base_fp,
            new_fingerprint=new_fp,
            delta=delta,
        )
        report.results_invalidated = self._results.invalidate_tag(base_fp)
        report.disk_invalidated = self._sweep_disk(base_fp)
        # A delta-capable counting backend (bitmap) can derive the new
        # dataset's packed matrix from the cached base one, so later
        # counting passes skip the repack.  Purely an optimization —
        # a backend without the hook just packs cold on first use.
        if backend is not None and hasattr(backend, "apply_delta"):
            backend.apply_delta(new_db.transactions, delta)
        for key, entry in self._skeletons.items():
            if entry.tag != base_fp:
                continue
            skeleton = entry.value
            with tracer.span(
                "skeleton.refresh",
                domain=skeleton.domain[:16],
                dataset=new_fp[:16],
            ):
                try:
                    refreshed, stats = refresh_skeleton(
                        skeleton, new_db, delta, guard=guard,
                    )
                except (ExecutionError, RunInterrupted, OSError) as exc:
                    # A partial or impossible refresh must never serve:
                    # drop the skeleton and let queries rebuild cold.
                    self._skeletons.invalidate(key)
                    report.skeletons_dropped += 1
                    self.telemetry.record_refresh_fallback(
                        skeleton.domain, f"{type(exc).__name__}: {exc}"
                    )
                    continue
            self._skeletons.invalidate(key)
            self._skeletons.put(
                skeleton_key(new_fp, refreshed.domain),
                refreshed,
                refreshed.nbytes,
                tag=new_fp,
            )
            self.stats.bump("skeleton_refreshes")
            report.skeletons_refreshed += 1
            report.refreshes.append(stats)
        report.wall_seconds = time.perf_counter() - start
        self.telemetry.record_delta(report)
        self._refresh_gauges()
        tracer.event(
            "delta.applied",
            added=len(delta.added),
            removed=len(delta.removed),
            skeletons_refreshed=report.skeletons_refreshed,
        )
        return report

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, db: TransactionDatabase) -> int:
        """Drop every cached artifact of one dataset, both tiers (and the
        disk copies); returns the number of entries removed."""
        dataset_fp = dataset_fingerprint(db)
        removed = self._results.invalidate_tag(dataset_fp)
        removed += self._skeletons.invalidate_tag(dataset_fp)
        self._sweep_disk(dataset_fp)
        return removed

    def _sweep_disk(self, dataset_fp: str) -> int:
        """Remove every disk artifact of one dataset fingerprint.

        Matches on the **full** fingerprint (artifact filenames are
        ``<dataset-fp>.<result key>.json``) and tolerates a cache
        directory or artifact removed out-of-band — a sweep must never
        raise over state it was asked to destroy anyway.
        """
        if self.cache_dir is None:
            return 0
        prefix = f"{dataset_fp}."
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return 0
        removed = 0
        for name in names:
            if name.startswith(prefix) and (
                name.endswith(".json") or name.endswith(".json.quarantined")
            ):
                try:
                    os.remove(os.path.join(self.cache_dir, name))
                    removed += 1
                except OSError:
                    pass
        self.telemetry.record_sweep(dataset_fp, removed)
        return removed

    def clear(self) -> int:
        """Drop both in-memory tiers (disk artifacts are kept; use
        :meth:`invalidate` for targeted disk removal)."""
        removed = self._results.clear() + self._skeletons.clear()
        self.telemetry.record_clear(removed)
        self._refresh_gauges()
        return removed
