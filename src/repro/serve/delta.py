"""Incremental skeleton maintenance under dataset churn.

:func:`refresh_skeleton` turns a cached frequency skeleton of the *base*
dataset into the skeleton a cold :func:`~repro.serve.skeleton.build_skeleton`
would mine over the *mutated* dataset — mapping-identical ``supports``
and ``border`` — while touching the full database only for candidates
the base skeleton never counted.

Soundness argument
------------------
Supports are per-transaction sums, so for any itemset ``X``::

    support_new(X) = support_old(X) + count(X, added) - count(X, removed)

Because skeletons retain the **negative border** (every generated-but-
infrequent candidate, with exact support — see
:class:`~repro.serve.skeleton.Skeleton`), the base skeleton knows the
exact support of every candidate plain Apriori generated at its
threshold; one pass over the delta's transactions updates them all
exactly.  The refresh then replays Apriori's levelwise candidate
generation at the new threshold using those exact supports:

* a generated candidate the base skeleton counted is resolved by
  arithmetic alone (this covers every promotion/demotion whose parents
  were already frequent, and — at level 1 — the whole domain universe,
  since frequent ∪ border covers every singleton);
* a generated candidate the base skeleton never counted (possible only
  when a parent was promoted across the threshold, or the threshold
  dropped) is recounted over the full new database in one batched
  targeted pass per level (:func:`~repro.mining.delta.probe_supports`).

By induction over levels the refreshed frequent sets equal cold-mined
ones with exact supports, and the refreshed border is again the complete
negative border — so refreshes chain: a skeleton refreshed N times is
mapping-identical to one cold-built from the final dataset (the delta
differential suite asserts exactly this).  This is the paper's
anti-monotonicity argument run incrementally; the framing of supports as
bounded inference over known counts follows Tatti, "Computational
Complexity of Queries Based on Itemsets" (arXiv:1902.00633).

Threshold rescaling
-------------------
Relative minsups resolve through ``db.min_count(minsup) =
ceil(minsup * len(db))``, so ``len(db)`` changes move every query's
absolute threshold.  :func:`scaled_min_count` picks the largest new
threshold that still serves every relative minsup the base skeleton
served: the base skeleton (threshold ``m`` over ``n`` transactions)
serves exactly the minsups with ``minsup > (m - 1) / n``; for those,
``ceil(minsup * n') > (m - 1) * n' / n``, hence
``ceil(minsup * n') >= floor((m - 1) * n' / n) + 1`` — the returned
value.  Serving guarantees therefore survive churn with no spurious
cold rebuilds, while a *stale* skeleton can never serve at all: the
skeleton tier is keyed by dataset fingerprint, so the old entry is
unreachable under the new dataset and only the re-keyed refreshed
skeleton answers.

The L1-dependent engine inputs — quasi-succinct reduction constants and
the ``J^k_max`` bound series — are *not* stored in the skeleton; every
served query re-derives them from the supports its own engine run reads
through the oracle.  A refresh therefore re-derives them implicitly and
exactly; :class:`SkeletonRefreshStats.l1_crossings` reports how many
singletons crossed the frequency threshold, which is the number of L1
inputs whose value actually changed (0 crossings ⇒ the delta pass was
pure arithmetic and no bound can move at level 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.db.delta import DatasetDelta
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import ExecutionError
from repro.mining.candidates import join_and_prune
from repro.mining.delta import SupportIndex, count_over, relevant_candidates
from repro.runtime import faults
from repro.serve.skeleton import Skeleton, _approx_bytes

Itemset = Tuple[int, ...]


def scaled_min_count(old_min_count: int, old_len: int, new_len: int) -> int:
    """The largest threshold serving every minsup the old skeleton served
    (see module docstring for the derivation)."""
    if old_len <= 0:
        return max(1, old_min_count)
    return max(1, (old_min_count - 1) * new_len // old_len + 1)


@dataclass
class SkeletonRefreshStats:
    """Accounting for one skeleton's incremental refresh."""

    domain: str
    min_count_before: int
    min_count_after: int
    n_transactions_before: int
    n_transactions_after: int
    entries_before: int
    entries_after: int
    #: known candidates whose support was adjusted by delta arithmetic
    updated: int = 0
    #: itemsets newly frequent (border- or never-counted -> frequent)
    promoted: int = 0
    #: itemsets no longer frequent (frequent -> border or gone)
    demoted: int = 0
    #: never-counted candidates recounted over the full new database
    probed: int = 0
    #: levels that needed probes; all are answered by ONE inverted-index
    #: pass over the new database, built lazily at the first probe
    probe_scans: int = 0
    #: singletons whose frequent/infrequent status flipped — the L1
    #: supports whose dependent reduction constants and J^k_max inputs
    #: actually changed
    l1_crossings: int = 0
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "domain": self.domain,
            "min_count_before": self.min_count_before,
            "min_count_after": self.min_count_after,
            "n_transactions_before": self.n_transactions_before,
            "n_transactions_after": self.n_transactions_after,
            "entries_before": self.entries_before,
            "entries_after": self.entries_after,
            "updated": self.updated,
            "promoted": self.promoted,
            "demoted": self.demoted,
            "probed": self.probed,
            "probe_scans": self.probe_scans,
            "l1_crossings": self.l1_crossings,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class DeltaMaintenanceReport:
    """What :meth:`~repro.serve.service.QueryService.apply_delta` did."""

    base_fingerprint: str
    new_fingerprint: str
    delta: DatasetDelta
    #: result-cache entries invalidated (memory tier)
    results_invalidated: int = 0
    #: disk artifacts of the base dataset removed
    disk_invalidated: int = 0
    #: skeletons migrated to the new dataset incrementally
    skeletons_refreshed: int = 0
    #: skeletons dropped instead (guard trip or missing domain reference)
    skeletons_dropped: int = 0
    refreshes: List[SkeletonRefreshStats] = field(default_factory=list)
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "base_fingerprint": self.base_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "delta": self.delta.as_dict(),
            "results_invalidated": self.results_invalidated,
            "disk_invalidated": self.disk_invalidated,
            "skeletons_refreshed": self.skeletons_refreshed,
            "skeletons_dropped": self.skeletons_dropped,
            "refreshes": [r.as_dict() for r in self.refreshes],
            "wall_seconds": round(self.wall_seconds, 6),
        }


def refresh_skeleton(
    skeleton: Skeleton,
    new_db: TransactionDatabase,
    delta: DatasetDelta,
    min_count: Optional[int] = None,
    var: str = "S",
    guard=None,
) -> Tuple[Skeleton, SkeletonRefreshStats]:
    """Migrate one skeleton across a delta (see module docstring).

    ``min_count`` defaults to :func:`scaled_min_count`, preserving every
    relative-minsup serving guarantee; pass an explicit value to also
    strengthen/weaken the skeleton while migrating.  Raises
    :class:`~repro.errors.ExecutionError` when the skeleton does not
    describe the delta's base dataset or lacks a live domain reference;
    a guard trip during a delta or probe pass propagates as
    :class:`~repro.errors.RunInterrupted` (the caller must drop the
    skeleton, exactly like an interrupted cold build).
    """
    faults.fire("skeleton.refresh")
    if skeleton.dataset != delta.base_digest:
        raise ExecutionError(
            "refresh_skeleton: delta starts from dataset "
            f"{delta.base_digest[:16]}... but the skeleton was mined over "
            f"{skeleton.dataset[:16]}..."
        )
    domain = skeleton.domain_ref
    if domain is None:
        raise ExecutionError(
            "refresh_skeleton: skeleton carries no live domain reference; "
            "rebuild cold instead"
        )
    start = time.perf_counter()
    m_new = (
        min_count
        if min_count is not None
        else scaled_min_count(
            skeleton.min_count, skeleton.n_transactions, len(new_db)
        )
    )
    counters = OpCounters()

    # ------------------------------------------------------------------
    # Delta pass: exact adjustment of every known candidate that can
    # have changed (items ⊆ the delta's projected element set).
    # ------------------------------------------------------------------
    added_p = [domain.project(t) for t in delta.added]
    removed_p = [domain.project(t) for t in delta.removed]
    touched = frozenset(
        e for t in added_p for e in t
    ) | frozenset(e for t in removed_p for e in t)
    known: Dict[Itemset, int] = dict(skeleton.supports)
    known.update(skeleton.border)
    adjusted = dict(known)
    updated = 0
    if touched:
        relevant = relevant_candidates(known, touched)
        if added_p and relevant:
            counters.record_scan(len(added_p))
            add_counts = count_over(added_p, relevant, counters, var,
                                    guard=guard)
        else:
            add_counts = {}
        if removed_p and relevant:
            counters.record_scan(len(removed_p))
            rem_counts = count_over(removed_p, relevant, counters, var,
                                    guard=guard)
        else:
            rem_counts = {}
        for candidate in relevant:
            change = add_counts.get(candidate, 0) - rem_counts.get(candidate, 0)
            if change:
                adjusted[candidate] = known[candidate] + change
                updated += 1

    # ------------------------------------------------------------------
    # Levelwise completion at the new threshold: replay Apriori's
    # candidate generation; resolve from ``adjusted`` where known, probe
    # an inverted TID index of the full new database (built lazily, ONE
    # pass, shared by every probing level) where not.
    # ------------------------------------------------------------------
    supports: Dict[Itemset, int] = {}
    border: Dict[Itemset, int] = {}
    probed = 0
    probe_scans = 0
    index: Optional[SupportIndex] = None

    # Level 1: frequent ∪ border of the base skeleton covers the whole
    # universe, so the adjusted map already holds every singleton.
    freq_prev: List[Itemset] = []
    for element in domain.elements:
        candidate = (element,)
        support = adjusted[candidate]
        if support >= m_new:
            supports[candidate] = support
            freq_prev.append(candidate)
        else:
            border[candidate] = support
    old_l1 = {c for c in skeleton.supports if len(c) == 1}
    l1_crossings = len(old_l1.symmetric_difference(supports))

    k = 2
    while freq_prev:
        if k == 2:
            elems = sorted(c[0] for c in freq_prev)
            cands = [
                (elems[i], elems[j])
                for i in range(len(elems))
                for j in range(i + 1, len(elems))
            ]
        else:
            # Canonical tuples are sorted by element id — for the
            # unconstrained lattice that IS the rank order, so the join
            # works on them directly.
            cands = join_and_prune(set(freq_prev), k)
        if not cands:
            break
        unknown = [c for c in cands if c not in adjusted]
        if unknown:
            if index is None:
                counters.record_scan(len(new_db))
                index = SupportIndex(
                    [domain.project(t) for t in new_db.transactions]
                )
            if guard is not None and getattr(guard, "enabled", False):
                guard.check(where=f"delta-probe L{k}")
            adjusted.update(index.probe(unknown, counters, var, level=k))
            probed += len(unknown)
            probe_scans += 1
        freq_prev = []
        for candidate in cands:
            support = adjusted[candidate]
            if support >= m_new:
                supports[candidate] = support
                freq_prev.append(candidate)
            else:
                border[candidate] = support
        k += 1

    refreshed = Skeleton(
        dataset=delta.new_digest,
        domain=skeleton.domain,
        min_count=m_new,
        supports=supports,
        border=border,
        n_transactions=len(new_db),
        nbytes=_approx_bytes(supports) + _approx_bytes(border),
        mining_counters=counters,
        domain_ref=domain,
    )
    stats = SkeletonRefreshStats(
        domain=skeleton.domain,
        min_count_before=skeleton.min_count,
        min_count_after=m_new,
        n_transactions_before=skeleton.n_transactions,
        n_transactions_after=len(new_db),
        entries_before=len(skeleton.supports) + len(skeleton.border),
        entries_after=len(supports) + len(border),
        updated=updated,
        promoted=sum(1 for c in supports if c not in skeleton.supports),
        demoted=sum(1 for c in skeleton.supports if c not in supports),
        probed=probed,
        probe_scans=probe_scans,
        l1_crossings=l1_crossings,
        seconds=time.perf_counter() - start,
    )
    return refreshed, stats
