"""Per-tenant admission control for the concurrent query server.

Tatti's complexity results (arXiv:1902.00633) are the design brief:
adversarial constrained-frequent-set query mixes are *expensive*, so a
multi-tenant server must be able to say no — cheaply, predictably, and
per tenant — before any mining work starts.  This module supplies the
three admission primitives :mod:`repro.serve.server` composes:

* :class:`TokenBucket` — the classic rate limiter.  A bucket holds up to
  ``burst`` tokens and refills continuously at ``rate`` tokens/second
  from an injected monotonic clock; each admitted request spends one
  token, and an empty bucket means 429.  Zero-rate and zero-burst
  buckets are legal and mean "never admit" (a suspended tenant).  The
  clock may be wrapped by :meth:`repro.runtime.faults.FaultPlan.
  wrap_clock`, so injected forward jumps refill deterministically in
  tests; backwards motion (a misbehaving clock) is clamped — time never
  un-refills a bucket.

* :class:`TenantProfile` — one tenant's admission policy: rate/burst
  plus the :class:`~repro.runtime.guard.RunGuard` budget trio
  (``deadline_seconds`` / ``max_memory_mb`` / ``max_candidates``)
  applied to every run executed on the tenant's behalf.  Profiles load
  from the ``tenants.json`` format documented in ``docs/server.md``.

* :class:`TenantRegistry` — the tenant table, with an optional
  ``default`` profile for unauthenticated/unknown callers (when absent,
  unknown tenants are rejected with 403-style bodies).

Rejections are JSON documents with a fixed schema
(:func:`error_body` / :func:`validate_error_body`) so clients can
machine-parse the reason and honor ``retry_after_seconds``.

Thread safety: one bucket is hammered by every server worker thread;
``allow()`` holds the bucket's lock across the refill-and-spend
read-modify-write.  Bucket locks are leaf-level in the ``docs/server.md``
lock order (``allow()`` calls nothing that takes another lock).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import ExecutionError
from repro.runtime.guard import RunGuard

#: JSON error-body schema identifier (mirrors the telemetry document's
#: ``schema`` discipline so payloads are self-describing).
ERROR_SCHEMA = "repro.serve.error"
ERROR_VERSION = 1

#: Machine-readable rejection codes the server emits.
ERROR_CODES = frozenset(
    {
        "rate_limit",       # token bucket empty → HTTP 429
        "queue_full",       # bounded global queue shed → HTTP 503
        "unknown_tenant",   # no profile and no default → HTTP 403
        "bad_request",      # malformed query/JSON → HTTP 400
        "internal",         # unexpected server-side failure → HTTP 500
    }
)


class TokenBucket:
    """Continuous-refill token bucket over an injected monotonic clock.

    Parameters
    ----------
    rate:
        Refill rate in tokens per second.  ``0.0`` never refills.
    burst:
        Bucket capacity (and initial fill).  ``0`` never admits.
    clock:
        Monotonic time source; tests inject fakes or fault-wrapped
        clocks (:meth:`FaultPlan.wrap_clock`) to drive refill
        deterministically.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate < 0:
            raise ExecutionError(f"rate must be >= 0, got {rate}")
        if burst < 0:
            raise ExecutionError(f"burst must be >= 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        # Backwards clock motion: keep the tokens, advance the anchor to
        # ``now`` so the lost interval is never double-credited once the
        # clock recovers.
        self._refilled_at = now

    def allow(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means rejected."""
        with self._lock:
            self._refill(self.clock())
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False

    def retry_after(self, cost: float = 1.0) -> Optional[float]:
        """Seconds until ``cost`` tokens will be available (0.0 if they
        already are; ``None`` if they never will be — zero rate or a
        cost above capacity)."""
        with self._lock:
            self._refill(self.clock())
            if self._tokens >= cost:
                return 0.0
            if self.rate <= 0 or cost > self.burst:
                return None
            return (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current fill after an on-demand refill (monitoring only)."""
        with self._lock:
            self._refill(self.clock())
            return self._tokens


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's admission policy and per-run budgets.

    ``rate``/``burst`` feed the tenant's :class:`TokenBucket`;
    the budget trio maps 1:1 onto :class:`RunGuard` (``None`` disables
    that budget, all three ``None`` means the tenant runs unguarded).
    """

    name: str
    rate: float = 10.0
    burst: float = 20.0
    deadline_seconds: Optional[float] = None
    max_memory_mb: Optional[float] = None
    max_candidates: Optional[int] = None

    def guard(self) -> Optional[RunGuard]:
        """A fresh armed-on-use guard for one run, or ``None`` when the
        profile carries no budgets (the unguarded fast path)."""
        if (
            self.deadline_seconds is None
            and self.max_memory_mb is None
            and self.max_candidates is None
        ):
            return None
        return RunGuard(
            deadline_seconds=self.deadline_seconds,
            max_memory_mb=self.max_memory_mb,
            max_candidates=self.max_candidates,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "deadline_seconds": self.deadline_seconds,
            "max_memory_mb": self.max_memory_mb,
            "max_candidates": self.max_candidates,
        }

    @classmethod
    def from_dict(cls, name: str, document: Dict[str, Any]) -> "TenantProfile":
        unknown = set(document) - {
            "rate",
            "burst",
            "deadline_seconds",
            "max_memory_mb",
            "max_candidates",
        }
        if unknown:
            raise ExecutionError(
                f"unknown tenant profile keys for {name!r}: {sorted(unknown)}"
            )
        profile = cls(
            name=name,
            rate=float(document.get("rate", 10.0)),
            burst=float(document.get("burst", 20.0)),
            deadline_seconds=document.get("deadline_seconds"),
            max_memory_mb=document.get("max_memory_mb"),
            max_candidates=document.get("max_candidates"),
        )
        # Validate the budget trio eagerly (RunGuard would reject them
        # at query time otherwise — config errors should fail at load).
        profile.guard()
        TokenBucket(profile.rate, profile.burst)
        return profile


class TenantRegistry:
    """The tenant table: profiles, their buckets, unknown-tenant policy.

    A profile named ``"default"`` (or passed as ``default=``) is applied
    to tenants without their own entry — *one shared bucket* for all of
    them, so anonymous traffic is rate-limited as a single class rather
    than per-name (a per-name bucket would let an attacker mint fresh
    names faster than buckets drain).  Without a default, unknown
    tenants are rejected (``unknown_tenant``).
    """

    def __init__(
        self,
        profiles: Dict[str, TenantProfile],
        default: Optional[TenantProfile] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.clock = clock
        self.profiles = dict(profiles)
        self.default = default
        self._buckets: Dict[str, TokenBucket] = {
            name: TokenBucket(p.rate, p.burst, clock=clock)
            for name, p in self.profiles.items()
        }
        self._default_bucket = (
            TokenBucket(default.rate, default.burst, clock=clock)
            if default is not None
            else None
        )

    def resolve(self, tenant: str) -> Optional[TenantProfile]:
        """The profile serving ``tenant`` (the default for unknown
        names), or ``None`` when the tenant must be rejected."""
        return self.profiles.get(tenant, self.default)

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        """The bucket that meters ``tenant`` (shared default bucket for
        unknown names), or ``None`` when the tenant is unknown and no
        default exists."""
        if tenant in self._buckets:
            return self._buckets[tenant]
        return self._default_bucket

    @classmethod
    def from_dict(
        cls,
        document: Dict[str, Any],
        clock: Callable[[], float] = time.monotonic,
    ) -> "TenantRegistry":
        """Build from the ``tenants.json`` document
        (``{"tenants": {name: {...profile...}}}``; a ``"default"``
        entry becomes the unknown-tenant profile)."""
        if not isinstance(document, dict):
            raise ExecutionError("tenants document must be a JSON object")
        table = document.get("tenants", document)
        if not isinstance(table, dict):
            raise ExecutionError('"tenants" must map names to profiles')
        profiles: Dict[str, TenantProfile] = {}
        default: Optional[TenantProfile] = None
        for name, body in table.items():
            if not isinstance(body, dict):
                raise ExecutionError(
                    f"tenant profile {name!r} must be a JSON object"
                )
            profile = TenantProfile.from_dict(name, body)
            if name == "default":
                default = profile
            else:
                profiles[name] = profile
        return cls(profiles, default=default, clock=clock)

    @classmethod
    def load(
        cls, path: str, clock: Callable[[], float] = time.monotonic
    ) -> "TenantRegistry":
        """Read and validate a ``tenants.json`` file."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ExecutionError(f"invalid tenants file {path}: {exc}")
        return cls.from_dict(document, clock=clock)

    @classmethod
    def open_registry(
        cls, clock: Callable[[], float] = time.monotonic
    ) -> "TenantRegistry":
        """A registry that admits anyone under one permissive shared
        default profile (the no-``--tenants`` server default)."""
        return cls(
            {},
            default=TenantProfile(name="default", rate=1000.0, burst=2000.0),
            clock=clock,
        )


# ----------------------------------------------------------------------
# JSON error bodies
# ----------------------------------------------------------------------
def error_body(
    status: int,
    code: str,
    message: str,
    tenant: Optional[str] = None,
    retry_after_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """The canonical rejection document (see ``docs/server.md``)."""
    if code not in ERROR_CODES:
        raise ExecutionError(
            f"unknown error code {code!r}; expected one of {sorted(ERROR_CODES)}"
        )
    body: Dict[str, Any] = {
        "schema": ERROR_SCHEMA,
        "version": ERROR_VERSION,
        "status": int(status),
        "code": code,
        "message": message,
    }
    if tenant is not None:
        body["tenant"] = tenant
    if retry_after_seconds is not None:
        body["retry_after_seconds"] = round(float(retry_after_seconds), 6)
    return body


def validate_error_body(document: Dict[str, Any]) -> None:
    """Raise :class:`ExecutionError` unless ``document`` is a
    well-formed error body (clients and tests share this check)."""
    if not isinstance(document, dict):
        raise ExecutionError("error body must be a JSON object")
    if document.get("schema") != ERROR_SCHEMA:
        raise ExecutionError(
            f"error body schema is {document.get('schema')!r}, "
            f"expected {ERROR_SCHEMA!r}"
        )
    if document.get("version") != ERROR_VERSION:
        raise ExecutionError(
            f"unsupported error body version {document.get('version')!r}"
        )
    status = document.get("status")
    if not isinstance(status, int) or not 400 <= status <= 599:
        raise ExecutionError(f"error status must be 4xx/5xx, got {status!r}")
    if document.get("code") not in ERROR_CODES:
        raise ExecutionError(f"unknown error code {document.get('code')!r}")
    if not isinstance(document.get("message"), str):
        raise ExecutionError("error message must be a string")
    retry = document.get("retry_after_seconds")
    if retry is not None and (
        not isinstance(retry, (int, float)) or retry < 0
    ):
        raise ExecutionError(
            f"retry_after_seconds must be a non-negative number, got {retry!r}"
        )
