"""Single-flight deduplication and shared-scan coalescing.

The paper's thesis is that constrained frequent-set queries get cheap
when work is *shared*; :mod:`repro.serve.service` shares within one
session (caches, skeletons, ``execute_batch``).  This module shares
across concurrent callers, in two layers the server stacks:

**Single-flight** (:class:`SingleFlight`): N threads asking the *same*
query — identical :func:`~repro.serve.fingerprint.result_key`, i.e.
identical dataset, thresholds, constraints, and engine options — elect
one **leader** that executes; the other N-1 **join** the leader's
flight and block until the leader publishes its response document.
Everything the leader saw propagates: a guard-tripped partial answer, a
degraded-disk serving, an error.  Joiners receive the *published
document*, not a cache read — so even uncacheable outcomes (partials
are never stored) reach every waiter exactly once.

**Coalescing** (:class:`Coalescer`): threads asking *different* queries
over the same dataset fingerprint are grouped during a short admission
window (default a few ms) and dispatched as one shared-scan
``execute_batch``.  The first arrival becomes the **group leader**; it
waits out the window (waking early if the group fills to
``max_width``), closes the group, executes the batch, and publishes a
result per member.  Joiners block on the group.  A group of one falls
back to singleton execution — the window cost is bounded and the answer
path identical.

Both tables are plain lock + ``threading.Event`` machinery: no
background threads, no timers — the *callers'* threads do all the work,
so a crashed leader can be detected (``leader_failed``) and the
flight/group re-run rather than hanging every waiter.

Thread safety / lock order (``docs/server.md``): the flight-table lock
and coalescer lock are level-0 server locks.  They are held only for
dict/membership bookkeeping — never across query execution — and code
holding them calls nothing that takes another lock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ExecutionError


class Flight:
    """One in-progress execution of one result key.

    The leader runs the query and calls :meth:`SingleFlight.finish`;
    joiners block in :meth:`SingleFlight.wait`.  ``waiters`` counts the
    joiners (not the leader) — tests and telemetry read it, and the
    concurrency suite uses it to hold a leader until all joiners have
    arrived.
    """

    __slots__ = ("key", "done", "waiters", "response", "error")

    def __init__(self, key: str):
        self.key = key
        self.done = threading.Event()
        self.waiters = 0
        self.response: Optional[Any] = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """The in-flight table: at most one execution per result key."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict = {}

    def begin(self, key: str) -> Tuple[Flight, bool]:
        """Join or open the flight for ``key``.

        Returns ``(flight, is_leader)``: the leader must execute and
        then :meth:`finish` (success or failure — a leader that forgets
        strands its joiners), joiners :meth:`wait`.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            return flight, True

    def waiters(self, key: str) -> int:
        """Current joiner count for ``key`` (0 when not in flight)."""
        with self._lock:
            flight = self._flights.get(key)
            return flight.waiters if flight is not None else 0

    def finish(
        self,
        flight: Flight,
        response: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Publish the leader's outcome and release every joiner.

        The flight leaves the table *before* the event is set: a new
        request arriving after ``finish`` opens a fresh flight (and will
        re-check the result cache first), it never joins a completed
        one.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        flight.response = response
        flight.error = error
        flight.done.set()

    def wait(self, flight: Flight, timeout: Optional[float] = None) -> Any:
        """Block until the leader publishes; returns its response or
        re-raises its error.  A timeout raises ``ExecutionError`` (the
        caller turns it into a 500 — it means a leader died without
        calling :meth:`finish`, which is a server bug by construction)."""
        if not flight.done.wait(timeout):
            raise ExecutionError(
                f"single-flight leader for {flight.key[:16]} never published"
            )
        if flight.error is not None:
            raise flight.error
        return flight.response


class Group:
    """One coalescing window's worth of queries on one dataset.

    ``members`` holds the submitted work items in arrival order; member
    ``i``'s answer is ``results[i]`` once the leader publishes.
    """

    __slots__ = (
        "dataset_fp",
        "members",
        "closed",
        "filled",
        "done",
        "results",
        "error",
    )

    def __init__(self, dataset_fp: str):
        self.dataset_fp = dataset_fp
        self.members: List[Any] = []
        self.closed = False
        #: Set when the group reaches ``max_width`` — wakes the leader
        #: out of its admission-window wait early.
        self.filled = threading.Event()
        self.done = threading.Event()
        self.results: Optional[List[Any]] = None
        self.error: Optional[BaseException] = None

    @property
    def width(self) -> int:
        return len(self.members)


class Coalescer:
    """Admission-window batching of in-flight queries per dataset.

    Parameters
    ----------
    window_seconds:
        How long a group leader lingers for company before dispatching.
        ``0.0`` disables coalescing (every group is a singleton and the
        leader never sleeps).
    max_width:
        Group size cap; a full group dispatches immediately and later
        arrivals open the next group.
    clock:
        Injected monotonic time source for the window deadline (the
        actual blocking happens on the group's ``filled`` event, so a
        fake clock still can't hang a leader past the real window).
    """

    def __init__(
        self,
        window_seconds: float = 0.004,
        max_width: int = 16,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_seconds < 0:
            raise ExecutionError(
                f"window_seconds must be >= 0, got {window_seconds}"
            )
        if max_width < 1:
            raise ExecutionError(f"max_width must be >= 1, got {max_width}")
        self.window_seconds = window_seconds
        self.max_width = max_width
        self.clock = clock
        self._lock = threading.Lock()
        self._groups: dict = {}

    def join(self, dataset_fp: str, item: Any) -> Tuple[Group, int, bool]:
        """Add one work item to the dataset's open group.

        Returns ``(group, index, is_leader)``.  The leader must call
        :meth:`close_after_window` then :meth:`publish`; joiners call
        :meth:`wait`.
        """
        with self._lock:
            group = self._groups.get(dataset_fp)
            if (
                group is not None
                and not group.closed
                and group.width < self.max_width
            ):
                index = group.width
                group.members.append(item)
                if group.width >= self.max_width:
                    group.filled.set()
                return group, index, False
            group = Group(dataset_fp)
            group.members.append(item)
            if self.max_width == 1 or self.window_seconds == 0:
                # Nothing can ever join: close eagerly so concurrent
                # arrivals open their own groups instead of appending
                # to one a non-waiting leader is about to dispatch.
                group.closed = True
            else:
                self._groups[dataset_fp] = group
            return group, 0, True

    def close_after_window(self, group: Group) -> List[Any]:
        """Leader-only: wait out the admission window (waking early on a
        full group), then close the group to new members and return the
        final member list in arrival order."""
        if not group.closed and self.window_seconds > 0:
            deadline = self.clock() + self.window_seconds
            # A frozen injected clock must not pin the leader: bound the
            # linger by the *real* window too, or `remaining` never
            # shrinks and the loop re-arms forever.
            real_deadline = time.monotonic() + self.window_seconds
            while not group.filled.is_set():
                remaining = min(
                    deadline - self.clock(),
                    real_deadline - time.monotonic(),
                )
                if remaining <= 0:
                    break
                group.filled.wait(remaining)
        with self._lock:
            group.closed = True
            if self._groups.get(group.dataset_fp) is group:
                del self._groups[group.dataset_fp]
        return list(group.members)

    def publish(
        self,
        group: Group,
        results: Optional[List[Any]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Leader-only: hand every member its result (or the shared
        failure) and wake the joiners."""
        if error is None and (
            results is None or len(results) != group.width
        ):
            error = ExecutionError(
                f"coalesced batch published {0 if results is None else len(results)} "
                f"results for {group.width} members"
            )
        group.results = results
        group.error = error
        group.done.set()

    def wait(
        self, group: Group, index: int, timeout: Optional[float] = None
    ) -> Any:
        """Joiner-only: block for the leader's publish; returns this
        member's result or re-raises the group-wide error."""
        if not group.done.wait(timeout):
            raise ExecutionError(
                f"coalesce leader for {group.dataset_fp[:16]} never published"
            )
        if group.error is not None:
            raise group.error
        assert group.results is not None
        return group.results[index]

    def open_groups(self) -> int:
        """Number of groups currently collecting (monitoring only)."""
        with self._lock:
            return len(self._groups)
