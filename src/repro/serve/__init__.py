"""Multi-query serving: fingerprinted caches and shared-scan batches.

See :mod:`repro.serve.service` for the architecture overview and
``docs/serving.md`` for the operational contract (cache keys,
invalidation, batch semantics, cold-run fallback triggers).
"""

from repro.serve.admission import (
    ERROR_CODES,
    ERROR_SCHEMA,
    ERROR_VERSION,
    TenantProfile,
    TenantRegistry,
    TokenBucket,
    error_body,
    validate_error_body,
)
from repro.serve.artifacts import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    parse_artifact,
    rebuild_counters,
    rebuild_result,
    serialize_result,
    validate_artifact,
)
from repro.serve.cache import CacheEntry, CircuitBreaker, LRUCache
from repro.serve.delta import (
    DeltaMaintenanceReport,
    SkeletonRefreshStats,
    refresh_skeleton,
    scaled_min_count,
)
from repro.serve.flight import Coalescer, Flight, Group, SingleFlight
from repro.serve.fingerprint import (
    RESULT_OPTIONS,
    dataset_fingerprint,
    domain_fingerprint,
    options_fingerprint,
    query_fingerprint,
    result_key,
)
from repro.serve.server import (
    ANSWER_COUNTERS,
    SERVER_SCHEMA,
    SERVER_VERSION,
    QueryServer,
    ServerHandle,
    answer_document,
    start_server,
)
from repro.serve.service import (
    BatchItem,
    BatchReport,
    CacheHit,
    QueryService,
)
from repro.serve.skeleton import (
    Skeleton,
    SupportOracle,
    build_skeleton,
    skeleton_key,
)
from repro.serve.telemetry import (
    NULL_TELEMETRY,
    SERVE_OUTCOMES,
    TELEMETRY_SCHEMA,
    TELEMETRY_VERSION,
    ServiceTelemetry,
    resolve_telemetry,
)

__all__ = [
    "ANSWER_COUNTERS",
    "ARTIFACT_SCHEMA",
    "ARTIFACT_VERSION",
    "Coalescer",
    "ERROR_CODES",
    "ERROR_SCHEMA",
    "ERROR_VERSION",
    "Flight",
    "Group",
    "QueryServer",
    "SERVER_SCHEMA",
    "SERVER_VERSION",
    "ServerHandle",
    "SingleFlight",
    "TenantProfile",
    "TenantRegistry",
    "TokenBucket",
    "answer_document",
    "error_body",
    "start_server",
    "validate_error_body",
    "BatchItem",
    "BatchReport",
    "CacheEntry",
    "CacheHit",
    "CircuitBreaker",
    "DeltaMaintenanceReport",
    "LRUCache",
    "NULL_TELEMETRY",
    "QueryService",
    "RESULT_OPTIONS",
    "SERVE_OUTCOMES",
    "ServiceTelemetry",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_VERSION",
    "resolve_telemetry",
    "Skeleton",
    "SkeletonRefreshStats",
    "SupportOracle",
    "build_skeleton",
    "refresh_skeleton",
    "scaled_min_count",
    "dataset_fingerprint",
    "domain_fingerprint",
    "options_fingerprint",
    "parse_artifact",
    "query_fingerprint",
    "rebuild_counters",
    "rebuild_result",
    "result_key",
    "serialize_result",
    "skeleton_key",
    "validate_artifact",
]
