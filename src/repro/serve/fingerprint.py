"""Content fingerprints for the serving layer's caches.

A cached answer is only as trustworthy as the identity it is keyed on.
The checkpoint machinery (:mod:`repro.runtime.checkpoint`) already
fingerprints runs, but its ``run_fingerprint`` binds to the *query text*
— which deliberately omits the support thresholds (``str(CFQ)`` renders
the constraint conjunction only) because checkpoint replay additionally
validates every stored counting pass against the live run.  A result
cache has no such second line of defense: a stale or mis-keyed entry is
returned verbatim.  The fingerprints here therefore close over every
input that can change the answer:

* ``dataset_fingerprint`` — the transaction content digest, reusing
  :func:`repro.runtime.checkpoint.transactions_digest` (sha256 over the
  ordered transaction list);
* ``domain_fingerprint`` — a domain's name, element universe, identity
  values, projection kind, and the full item catalog (every attribute
  column), so editing one price in ``itemInfo`` invalidates entries;
* ``query_fingerprint`` — the constraint text **plus** per-variable
  minsup, ``max_level``, and each variable's domain fingerprint;
* ``options_fingerprint`` / ``result_key`` — the result-affecting engine
  options (``dovetail``, ``use_reduction``, ``use_jmax``,
  ``reduction_rounds``) joined with the dataset and query fingerprints
  into the final cache key.

The counting ``backend`` is deliberately *excluded* from the key: every
backend is bit-identical on answers (the backend differential suite
proves it), so a result mined with one backend may be served to a query
requesting another.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Dict

from repro.core.query import CFQ
from repro.db.domain import Domain
from repro.db.transactions import TransactionDatabase
from repro.runtime.checkpoint import transactions_digest

#: Engine options that change the answer artifacts (counters included)
#: and therefore participate in the result key; everything else —
#: backend choice, tracer, guard — does not.
RESULT_OPTIONS = ("dovetail", "use_reduction", "use_jmax", "reduction_rounds")


def _sha256(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class _IdentityMemo:
    """Bounded ``id() -> (pinned object, digest)`` memo.

    Warm servings would otherwise re-hash an unchanged database (or
    catalog) on every lookup — the dominant cost of a cache hit.  The
    memo keeps a strong reference to each memoized object, so an id can
    never be recycled by a different object while its digest is live
    (the same invariant :class:`~repro.mining.backends.VerticalBackend`
    relies on); both classes build their content immutably at
    construction, which is what makes identity a sound proxy for
    content *for the same object*.

    Thread safety: the memo dict is shared process-wide and the query
    server hashes from many worker threads at once.  An unlocked
    ``while len >= limit: pop(next(iter(...)))`` eviction loop races
    with concurrent stores (``RuntimeError: dictionary changed size
    during iteration``, or popping a key another thread just inserted),
    so lookup and store each hold ``_lock``; ``compute()`` runs outside
    it — hashing a large database under a global lock would serialize
    every cold fingerprint.  Two threads may both compute the digest of
    the same new object; both results are identical (content hash), so
    last-store-wins is harmless.
    """

    def __init__(self, limit: int = 16):
        self.limit = limit
        self._entries: Dict[int, tuple] = {}
        self._lock = threading.Lock()

    def digest(self, obj: Any, compute) -> str:
        with self._lock:
            memo = self._entries.get(id(obj))
            if memo is not None and memo[0] is obj:
                return memo[1]
        digest = compute()
        with self._lock:
            while len(self._entries) >= self.limit:
                self._entries.pop(next(iter(self._entries)))
            self._entries[id(obj)] = (obj, digest)
        return digest


_DATASET_MEMO = _IdentityMemo()
_DOMAIN_MEMO = _IdentityMemo()


def dataset_fingerprint(db: TransactionDatabase) -> str:
    """Content digest of the transaction database (order-sensitive)."""
    return _DATASET_MEMO.digest(
        db, lambda: transactions_digest(db.transactions)
    )


def domain_fingerprint(domain: Domain) -> str:
    """Content digest of a domain: elements, identity values, catalog.

    Includes every catalog attribute column — a cached lattice is only
    reusable if the attribute values the constraints and bounds read are
    unchanged — and the projection mapping of derived domains (two Type
    domains with different item->type mappings project transactions
    differently even when their element universes coincide).
    """
    return _DOMAIN_MEMO.digest(domain, lambda: _domain_digest(domain))


def _domain_digest(domain: Domain) -> str:
    catalog = domain.catalog
    document: Dict[str, Any] = {
        "name": domain.name,
        "elements": list(domain.elements),
        "identity": [[e, domain.element_value(e)] for e in domain.elements],
        "derived": domain.is_derived,
        "attributes": {
            name: sorted(
                (int(item), value) for item, value in catalog.column(name).items()
            )
            for name in sorted(catalog.attribute_names)
        },
    }
    if domain.is_derived:
        mapping = getattr(domain, "_item_to_element", None) or {}
        document["item_to_element"] = sorted(
            (int(item), int(element)) for item, element in mapping.items()
        )
    return _sha256(json.dumps(document, sort_keys=True, default=str))


def query_fingerprint(cfq: CFQ, db: TransactionDatabase) -> str:
    """Identity of a query against a database's thresholds.

    ``str(cfq)`` covers the constraint conjunction and variables but NOT
    the support thresholds, so they are added explicitly — both the
    relative minsup and the absolute min_count it resolves to on this
    database (the engine consumes the absolute form, so that is what the
    answer actually depends on).
    """
    document = {
        "query": str(cfq),
        "minsup": {var: cfq.minsup_for(var) for var in cfq.variables},
        "min_count": {
            var: db.min_count(cfq.minsup_for(var)) for var in cfq.variables
        },
        "max_level": cfq.max_level,
        "domains": {
            var: domain_fingerprint(cfq.domains[var]) for var in cfq.variables
        },
    }
    return _sha256(json.dumps(document, sort_keys=True))


def options_fingerprint(options: Dict[str, Any]) -> str:
    """Digest of the result-affecting engine options (see
    :data:`RESULT_OPTIONS`); unknown keys are ignored."""
    relevant = {key: options.get(key) for key in RESULT_OPTIONS}
    return _sha256(json.dumps(relevant, sort_keys=True))


def result_key(cfq: CFQ, db: TransactionDatabase, options: Dict[str, Any]) -> str:
    """The full result-cache key: dataset + query + options."""
    return _sha256(
        json.dumps(
            {
                "dataset": dataset_fingerprint(db),
                "query": query_fingerprint(cfq, db),
                "options": options_fingerprint(options),
            },
            sort_keys=True,
        )
    )
