"""Frequency skeletons: unconstrained lattices as support oracles.

The batch tier of the serving layer rests on one observation: for a
fixed dataset and domain, **every** CFQ's lattice computation consumes
nothing from the database but candidate supports — and a complete
*unconstrained* frequent lattice mined at threshold ``m`` answers any
support lookup a query with ``min_count >= m`` can need.  The argument
(the soundness half of the differential suite):

* if a candidate's true support is ``>= min_count >= m``, every subset
  is also that frequent (anti-monotonicity), so plain Apriori at ``m``
  enumerated and kept the candidate — the skeleton returns its exact
  support;
* otherwise the skeleton returns either the exact support (if the
  candidate is frequent at ``m``) or the default ``0`` — and every such
  value is below ``min_count``, so ``frequent_only`` drops the
  candidate exactly as a counted run would.

A query served this way re-executes the *normal* engine — candidate
generation, reductions, ``J^k_max`` series, pruning attribution — with
only the database passes replaced by dictionary lookups, which is why
warm results are bit-identical to cold ones (same dicts in the same
insertion order) rather than merely equal.  This mirrors checkpoint
resume-by-replay (:mod:`repro.runtime.checkpoint`), with the skeleton
standing in for the stored count events.

Skeletons are mined once per (dataset, domain) at the **weakest**
threshold a batch needs (the union-of-thresholds rule of the batch
executor) and cached; mining is guard-aware — a skeleton whose mining
run was interrupted is discarded, never cached, so a partial lattice
can never masquerade as a complete oracle.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.query import CFQ
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import RunInterrupted
from repro.mining.cap import mine_skeleton
from repro.serve.fingerprint import dataset_fingerprint, domain_fingerprint

Itemset = Tuple[int, ...]


@dataclass
class Skeleton:
    """One domain's complete unconstrained frequent lattice at a threshold.

    ``supports`` maps every itemset frequent at ``min_count`` (any size,
    singletons included) to its exact support; lookups for anything else
    default to 0, which is sound for queries whose threshold is at least
    ``min_count`` (see module docstring).

    ``border`` holds the *negative border*: every candidate Apriori
    generated and counted whose support fell below ``min_count``.  It
    never participates in query serving (those lookups must return the
    sound default 0) — it exists so incremental maintenance under churn
    (:mod:`repro.serve.delta`) knows the exact support of **every**
    generated candidate and can promote/demote by delta arithmetic
    alone.  At level 1 ``supports`` ∪ ``border`` covers the whole domain
    universe.
    """

    dataset: str
    domain: str
    min_count: int
    supports: Dict[Itemset, int]
    #: Counted-but-infrequent candidates (exact supports); see above.
    border: Dict[Itemset, int] = field(default_factory=dict)
    #: Transaction count of the dataset the skeleton was mined over
    #: (min_count rescaling under churn needs the old denominator).
    n_transactions: int = 0
    #: Approximate retained size, for the cache's bytes-held accounting.
    nbytes: int = 0
    #: Operation counts the skeleton mining itself spent (reported
    #: separately from any query's counters).
    mining_counters: OpCounters = field(default_factory=OpCounters)
    #: The live Domain object the skeleton was mined over.  Skeletons are
    #: memory-tier only, so holding the (immutable) domain is safe; the
    #: churn refresher needs it to project delta transactions.
    domain_ref: object = None

    def serves(self, min_count: int) -> bool:
        """Whether this skeleton can answer a query at ``min_count``."""
        return min_count >= self.min_count

    def lookup(self, candidate: Itemset) -> int:
        return self.supports.get(candidate, 0)

    def known_support(self, candidate: Itemset):
        """Exact support if the candidate was ever counted, else ``None``
        (frequent and border entries both qualify; refresh-only helper)."""
        found = self.supports.get(candidate)
        if found is not None:
            return found
        return self.border.get(candidate)


def skeleton_key(dataset_fp: str, domain_fp: str) -> str:
    """Cache key of one (dataset, domain) skeleton."""
    return f"{dataset_fp}:{domain_fp}"


def _approx_bytes(supports: Dict[Itemset, int]) -> int:
    """Retained-size estimate for one support dict.

    ``sys.getsizeof`` of the dict itself (which includes the hash-table
    slots, growing with the entry count) plus each key tuple and each
    value int — the parts the old tuple-cells-only formula undercounted,
    which let the skeleton tier's ``max_bytes`` bound hold several times
    its configured budget.  Shared small-int interning makes this an
    upper bound for the values, which is the safe direction for a cache
    bound.
    """
    total = sys.getsizeof(supports)
    for itemset, count in supports.items():
        total += sys.getsizeof(itemset) + sys.getsizeof(count)
    return total


def build_skeleton(
    db: TransactionDatabase,
    domain,
    min_count: int,
    var: str = "S",
    backend=None,
    guard=None,
    tracer=None,
) -> Skeleton:
    """Mine one (dataset, domain) skeleton at ``min_count``.

    Runs plain Apriori (an unconstrained :func:`~repro.mining.cap.cap_mine`)
    over the domain-projected transactions.  A guard trip propagates as
    :class:`~repro.errors.RunInterrupted` — the caller must *not* cache
    anything in that case.
    """
    counters = OpCounters()
    projected = [domain.project(t) for t in db.transactions]
    result = mine_skeleton(
        var=var,
        domain=domain,
        transactions=projected,
        min_count=min_count,
        counters=counters,
        backend=backend,
        guard=guard,
        tracer=tracer,
    )
    supports: Dict[Itemset, int] = {}
    for sets in result.frequent.values():
        supports.update(sets)
    border: Dict[Itemset, int] = {}
    for sets in result.border.values():
        border.update(sets)
    return Skeleton(
        dataset=dataset_fingerprint(db),
        domain=domain_fingerprint(domain),
        min_count=min_count,
        supports=supports,
        border=border,
        n_transactions=len(db),
        nbytes=_approx_bytes(supports) + _approx_bytes(border),
        mining_counters=counters,
        domain_ref=domain,
    )


class SupportOracle:
    """Per-variable support lookup the engine substitutes for counting.

    Built by the service from one :class:`Skeleton` per query variable
    (two variables over the same domain share one skeleton object).  The
    :class:`~repro.mining.dovetail.DovetailEngine` calls :meth:`lookup`
    once per (variable, level) pass.
    """

    def __init__(self, skeletons: Dict[str, Skeleton]):
        self.skeletons = dict(skeletons)

    def lookup(self, var: str, candidates) -> Dict[Itemset, int]:
        """Supports of one pass's candidates, keyed in candidate order
        (the same insertion order a counted pass produces)."""
        skeleton = self.skeletons[var]
        get = skeleton.supports.get
        return {candidate: get(candidate, 0) for candidate in candidates}

    @classmethod
    def for_query(
        cls,
        cfq: CFQ,
        db: TransactionDatabase,
        skeletons: Dict[str, Optional[Skeleton]],
    ) -> Optional["SupportOracle"]:
        """An oracle for ``cfq``, or ``None`` when any variable lacks a
        servable skeleton (threshold too strong or skeleton absent)."""
        chosen: Dict[str, Skeleton] = {}
        for var in cfq.variables:
            skeleton = skeletons.get(var)
            if skeleton is None:
                return None
            if not skeleton.serves(db.min_count(cfq.minsup_for(var))):
                return None
            chosen[var] = skeleton
        return cls(chosen)
