"""Serialization of mining artifacts for the result cache.

A cached answer must reproduce a cold run **bit-identically**: the same
frequent sets with the same supports *in the same dict insertion order*
(pair formation iterates those dicts, so order is answer-bearing), the
same per-level bookkeeping, the same ``J^k_max`` bound histories, and
the same operation counters.  The document format here therefore stores
every mapping as an ordered list of pairs and rebuilds dicts in stored
order; the round-trip property ``rebuild(serialize(x)) == x`` is pinned
by the differential suite.

The same document is what the disk tier writes (the CLI's
``--cache-dir``), so its header is versioned and validated like the
checkpoint and run-report formats.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.db.stats import OpCounters
from repro.errors import ExecutionError
from repro.mining.dovetail import DovetailResult
from repro.mining.lattice import LatticeResult

ARTIFACT_SCHEMA = "repro.serve.result"
ARTIFACT_VERSION = 1

Itemset = tuple


def artifact_integrity(document: Dict[str, Any]) -> str:
    """Content checksum of an artifact document (minus the checksum).

    Canonical form: sorted keys, tight separators.  Floats (including
    the ``Infinity`` literals in bound histories) round-trip through
    ``json.loads``/``dumps`` exactly, so the checksum computed at write
    time matches one recomputed from the parsed document — unless the
    bytes changed in between.
    """
    payload = {k: v for k, v in document.items() if k != "integrity"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _lattice_document(result: LatticeResult) -> Dict[str, Any]:
    return {
        "var": result.var,
        "frequent": [
            [level, [[list(itemset), n] for itemset, n in sets.items()]]
            for level, sets in result.frequent.items()
        ],
        "level1_supports": [
            [element, n] for element, n in result.level1_supports.items()
        ],
        "counted_per_level": [
            [level, n] for level, n in result.counted_per_level.items()
        ],
        "prune_counts": [
            [level, [[reason, n] for reason, n in counts.items()]]
            for level, counts in result.prune_counts.items()
        ],
    }


def _lattice_from_document(document: Dict[str, Any]) -> LatticeResult:
    return LatticeResult(
        var=document["var"],
        frequent={
            int(level): {
                tuple(int(i) for i in itemset): int(n) for itemset, n in sets
            }
            for level, sets in document["frequent"]
        },
        level1_supports={
            int(element): int(n) for element, n in document["level1_supports"]
        },
        counted_per_level={
            int(level): int(n) for level, n in document["counted_per_level"]
        },
        prune_counts={
            int(level): {str(reason): int(n) for reason, n in counts}
            for level, counts in document["prune_counts"]
        },
    )


def serialize_result(
    raw: DovetailResult,
    counters: OpCounters,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """One completed run's artifacts as a JSON document (text).

    ``counters`` must be the state at the end of ``execute()`` — before
    any ``pairs()``/``valid_sets()`` calls, which meter additional
    ``pair_checks``; a rebuilt result then accumulates those deltas
    exactly like the cold run did.  Non-finite bound values (``inf`` in
    a fresh ``J^k_max`` series) round-trip through Python's JSON
    ``Infinity`` literals; this document is read back by this module
    only, never by strict-JSON consumers.
    """
    document: Dict[str, Any] = {
        "schema": ARTIFACT_SCHEMA,
        "version": ARTIFACT_VERSION,
        "lattices": [
            [var, _lattice_document(result)] for var, result in raw.lattices.items()
        ],
        "bound_histories": [
            [key, [[int(k), float(bound)] for k, bound in history]]
            for key, history in raw.bound_histories.items()
        ],
        "disabled_jmax": list(raw.disabled_jmax),
        "counters": counters.snapshot(),
        "meta": dict(meta or {}),
    }
    document["integrity"] = artifact_integrity(document)
    return json.dumps(document)


def validate_artifact(
    document: Dict[str, Any], verify_integrity: bool = True
) -> Dict[str, Any]:
    """Header + required-section validation; returns the document.

    ``verify_integrity=False`` skips the checksum re-computation for
    text that never left the process (the in-memory result tier): the
    checksum defends against bytes corrupted *on disk*, and hashing a
    canonical re-dump on every warm-memory hit would tax exactly the
    latency the trend gate protects.
    """
    if not isinstance(document, dict):
        raise ExecutionError("result artifact must be a JSON object")
    if document.get("schema") != ARTIFACT_SCHEMA:
        raise ExecutionError(
            f"not a result artifact (schema {document.get('schema')!r}, "
            f"expected {ARTIFACT_SCHEMA!r})"
        )
    if document.get("version") != ARTIFACT_VERSION:
        raise ExecutionError(
            f"unsupported result-artifact version {document.get('version')!r}; "
            f"this reader understands version {ARTIFACT_VERSION}"
        )
    for key in ("lattices", "bound_histories", "counters"):
        if key not in document:
            raise ExecutionError(f"result artifact missing required key {key!r}")
    stored = document.get("integrity")
    if (
        verify_integrity
        and stored is not None
        and stored != artifact_integrity(document)
    ):
        # Parseable but flipped content — a support digit, a bound.
        # Refusing here is what lets the disk tier quarantine silent
        # corruption instead of serving a wrong answer from it.
        raise ExecutionError(
            "result artifact integrity checksum mismatch: the file was "
            "modified or corrupted after it was written"
        )
    return document


def parse_artifact(
    text: str, verify_integrity: bool = True
) -> Dict[str, Any]:
    """Parse and validate an artifact document from JSON text."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExecutionError(f"result artifact is not valid JSON: {exc}") from exc
    return validate_artifact(document, verify_integrity=verify_integrity)


def rebuild_result(document: Dict[str, Any]) -> DovetailResult:
    """Reconstruct the :class:`DovetailResult` a document captured.

    ``candidate_logs`` is rebuilt empty: ``keep_candidates`` runs bypass
    the cache entirely (the service never stores them).
    """
    return DovetailResult(
        lattices={
            var: _lattice_from_document(lattice)
            for var, lattice in document["lattices"]
        },
        counters=OpCounters.from_snapshot(document["counters"]),
        bound_histories={
            key: [(int(k), float(bound)) for k, bound in history]
            for key, history in document["bound_histories"]
        },
        disabled_jmax=list(document["disabled_jmax"]),
        candidate_logs={},
    )


def rebuild_counters(document: Dict[str, Any]) -> Dict[str, Any]:
    """The stored :meth:`OpCounters.snapshot` of the cold run."""
    return document["counters"]
