"""IBM-Quest-style synthetic transaction generation.

The paper generates its transaction databases with "the program developed
at IBM Almaden Research Center" — the synthetic generator of Agrawal &
Srikant (VLDB 1994).  This module reimplements that generator's
stochastic process:

* a pool of ``n_patterns`` *maximal potentially frequent itemsets*, whose
  sizes are Poisson-distributed around ``avg_pattern_size`` and whose
  contents partially overlap with the previous pattern (an exponentially
  distributed fraction with mean ``correlation``);
* pattern weights drawn from an exponential and normalized to sum to 1;
* per-pattern *corruption levels* (normal around ``corruption_mean``):
  when a pattern is inserted into a transaction, items are dropped from
  it while successive uniform draws fall below the corruption level;
* transactions whose sizes are Poisson around ``avg_transaction_size``,
  filled by weighted pattern picks; an oversized pattern is inserted
  anyway in half the cases and deferred otherwise.

The process is seeded and fully deterministic given
:class:`QuestParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.db.transactions import TransactionDatabase
from repro.errors import DataError


@dataclass(frozen=True)
class QuestParameters:
    """Parameters of the Quest generator (names follow the 1994 paper).

    ``T10.I4.D100K`` in the literature's notation means
    ``avg_transaction_size=10, avg_pattern_size=4, n_transactions=100_000``.
    """

    n_transactions: int = 10_000
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 4.0
    n_patterns: int = 500
    n_items: int = 1000
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    seed: int = 1999

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DataError` on nonsensical settings."""
        if self.n_transactions <= 0 or self.n_items <= 1:
            raise DataError("need at least one transaction and two items")
        if self.avg_transaction_size < 1 or self.avg_pattern_size < 1:
            raise DataError("average sizes must be >= 1")
        if self.n_patterns <= 0:
            raise DataError("need at least one pattern")
        if not 0.0 <= self.correlation <= 1.0:
            raise DataError("correlation must be in [0, 1]")


def _generate_patterns(
    params: QuestParameters, rng: np.random.RandomState
) -> Tuple[List[Tuple[int, ...]], np.ndarray, np.ndarray]:
    sizes = np.maximum(1, rng.poisson(params.avg_pattern_size, params.n_patterns))
    sizes = np.minimum(sizes, params.n_items)
    patterns: List[Tuple[int, ...]] = []
    previous: Tuple[int, ...] = ()
    for size in sizes:
        reused: List[int] = []
        if previous:
            fraction = min(1.0, rng.exponential(params.correlation))
            n_reused = min(int(round(fraction * size)), len(previous))
            if n_reused:
                reused = list(
                    rng.choice(len(previous), size=n_reused, replace=False)
                )
                reused = [previous[i] for i in reused]
        needed = size - len(reused)
        fresh: List[int] = []
        if needed > 0:
            pool = rng.choice(params.n_items, size=min(needed * 3 + 8, params.n_items),
                              replace=False)
            for item in pool:
                if item not in reused:
                    fresh.append(int(item))
                if len(fresh) == needed:
                    break
        pattern = tuple(sorted(set(reused + fresh)))
        patterns.append(pattern)
        previous = pattern
    weights = rng.exponential(1.0, params.n_patterns)
    weights /= weights.sum()
    corruptions = np.clip(
        rng.normal(params.corruption_mean, params.corruption_sd, params.n_patterns),
        0.0,
        0.95,
    )
    return patterns, weights, corruptions


def _corrupt(
    pattern: Sequence[int], level: float, rng: np.random.RandomState
) -> List[int]:
    items = list(pattern)
    while items and rng.uniform() < level:
        items.pop(rng.randint(len(items)))
    return items


def generate_quest(params: QuestParameters) -> TransactionDatabase:
    """Generate a transaction database from Quest parameters.

    Item ids are ``0 .. n_items - 1``.
    """
    params.validate()
    rng = np.random.RandomState(params.seed)
    patterns, weights, corruptions = _generate_patterns(params, rng)
    pattern_ids = np.arange(params.n_patterns)

    transactions: List[List[int]] = []
    deferred: List[int] = []  # items pushed to the next transaction
    sizes = np.maximum(1, rng.poisson(params.avg_transaction_size, params.n_transactions))
    for size in sizes:
        transaction: List[int] = list(deferred)
        deferred = []
        guard = 0
        while len(transaction) < size and guard < 50:
            guard += 1
            pick = int(rng.choice(pattern_ids, p=weights))
            inserted = _corrupt(patterns[pick], float(corruptions[pick]), rng)
            if not inserted:
                continue
            if len(transaction) + len(inserted) > size and transaction:
                # Oversized: insert anyway half the time, defer otherwise.
                if rng.uniform() < 0.5:
                    transaction.extend(inserted)
                else:
                    deferred = inserted
                break
            transaction.extend(inserted)
        if not transaction:
            transaction = [int(rng.randint(params.n_items))]
        transactions.append(sorted(set(transaction)))
    return TransactionDatabase(transactions)
