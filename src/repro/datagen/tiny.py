"""Tiny random scenarios for the empirical checkers and property tests.

A scenario is a pair of small domains (with numeric attribute ``A`` on
the S side and ``B`` on the T side, plus a categorical ``C``), genuinely
mined frequent-set collections for each side (hence subset-closed, as
Definitions 3/4 assume), and the transaction databases behind them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.itemsets import Itemset
from repro.mining.apriori import mine_frequent


@dataclass
class TinyScenario:
    """A small two-domain world with mined frequent sets."""

    domains: Dict[str, Domain]
    frequent: Dict[str, Dict[Itemset, int]]
    frequent_by_size: Dict[str, Dict[int, List[Itemset]]]
    transactions: Dict[str, List[Tuple[int, ...]]]

    def l1(self, var: str) -> List[int]:
        """Frequent singleton elements of one variable."""
        return sorted(e for (e,) in self.frequent_by_size[var].get(1, []))


def tiny_scenario(
    seed: int,
    n_s: int = 5,
    n_t: int = 5,
    n_transactions: int = 30,
    minsup_count: int = 3,
    value_range: Tuple[int, int] = (0, 9),
    n_categories: int = 3,
) -> TinyScenario:
    """Build a seeded tiny scenario.

    S elements are ids ``0..n_s-1`` with attributes ``A`` (numeric) and
    ``C`` (categorical); T elements are ids ``100..100+n_t-1`` with
    attributes ``B`` and ``C``.  Transactions per side are independent
    random subsets, then mined so the frequent collections are
    subset-closed.
    """
    rng = np.random.RandomState(seed)
    low, high = value_range
    s_items = list(range(n_s))
    t_items = list(range(100, 100 + n_t))
    categories = [f"c{i}" for i in range(n_categories)]
    s_catalog = ItemCatalog(
        {
            "A": {i: int(rng.randint(low, high + 1)) for i in s_items},
            "C": {i: categories[rng.randint(n_categories)] for i in s_items},
        }
    )
    t_catalog = ItemCatalog(
        {
            "B": {i: int(rng.randint(low, high + 1)) for i in t_items},
            "C": {i: categories[rng.randint(n_categories)] for i in t_items},
        }
    )
    domains = {
        "S": Domain.items(s_catalog, name="TinyS"),
        "T": Domain.items(t_catalog, name="TinyT"),
    }

    transactions: Dict[str, List[Tuple[int, ...]]] = {}
    frequent: Dict[str, Dict[Itemset, int]] = {}
    frequent_by_size: Dict[str, Dict[int, List[Itemset]]] = {}
    for var, items in (("S", s_items), ("T", t_items)):
        rows: List[Tuple[int, ...]] = []
        for __ in range(n_transactions):
            mask = rng.uniform(size=len(items)) < rng.uniform(0.2, 0.8)
            rows.append(tuple(item for item, keep in zip(items, mask) if keep))
        transactions[var] = rows
        mined = mine_frequent(rows, items, minsup_count, var=var)
        frequent[var] = mined.all_sets()
        by_size: Dict[int, List[Itemset]] = {}
        for itemset in frequent[var]:
            by_size.setdefault(len(itemset), []).append(itemset)
        frequent_by_size[var] = by_size
    return TinyScenario(
        domains=domains,
        frequent=frequent,
        frequent_by_size=frequent_by_size,
        transactions=transactions,
    )
