"""Synthetic data generation.

* :mod:`repro.datagen.quest` — a reimplementation of the IBM Almaden
  Quest transaction generator [Agrawal & Srikant 1994] the paper uses;
* :mod:`repro.datagen.iteminfo` — price/type attribute generators for the
  ``itemInfo(Item, Type, Price)`` relation, including the controlled
  Type-overlap construction the Section 7.2 experiments need;
* :mod:`repro.datagen.workloads` — named, seeded workloads matching each
  experiment in Section 7.
"""

from repro.datagen.iteminfo import (
    normal_prices,
    typed_catalog_with_overlap,
    uniform_prices,
)
from repro.datagen.quest import QuestParameters, generate_quest
from repro.datagen.workloads import (
    cascade_workload,
    fig8a_workload,
    fig8b_workload,
    jmax_workload,
    quickstart_workload,
)

__all__ = [
    "normal_prices",
    "typed_catalog_with_overlap",
    "uniform_prices",
    "QuestParameters",
    "generate_quest",
    "cascade_workload",
    "fig8a_workload",
    "fig8b_workload",
    "jmax_workload",
    "quickstart_workload",
]
