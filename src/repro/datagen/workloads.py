"""Named, seeded workloads for the paper's experiments (Section 7).

Each builder returns a :class:`Workload` bundling the transaction
database, item catalog, variable domains and the constraint strings of
one experiment family, so examples, tests and benchmarks construct the
exact same inputs.

Scales are laptop-sized (the paper used 100k transactions on a SPARC-10;
the pure-Python substrate targets the same *relative* behaviour at a few
thousand transactions — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.query import CFQ
from repro.datagen.iteminfo import (
    normal_prices,
    typed_catalog_with_overlap,
    uniform_prices,
)
from repro.datagen.quest import QuestParameters, generate_quest
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.db.transactions import TransactionDatabase


@dataclass
class Workload:
    """A ready-to-run experiment input."""

    name: str
    db: TransactionDatabase
    catalog: ItemCatalog
    domains: Dict[str, Domain]
    minsup: Union[float, Dict[str, float]]
    constraints: List[str]
    description: str = ""
    max_level: Optional[int] = None

    def cfq(
        self,
        constraints: Optional[Sequence[str]] = None,
        minsup: Optional[Union[float, Dict[str, float]]] = None,
    ) -> CFQ:
        """Build the workload's CFQ (optionally overriding parts)."""
        return CFQ(
            domains=self.domains,
            minsup=minsup if minsup is not None else self.minsup,
            constraints=list(constraints) if constraints is not None else self.constraints,
            max_level=self.max_level,
        )


# ----------------------------------------------------------------------
# Figure 8(a) / Section 7.1: single quasi-succinct 2-var constraint
# ----------------------------------------------------------------------
def fig8a_workload(
    overlap_pct: float,
    s_price_range: Tuple[float, float] = (400.0, 1000.0),
    n_items: int = 600,
    n_transactions: int = 4000,
    minsup: float = 0.010,
    seed: int = 8,
) -> Workload:
    """The Section 7.1 setup: ``max(S.Price) <= min(T.Price)``.

    ``S`` ranges over one half of the item universe, priced uniformly in
    ``s_price_range``; ``T`` over the other half, priced in ``[0, v]``
    where ``v`` realizes the requested percentage overlap between the two
    price ranges (``x = 100 * (v - s_low) / (s_high - s_low)``, the
    paper's x-axis).
    """
    s_low, s_high = s_price_range
    v = s_low + overlap_pct / 100.0 * (s_high - s_low)
    half = n_items // 2
    s_items = list(range(half))
    t_items = list(range(half, n_items))
    prices = {}
    prices.update(uniform_prices(s_items, s_low, s_high, seed=seed))
    prices.update(uniform_prices(t_items, 0.0, v, seed=seed + 1))
    catalog = ItemCatalog({"Price": prices})
    db = generate_quest(
        QuestParameters(
            n_transactions=n_transactions,
            avg_transaction_size=10,
            avg_pattern_size=4,
            n_patterns=300,
            n_items=n_items,
            seed=seed + 2,
        )
    )
    domains = {
        "S": Domain.items(catalog, name="ItemS", subset=s_items),
        "T": Domain.items(catalog, name="ItemT", subset=t_items),
    }
    return Workload(
        name=f"fig8a-overlap{overlap_pct:g}",
        db=db,
        catalog=catalog,
        domains=domains,
        minsup=minsup,
        constraints=["max(S.Price) <= min(T.Price)"],
        description=(
            f"Section 7.1: S priced U{s_price_range}, T priced U[0, {v:g}] "
            f"({overlap_pct:g}% range overlap)"
        ),
    )


# ----------------------------------------------------------------------
# Figure 8(b) / Section 7.2: 2-var on top of 1-var constraints
# ----------------------------------------------------------------------
def fig8b_workload(
    type_overlap_pct: float,
    s_price_min: float = 400.0,
    t_price_max: float = 600.0,
    n_items: int = 600,
    n_transactions: int = 4000,
    minsup: float = 0.010,
    n_types_per_side: int = 10,
    seed: int = 82,
) -> Workload:
    """The Section 7.2 setup: range 1-var constraints plus
    ``S.Type = T.Type``.

    Both variables range over the full item universe; the 1-var
    constraints restrict ``S`` to ``[s_price_min, 1000]`` and ``T`` to
    ``[0, t_price_max]``; the Type vocabulary occurring in the S band
    overlaps that of the T band by exactly ``type_overlap_pct`` percent
    (see :func:`~repro.datagen.iteminfo.typed_catalog_with_overlap`).
    """
    catalog = typed_catalog_with_overlap(
        n_items=n_items,
        s_price_range=(s_price_min, 1000.0),
        t_price_range=(0.0, t_price_max),
        overlap_pct=type_overlap_pct,
        n_types_per_side=n_types_per_side,
        seed=seed + 1,
    )
    db = generate_quest(
        QuestParameters(
            n_transactions=n_transactions,
            avg_transaction_size=10,
            avg_pattern_size=4,
            n_patterns=300,
            n_items=n_items,
            seed=seed + 2,
        )
    )
    item_domain = Domain.items(catalog)
    return Workload(
        name=f"fig8b-overlap{type_overlap_pct:g}",
        db=db,
        catalog=catalog,
        domains={"S": item_domain, "T": item_domain},
        minsup=minsup,
        constraints=[
            f"min(S.Price) >= {s_price_min:g}",
            f"max(T.Price) <= {t_price_max:g}",
            "S.Type = T.Type",
        ],
        description=(
            f"Section 7.2: S.Price in [{s_price_min:g},1000], T.Price in "
            f"[0,{t_price_max:g}], Type overlap {type_overlap_pct:g}%"
        ),
    )


# ----------------------------------------------------------------------
# Section 7.3: sum(S.Price) <= sum(T.Price) with Jmax pruning
# ----------------------------------------------------------------------
def jmax_workload(
    t_price_mean: float,
    core_size: int = 12,
    n_s_items: int = 24,
    n_t_items: int = 60,
    n_transactions: int = 600,
    core_probability: float = 0.3,
    t_pattern_size: int = 5,
    n_t_patterns: int = 8,
    minsup: Optional[Dict[str, float]] = None,
    seed: int = 73,
) -> Workload:
    """The Section 7.3 setup: ``sum(S.Price) <= sum(T.Price)``.

    S prices are Normal(1000, 100); T prices Normal(``t_price_mean``,
    100).  The S side uses a low support threshold and a correlated "core
    block" of items so high-cardinality frequent S-sets exist (the paper
    reports maximum cardinality 14 — the default here is 12 to keep the
    pure-Python baseline enumerable), which is what gives the iterative
    ``V^k`` series something to prune.  The T side carries a pool of
    patterns of size ``t_pattern_size``, so the largest frequent T-set
    sums scale with ``t_price_mean`` — the knob the paper's 7.3 table
    turns.
    """
    rng = np.random.RandomState(seed)
    s_items = list(range(n_s_items))
    t_items = list(range(n_s_items, n_s_items + n_t_items))
    prices: Dict[int, float] = {}
    prices.update(normal_prices(s_items, 1000.0, 100.0, seed=seed))
    prices.update(normal_prices(t_items, t_price_mean, 100.0, seed=seed + 1))
    catalog = ItemCatalog({"Price": prices})

    core = s_items[:core_size]
    other_s = s_items[core_size:]
    t_patterns = [
        [int(i) for i in rng.choice(t_items, size=t_pattern_size, replace=False)]
        for __ in range(n_t_patterns)
    ]
    transactions: List[List[int]] = []
    for __ in range(n_transactions):
        transaction: List[int] = []
        if rng.uniform() < core_probability:
            # A core transaction: the whole block, with light corruption.
            transaction.extend(i for i in core if rng.uniform() > 0.05)
        else:
            n_random = rng.randint(0, 3)
            transaction.extend(
                int(i) for i in rng.choice(s_items, size=n_random, replace=False)
            )
        if other_s and rng.uniform() < 0.3:
            transaction.append(int(other_s[rng.randint(len(other_s))]))
        pattern = t_patterns[rng.randint(n_t_patterns)]
        transaction.extend(i for i in pattern if rng.uniform() > 0.15)
        n_t = rng.randint(0, 3)
        transaction.extend(
            int(i) for i in rng.choice(t_items, size=n_t, replace=False)
        )
        transactions.append(sorted(set(transaction)))
    db = TransactionDatabase(transactions)
    domains = {
        "S": Domain.items(catalog, name="ItemS", subset=s_items),
        "T": Domain.items(catalog, name="ItemT", subset=t_items),
    }
    return Workload(
        name=f"jmax-tmean{t_price_mean:g}",
        db=db,
        catalog=catalog,
        domains=domains,
        minsup=minsup or {"S": 0.18, "T": 0.02},
        constraints=["sum(S.Price) <= sum(T.Price)"],
        description=(
            f"Section 7.3: S ~ Normal(1000, 100), T ~ Normal({t_price_mean:g}, 100), "
            f"core block of {core_size} S-items"
        ),
    )


# ----------------------------------------------------------------------
# Cascade: a workload where iterated reduction provably helps
# ----------------------------------------------------------------------
def cascade_workload(
    n_group: int = 120,
    n_transactions: int = 3000,
    minsup: float = 0.012,
    seed: int = 51,
) -> Workload:
    """A constraint cascade that a single reduction round cannot resolve.

    Three item groups over types {alpha*, beta*}:

    * group A — alpha types, priced U[450, 550] (eligible for both sides);
    * group B_S — beta types, priced U[600, 1000] (S band only);
    * group B_T — beta types, priced U[0, 350] (T band only).

    Query: ``min(S.Price) >= 400 & max(T.Price) <= 600 & S.Type = T.Type
    & min(S.Price) <= min(T.Price)``.

    Round 1 of the reduction leaves S's type filter at {alpha, beta}
    (both type groups still occur in T's constrained L1), but the *price*
    reduction of the second 2-var constraint forces T items above
    min(L1S.Price) ≈ 450, which eliminates every beta-typed T item.
    Only a second round can propagate that loss into S's type filter and
    drop group B_S — the cascade iterated reduction exists for.
    """
    rng = np.random.RandomState(seed)
    a_items = list(range(n_group))
    bs_items = list(range(n_group, 2 * n_group))
    bt_items = list(range(2 * n_group, 3 * n_group))
    alpha = [f"alpha_{i}" for i in range(5)]
    beta = [f"beta_{i}" for i in range(5)]
    prices: Dict[int, float] = {}
    types: Dict[int, str] = {}
    for item in a_items:
        prices[item] = float(rng.uniform(450, 550))
        types[item] = alpha[rng.randint(len(alpha))]
    for item in bs_items:
        prices[item] = float(rng.uniform(600, 1000))
        types[item] = beta[rng.randint(len(beta))]
    for item in bt_items:
        prices[item] = float(rng.uniform(0, 350))
        types[item] = beta[rng.randint(len(beta))]
    catalog = ItemCatalog({"Price": prices, "Type": types})
    db = generate_quest(
        QuestParameters(
            n_transactions=n_transactions,
            avg_transaction_size=10,
            avg_pattern_size=4,
            n_patterns=200,
            n_items=3 * n_group,
            seed=seed + 1,
        )
    )
    item_domain = Domain.items(catalog)
    return Workload(
        name="cascade",
        db=db,
        catalog=catalog,
        domains={"S": item_domain, "T": item_domain},
        minsup=minsup,
        constraints=[
            "min(S.Price) >= 400",
            "max(T.Price) <= 600",
            "S.Type = T.Type",
            "min(S.Price) <= min(T.Price)",
        ],
        description="constraint cascade resolvable only by iterated reduction",
    )


# ----------------------------------------------------------------------
# Quickstart: the paper's market-basket motivating examples
# ----------------------------------------------------------------------
def quickstart_workload(
    n_transactions: int = 1500,
    seed: int = 7,
) -> Workload:
    """A small market-basket catalog (snacks, beers, ...) for examples.

    Matches the introduction's running example: find pairs of frequent
    sets of cheaper snack items and more expensive beer items.
    """
    type_names = ["snacks", "beers", "wine", "dairy", "frozen", "produce"]
    rng = np.random.RandomState(seed)
    n_items = 60
    items = list(range(n_items))
    types = {i: type_names[i % len(type_names)] for i in items}
    base_price = {"snacks": 3, "beers": 9, "wine": 15, "dairy": 4, "frozen": 6,
                  "produce": 2}
    prices = {
        i: float(max(1, round(rng.normal(base_price[types[i]] * 10, 8))))
        for i in items
    }
    catalog = ItemCatalog({"Type": types, "Price": prices})
    db = generate_quest(
        QuestParameters(
            n_transactions=n_transactions,
            avg_transaction_size=8,
            avg_pattern_size=3,
            n_patterns=60,
            n_items=n_items,
            seed=seed,
        )
    )
    item_domain = Domain.items(catalog)
    return Workload(
        name="quickstart",
        db=db,
        catalog=catalog,
        domains={"S": item_domain, "T": item_domain},
        minsup=0.02,
        constraints=[
            "S.Type = {snacks}",
            "T.Type = {beers}",
            "max(S.Price) <= min(T.Price)",
        ],
        description="Cheap snacks leading to expensive beers (Section 2)",
    )


# ----------------------------------------------------------------------
# Serving workloads: interactive refinement sessions
# ----------------------------------------------------------------------
def refinement_queries(
    workload: Workload,
    steps: int = 4,
    relax: float = 0.5,
) -> List[CFQ]:
    """An interactive-refinement session over one workload's dataset.

    Models an analyst converging on the workload's query: the session
    opens with a broad scan (support threshold relaxed by ``relax``, only
    the first constraint applied) and tightens step by step — raising
    minsup back toward the workload's own and layering the remaining
    constraints in — until the final step *is* ``workload.cfq()``.

    Every query shares the dataset and the first query has the weakest
    threshold, so the serving layer's batch executor answers the whole
    session from one frequency skeleton mined for step one (the
    union-of-thresholds rule); this is the "interactive refinement"
    benchmark workload.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    base = workload.minsup
    scale_minsup = (
        (lambda fraction: {var: s * fraction for var, s in base.items()})
        if isinstance(base, dict)
        else (lambda fraction: base * fraction)
    )
    queries: List[CFQ] = []
    n_constraints = len(workload.constraints)
    for step in range(steps):
        progress = step / max(steps - 1, 1)  # 0.0 -> 1.0 across the session
        fraction = relax + (1.0 - relax) * progress
        n_applied = max(1, round(n_constraints * (step + 1) / steps))
        queries.append(
            workload.cfq(
                constraints=workload.constraints[:n_applied],
                minsup=scale_minsup(fraction),
            )
        )
    return queries
