"""Attribute generation for the ``itemInfo(Item, Type, Price)`` relation.

The Section 7 experiments control the *value structure* of the item
catalog: price ranges per item segment (7.1), Type-vocabulary overlap
between price bands (7.2), and normally distributed prices with shifted
means (7.3).  These builders produce exactly those structures, seeded.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.db.catalog import ItemCatalog
from repro.errors import DataError


def uniform_prices(
    items: Sequence[int], low: float, high: float, seed: int = 0
) -> Dict[int, float]:
    """Uniform prices in ``[low, high]`` for the given items."""
    if high < low:
        raise DataError(f"empty price range [{low}, {high}]")
    rng = np.random.RandomState(seed)
    return {item: float(p) for item, p in zip(items, rng.uniform(low, high, len(items)))}


def normal_prices(
    items: Sequence[int],
    mean: float,
    sd: float,
    seed: int = 0,
    minimum: float = 1.0,
) -> Dict[int, float]:
    """Normal prices (clipped below at ``minimum``), as in Section 7.3."""
    rng = np.random.RandomState(seed)
    draws = np.maximum(minimum, rng.normal(mean, sd, len(items)))
    return {item: float(p) for item, p in zip(items, draws)}


def typed_catalog_with_overlap(
    n_items: int,
    s_price_range: Tuple[float, float],
    t_price_range: Tuple[float, float],
    overlap_pct: float,
    n_types_per_side: int = 10,
    price_cap: float = 1000.0,
    seed: int = 0,
) -> ItemCatalog:
    """Catalog whose Type vocabulary overlaps controllably across the two
    variables' price bands (the Section 7.2 construction).

    The experiment varies "the percentage overlap between the Types of
    items of T (price in ``t_price_range``) and the Types of items of S
    (price in ``s_price_range``)".  To keep that overlap *exactly*
    controlled for any pair of (possibly overlapping) ranges, types are
    assigned first and prices conditioned on the type group:

    * ``overlap_pct`` percent of each side's ``n_types_per_side`` types
      are **shared**;
    * half the items belong to the S population and half to the T
      population; each item draws a type uniformly from its side's
      vocabulary, so ``overlap_pct`` percent of each side's *items* carry
      a shared type — the quantity the 2-var type filter prunes on;
    * an item with an exclusive type is priced inside its side's range
      but *outside* the other side's, so exclusive types never leak into
      the other band; shared-typed items are priced anywhere in their
      side's range.
    """
    if not 0.0 <= overlap_pct <= 100.0:
        raise DataError(f"overlap_pct must be in [0, 100], got {overlap_pct}")
    s_exclusive = _range_minus(s_price_range, t_price_range)
    t_exclusive = _range_minus(t_price_range, s_price_range)
    if s_exclusive is None or t_exclusive is None:
        raise DataError(
            "the S and T price ranges must each have an exclusive portion"
        )

    rng = np.random.RandomState(seed)
    n_shared = int(round(n_types_per_side * overlap_pct / 100.0))
    shared = [f"type_shared_{i}" for i in range(n_shared)]
    s_only = [f"type_s_{i}" for i in range(n_types_per_side - n_shared)]
    t_only = [f"type_t_{i}" for i in range(n_types_per_side - n_shared)]

    types: Dict[int, str] = {}
    prices: Dict[int, float] = {}
    for item in range(n_items):
        s_side = item % 2 == 0
        vocab = shared + (s_only if s_side else t_only)
        chosen = vocab[rng.randint(len(vocab))]
        types[item] = chosen
        own_range = s_price_range if s_side else t_price_range
        exclusive = s_exclusive if s_side else t_exclusive
        in_shared = chosen in shared
        low, high = own_range if in_shared else exclusive
        prices[item] = float(rng.uniform(low, high))
    return ItemCatalog({"Price": prices, "Type": types})


def _range_minus(
    keep: Tuple[float, float], remove: Tuple[float, float]
) -> Optional[Tuple[float, float]]:
    """The larger remaining piece of ``keep`` after removing ``remove``
    (None when nothing remains)."""
    low, high = keep
    r_low, r_high = remove
    left = (low, min(high, r_low))
    right = (max(low, r_high), high)
    pieces = [p for p in (left, right) if p[1] > p[0]]
    if not pieces:
        return None
    return max(pieces, key=lambda p: p[1] - p[0])


def segmented_prices(
    segments: Sequence[Tuple[Sequence[int], float, float]],
    seed: int = 0,
) -> Dict[int, float]:
    """Uniform prices per item segment: ``[(items, low, high), ...]``."""
    prices: Dict[int, float] = {}
    for index, (items, low, high) in enumerate(segments):
        prices.update(uniform_prices(items, low, high, seed=seed + index))
    return prices
