"""Benchmark harness: experiment definitions, runners and reporting.

Each table and figure of the paper's Section 7 has one experiment
function in :mod:`repro.bench.experiments`; ``benchmarks/`` wraps them in
pytest-benchmark targets, and the examples reuse them for narrative
output.
"""

from repro.bench.harness import StrategyRun, compare_strategies, run_strategy
from repro.bench.report import render_series, render_table
from repro.bench.trend import (
    DEFAULT_THRESHOLD,
    Regression,
    TrendMetric,
    TrendRecord,
    compare_records,
    find_prior,
    gate,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "Regression",
    "StrategyRun",
    "TrendMetric",
    "TrendRecord",
    "compare_records",
    "compare_strategies",
    "find_prior",
    "gate",
    "render_series",
    "render_table",
    "run_strategy",
]
