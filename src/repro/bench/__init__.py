"""Benchmark harness: experiment definitions, runners and reporting.

Each table and figure of the paper's Section 7 has one experiment
function in :mod:`repro.bench.experiments`; ``benchmarks/`` wraps them in
pytest-benchmark targets, and the examples reuse them for narrative
output.
"""

from repro.bench.harness import StrategyRun, compare_strategies, run_strategy
from repro.bench.report import render_series, render_table

__all__ = [
    "StrategyRun",
    "compare_strategies",
    "run_strategy",
    "render_series",
    "render_table",
]
