"""One function per table/figure of the paper's Section 7.

Every function returns an :class:`ExperimentResult` whose ``rows`` carry
the reproduced numbers and whose ``paper`` field records what the paper
reported, so benchmarks can print both side by side and tests can assert
the qualitative *shape* (who wins, monotonicity, crossovers) without
pinning fragile absolute values.

All experiments are seeded and deterministic.  ``scale`` trades fidelity
for speed: ``"full"`` is the benchmark default; ``"smoke"`` shrinks the
databases for use inside the test suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import emit_report, run_strategy
from repro.bench.report import render_table
from repro.core.ccc import audit_ccc
from repro.datagen.workloads import (
    cascade_workload,
    fig8a_workload,
    fig8b_workload,
    jmax_workload,
)
from repro.mining.backends import make_backend

_SCALES = {
    "full": {"n_transactions": 4000, "n_items": 600},
    "smoke": {"n_transactions": 800, "n_items": 200},
}


@dataclass
class ExperimentResult:
    """A reproduced table: headers, measured rows, and the paper's rows."""

    experiment: str
    headers: Sequence[str]
    rows: List[List[object]]
    paper: str = ""
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Table text plus the paper's reference numbers."""
        parts = [render_table(self.headers, self.rows, title=self.experiment)]
        if self.paper:
            parts.append(f"paper reported: {self.paper}")
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> List:
        """One column of the measured rows, by header name."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]


def _scale_kwargs(scale: str) -> Dict[str, int]:
    try:
        return dict(_SCALES[scale])
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; use one of {sorted(_SCALES)}")


def _strategy(
    name: str,
    db,
    cfq,
    *,
    report_dir: Optional[str] = None,
    experiment: Optional[str] = None,
    deadline: Optional[float] = None,
    notes: Optional[List[str]] = None,
    **options,
):
    """:func:`run_strategy` plus optional run-report emission.

    When ``report_dir`` is set, the run is traced and one
    :class:`~repro.obs.report.RunReport` JSON is written per strategy run
    (the same document the CLI's ``--trace-out`` produces).  When a
    ``deadline`` trips the run guard, the partial run is recorded in
    ``notes`` (rendered under the table) instead of aborting the table.
    """
    run = run_strategy(name, db, cfq, trace=report_dir is not None,
                       deadline=deadline, **options)
    if run.is_partial and notes is not None:
        trip = run.trip
        detail = trip.summary() if trip is not None else "interrupted"
        notes.append(f"{name}{f' [{experiment}]' if experiment else ''}: "
                     f"PARTIAL — {detail}")
    if report_dir:
        emit_report(run, report_dir, experiment=experiment)
    return run


# ----------------------------------------------------------------------
# Figure 8(a): quasi-succinctness, 2-var constraint only (Section 7.1)
# ----------------------------------------------------------------------
FIG8A_OVERLAPS = (16.6, 33.3, 50.0, 66.7, 83.4)


def fig8a_speedups(
    overlaps: Sequence[float] = FIG8A_OVERLAPS,
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Speedup of exploiting quasi-succinctness vs Apriori+, by overlap."""
    rows: List[List[object]] = []
    notes: List[str] = []
    for overlap in overlaps:
        workload = fig8a_workload(overlap, **_scale_kwargs(scale))
        cfq = workload.cfq()
        tag = f"fig8a-{overlap:g}"
        optimized = _strategy("quasi-succinct", workload.db, cfq,
                              report_dir=report_dir, experiment=tag,
                              deadline=deadline, notes=notes)
        baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                             report_dir=report_dir, experiment=tag,
                             deadline=deadline, notes=notes)
        rows.append(
            [
                overlap,
                round(optimized.speedup_over(baseline), 2),
                optimized.counters.total_counted,
                baseline.counters.total_counted,
            ]
        )
    return ExperimentResult(
        experiment="Figure 8(a): max(S.Price) <= min(T.Price), speedup vs Apriori+",
        headers=["overlap_pct", "speedup", "sets_counted_opt", "sets_counted_base"],
        rows=rows,
        paper="~4x at 16.6% overlap, decreasing to >1.5x at 83.4%",
        notes=notes,
    )


def fig8a_level_table(
    overlap: float = 16.6,
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """The Section 7.1 per-level a/b table (valid/total frequent sets)."""
    workload = fig8a_workload(overlap, **_scale_kwargs(scale))
    cfq = workload.cfq()
    tag = f"fig8a-levels-{overlap:g}"
    notes: List[str] = []
    optimized = _strategy("quasi-succinct", workload.db, cfq,
                          report_dir=report_dir, experiment=tag,
                          deadline=deadline, notes=notes)
    baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                         report_dir=report_dir, experiment=tag,
                         deadline=deadline, notes=notes)
    rows: List[List[object]] = []
    for var in cfq.variables:
        opt_levels = optimized.result.raw.result_for(var).frequent
        base_levels = baseline.result.lattices[var].frequent
        deepest = max([k for k, v in base_levels.items() if v], default=0)
        entries = [
            f"{len(opt_levels.get(k, {}))}/{len(base_levels.get(k, {}))}"
            for k in range(1, deepest + 1)
        ]
        rows.append([f"for {var}"] + entries + [""] * (8 - len(entries)))
    return ExperimentResult(
        experiment=f"Section 7.1 level table at {overlap}% overlap "
        f"(valid/total frequent sets per level)",
        headers=["var"] + [f"L{k}" for k in range(1, 9)],
        rows=rows,
        paper="S: 425/425 153/372 54/179 21/122 6/48 1/8; "
        "T: 402/402 112/414 8/181 0/123 0/48 0/8",
        notes=notes,
    )


FIG8A_RANGES = ((300.0, 1000.0), (400.0, 1000.0), (500.0, 1000.0))


def fig8a_range_table(
    overlap: float = 50.0,
    ranges: Sequence[Tuple[float, float]] = FIG8A_RANGES,
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Section 7.1's range table: speedup at 50% overlap for widening
    S.Price ranges."""
    rows: List[List[object]] = []
    notes: List[str] = []
    for s_range in ranges:
        workload = fig8a_workload(overlap, s_price_range=s_range, **_scale_kwargs(scale))
        cfq = workload.cfq()
        tag = f"fig8a-range-{s_range[0]:g}-{s_range[1]:g}"
        optimized = _strategy("quasi-succinct", workload.db, cfq,
                              report_dir=report_dir, experiment=tag,
                              deadline=deadline, notes=notes)
        baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                             report_dir=report_dir, experiment=tag,
                             deadline=deadline, notes=notes)
        rows.append(
            [f"[{s_range[0]:g},{s_range[1]:g}]",
             round(optimized.speedup_over(baseline), 2)]
        )
    return ExperimentResult(
        experiment=f"Section 7.1 range table ({overlap:g}% overlap)",
        headers=["S.Price range", "speedup"],
        rows=rows,
        paper="[300,1000]: 1.52x, [400,1000]: 1.84x, [500,1000]: 2.07x "
        "(wider range => less selective => smaller speedup)",
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figure 8(b): 2-var on top of 1-var constraints (Section 7.2)
# ----------------------------------------------------------------------
FIG8B_OVERLAPS = (20.0, 40.0, 60.0, 80.0)


def fig8b_speedups(
    overlaps: Sequence[float] = FIG8B_OVERLAPS,
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Three strategies vs Type overlap: Apriori+, CAP (1-var only), and
    the full optimizer (1-var + quasi-succinct 2-var)."""
    rows: List[List[object]] = []
    notes: List[str] = []
    for overlap in overlaps:
        workload = fig8b_workload(overlap, **_scale_kwargs(scale))
        cfq = workload.cfq()
        tag = f"fig8b-{overlap:g}"
        baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                             report_dir=report_dir, experiment=tag,
                             deadline=deadline, notes=notes)
        cap_only = _strategy(
            "cap-1var", workload.db, cfq, use_reduction=False, use_jmax=False,
            report_dir=report_dir, experiment=tag,
            deadline=deadline, notes=notes,
        )
        full = _strategy("optimizer", workload.db, cfq,
                         report_dir=report_dir, experiment=tag,
                         deadline=deadline, notes=notes)
        rows.append(
            [
                overlap,
                round(cap_only.speedup_over(baseline), 2),
                round(full.speedup_over(baseline), 2),
                round(cap_only.cost / full.cost, 2),
            ]
        )
    return ExperimentResult(
        experiment="Figure 8(b): T.Price/S.Price ranges + S.Type = T.Type",
        headers=["overlap_pct", "speedup_1var_only", "speedup_1var_2var", "ratio"],
        rows=rows,
        paper="1-var only: flat ~1.5x; 1-var + 2-var: ~20x at 20% overlap, "
        "~6x at 40%, decreasing with overlap",
        notes=notes,
    )


FIG8B_RANGES = (
    ((100.0, 1000.0), (0.0, 900.0)),
    ((400.0, 1000.0), (0.0, 600.0)),
    ((800.0, 1000.0), (0.0, 200.0)),
)


def fig8b_range_table(
    overlap: float = 40.0,
    ranges: Sequence[Tuple[Tuple[float, float], Tuple[float, float]]] = FIG8B_RANGES,
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Section 7.2's range table: both speedups and their ratio as the
    1-var ranges widen."""
    rows: List[List[object]] = []
    notes: List[str] = []
    for (s_range, t_range) in ranges:
        workload = fig8b_workload(
            overlap,
            s_price_min=s_range[0],
            t_price_max=t_range[1],
            **_scale_kwargs(scale),
        )
        cfq = workload.cfq()
        tag = f"fig8b-range-{s_range[0]:g}-{t_range[1]:g}"
        baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                             report_dir=report_dir, experiment=tag,
                             deadline=deadline, notes=notes)
        cap_only = _strategy(
            "cap-1var", workload.db, cfq, use_reduction=False, use_jmax=False,
            report_dir=report_dir, experiment=tag,
            deadline=deadline, notes=notes,
        )
        full = _strategy("optimizer", workload.db, cfq,
                         report_dir=report_dir, experiment=tag,
                         deadline=deadline, notes=notes)
        speed_1 = cap_only.speedup_over(baseline)
        speed_2 = full.speedup_over(baseline)
        rows.append(
            [
                f"[{s_range[0]:g},1000]",
                f"[0,{t_range[1]:g}]",
                round(speed_1, 2),
                round(speed_2, 2),
                round(speed_2 / speed_1, 2),
            ]
        )
    return ExperimentResult(
        experiment=f"Section 7.2 range table ({overlap:g}% Type overlap)",
        headers=["S.Price", "T.Price", "speedup_1var", "speedup_1and2var", "ratio"],
        rows=rows,
        paper="[100,1000]/[0,900]: 1.2x vs 5x (4.17); [400,1000]/[0,600]: "
        "1.5x vs 6x (4.0); [800,1000]/[0,200]: 20x vs 37.5x (1.875)",
        notes=notes,
    )


# ----------------------------------------------------------------------
# Section 7.3: sum(S.Price) <= sum(T.Price) with Jmax
# ----------------------------------------------------------------------
JMAX_MEANS = (400.0, 600.0, 800.0, 1000.0)


def jmax_table(
    means: Sequence[float] = JMAX_MEANS,
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Speedup of iterative Jmax pruning vs Apriori+ by mean T price."""
    rows: List[List[object]] = []
    notes: List[str] = []
    for mean in means:
        workload = jmax_workload(mean) if scale == "full" else jmax_workload(
            mean, n_transactions=300, core_size=10
        )
        cfq = workload.cfq()
        tag = f"jmax-{mean:g}"
        optimized = _strategy("jmax", workload.db, cfq,
                              report_dir=report_dir, experiment=tag,
                              deadline=deadline, notes=notes)
        baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                             report_dir=report_dir, experiment=tag,
                             deadline=deadline, notes=notes)
        histories = optimized.result.raw.bound_histories
        final_bound = (
            round(list(histories.values())[0][-1][1]) if histories else None
        )
        rows.append(
            [
                mean,
                round(optimized.speedup_over(baseline), 2),
                optimized.counters.counted_for("S"),
                baseline.counters.counted_for("S"),
                final_bound,
            ]
        )
    return ExperimentResult(
        experiment="Section 7.3: sum(S.Price) <= sum(T.Price), Jmax pruning",
        headers=["t_price_mean", "speedup", "s_sets_counted", "s_sets_base",
                 "final_bound"],
        rows=rows,
        paper="mean 400: 3.14x, 600: 1.91x, 800: 1.36x, 1000: 1.11x "
        "(less selective => smaller speedup)",
        notes=notes,
    )


# ----------------------------------------------------------------------
# ccc audit and ablations
# ----------------------------------------------------------------------
def ccc_experiment(
    scale: str = "smoke",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Audit Theorem 4 / Corollary 2 on a quasi-succinct query, plus the
    FM and Apriori+ contrast.

    ``deadline`` is accepted for CLI uniformity but unused: the audit is
    a single small fixed-size run.
    """
    from repro.datagen.workloads import quickstart_workload

    workload = quickstart_workload(n_transactions=400)
    cfq = workload.cfq()
    result, report = audit_ccc(workload.db, cfq)
    rows = [
        [
            "optimizer",
            report.condition1_mgf,
            report.condition1_complete,
            report.condition2,
            report.ccc_optimal,
        ]
    ]
    return ExperimentResult(
        experiment="ccc-optimality audit (Definition 6)",
        headers=["strategy", "cond1_only_valid", "cond1_complete", "cond2",
                 "ccc_optimal"],
        rows=rows,
        paper="Corollary 2: the optimizer's strategy is ccc-optimal for "
        "1-var succinct + 2-var quasi-succinct constraints",
    )


def ablation_table(
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Design-choice ablations: reduction, Jmax, dovetailing."""
    rows: List[List[object]] = []
    notes: List[str] = []

    workload = fig8a_workload(33.3, **_scale_kwargs(scale))
    cfq = workload.cfq()
    baseline = _strategy("apriori+", workload.db, cfq, kind="apriori_plus",
                         report_dir=report_dir, experiment="ablation-reduction",
                         deadline=deadline, notes=notes)
    with_reduction = _strategy("reduction on", workload.db, cfq,
                               report_dir=report_dir,
                               experiment="ablation-reduction",
                               deadline=deadline, notes=notes)
    without_reduction = _strategy(
        "reduction off", workload.db, cfq, use_reduction=False,
        report_dir=report_dir, experiment="ablation-reduction",
        deadline=deadline, notes=notes,
    )
    rows.append(
        [
            "fig8a @33.3%",
            "quasi-succinct reduction",
            round(with_reduction.speedup_over(baseline), 2),
            round(without_reduction.speedup_over(baseline), 2),
        ]
    )

    jmax_wl = jmax_workload(600.0)
    jmax_cfq = jmax_wl.cfq()
    jmax_base = _strategy("apriori+", jmax_wl.db, jmax_cfq, kind="apriori_plus",
                          report_dir=report_dir, experiment="ablation-jmax",
                          deadline=deadline, notes=notes)
    jmax_on = _strategy("jmax on", jmax_wl.db, jmax_cfq,
                        report_dir=report_dir, experiment="ablation-jmax",
                        deadline=deadline, notes=notes)
    jmax_off = _strategy("jmax off", jmax_wl.db, jmax_cfq, use_jmax=False,
                         report_dir=report_dir, experiment="ablation-jmax",
                         deadline=deadline, notes=notes)
    rows.append(
        [
            "jmax @mean 600",
            "iterative Jmax pruning",
            round(jmax_on.speedup_over(jmax_base), 2),
            round(jmax_off.speedup_over(jmax_base), 2),
        ]
    )

    dovetailed = _strategy("dovetail", jmax_wl.db, jmax_cfq,
                           report_dir=report_dir, experiment="ablation-dovetail",
                           deadline=deadline, notes=notes)
    sequential = _strategy("sequential", jmax_wl.db, jmax_cfq, dovetail=False,
                           report_dir=report_dir, experiment="ablation-dovetail",
                           deadline=deadline, notes=notes)
    rows.append(
        [
            "jmax @mean 600 (scans)",
            "dovetailed shared scans",
            dovetailed.counters.scans,
            sequential.counters.scans,
        ]
    )

    cascade = cascade_workload(
        n_transactions=_scale_kwargs(scale)["n_transactions"]
    )
    cascade_cfq = cascade.cfq()
    cascade_base = _strategy(
        "apriori+", cascade.db, cascade_cfq, kind="apriori_plus",
        report_dir=report_dir, experiment="ablation-cascade",
        deadline=deadline, notes=notes,
    )
    one_round = _strategy(
        "1 round", cascade.db, cascade_cfq, reduction_rounds=1,
        report_dir=report_dir, experiment="ablation-cascade",
        deadline=deadline, notes=notes,
    )
    fixpoint = _strategy(
        "fixpoint", cascade.db, cascade_cfq, reduction_rounds=4,
        report_dir=report_dir, experiment="ablation-cascade",
        deadline=deadline, notes=notes,
    )
    rows.append(
        [
            "cascade",
            "iterated reduction (extension)",
            round(fixpoint.speedup_over(cascade_base), 2),
            round(one_round.speedup_over(cascade_base), 2),
        ]
    )
    return ExperimentResult(
        experiment="Ablations (speedup vs Apriori+ with feature on / off; "
        "last row compares scan counts)",
        headers=["workload", "feature", "on", "off"],
        rows=rows,
        paper="Section 5.2 argues dovetailing shares scans; Sections 4-5 "
        "attribute the speedups to reduction and iterative pruning; "
        "iterated reduction is this reproduction's extension",
        notes=notes,
    )


class _CountTimer:
    """Transparent backend proxy accumulating ``count()`` wall time.

    Whole-run wall time mixes counting with candidate generation,
    constraint checking, and pair formation, which caps the apparent
    speedup of a fast kernel; the ablation therefore also reports
    counting time alone, measured here.  The proxy forwards the full
    backend protocol (``count``, ``open``/``close`` lifecycle, ``name``,
    ``stats``), so it is indistinguishable from the wrapped backend to
    the drivers.
    """

    def __init__(self, backend):
        self._backend = backend
        self.count_seconds = 0.0

    def count(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return self._backend.count(*args, **kwargs)
        finally:
            self.count_seconds += time.perf_counter() - start

    def __getattr__(self, attr):
        return getattr(self._backend, attr)


def backend_table(
    scale: str = "full",
    parallel_workers: int = 4,
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Counting-backend comparison on the Figure 8(a) quest-generator
    workload: the hybrid enumerate/scan default vs the original Apriori
    hash tree vs vertical TID-lists vs the vectorized uint64 bitmap
    kernel vs transaction-sharded parallel counting (over the hybrid and
    bitmap kernels).  All produce identical answers; the table reports
    elementary probe counts, whole-run wall time, counting-only wall
    time (every ``backend.count`` call, measured through a transparent
    proxy), and both speedups over the serial hybrid baseline.
    Counting-only speedup is the honest kernel comparison — whole-run
    time is bounded below by the non-counting pipeline, which the kernel
    cannot touch.  The parallel runs execute inside one
    ``backend_scope``, so the pool is forked once for the whole run;
    pool lifecycle/failure stats and bitmap matrix-cache stats are
    appended as notes."""
    from repro.mining.backends import ParallelBackend, backend_scope

    workload = fig8a_workload(50.0, **_scale_kwargs(scale))
    cfq = workload.cfq()
    specs = [
        ("hybrid", "hybrid"),
        ("hashtree", "hashtree"),
        ("vertical", "vertical"),
        ("bitmap", "bitmap"),
        (
            f"parallel[{parallel_workers}]",
            ParallelBackend(workers=parallel_workers, shard_threshold=0),
        ),
        (
            f"parallel[{parallel_workers}]+bitmap",
            ParallelBackend(workers=parallel_workers, shard_threshold=0,
                            kernel="bitmap"),
        ),
    ]
    rows: List[List[object]] = []
    notes: List[str] = []
    reference = None
    hybrid_wall = None
    hybrid_count = None
    for name, backend in specs:
        timer = _CountTimer(make_backend(backend))
        with backend_scope(timer):
            run = _strategy(name, workload.db, cfq, backend=timer,
                            report_dir=report_dir, experiment="backends",
                            deadline=deadline, notes=notes)
        sizes = dict(run.frequent_sizes)
        if reference is None:
            reference = sizes
            hybrid_wall = run.wall_seconds
            hybrid_count = timer.count_seconds
        if not run.is_partial:
            assert sizes == reference, "backends must agree on the answer"
        speedup = hybrid_wall / run.wall_seconds if run.wall_seconds else 0.0
        count_speedup = (
            hybrid_count / timer.count_seconds if timer.count_seconds else 0.0
        )
        rows.append(
            [
                name,
                run.counters.subset_tests,
                round(run.wall_seconds, 3),
                round(speedup, 2),
                round(timer.count_seconds, 4),
                round(count_speedup, 2),
                sum(sizes.values()),
            ]
        )
        stats = getattr(timer, "stats", None)
        if stats is not None and getattr(stats, "levels", None):
            notes.append(f"{name}: {stats.summary()}")
    return ExperimentResult(
        experiment="Counting-backend ablation (Figure 8(a) workload, 50% overlap)",
        headers=[
            "backend",
            "probe_count",
            "wall_seconds",
            "speedup_vs_hybrid",
            "count_seconds",
            "count_speedup",
            "frequent_valid_sets",
        ],
        rows=rows,
        paper="the paper's C implementation used the Apriori hash tree [2]; "
        "this compares it against the hybrid, vertical, vectorized "
        "bitmap, and transaction-sharded parallel layouts",
        notes=notes,
    )


# ----------------------------------------------------------------------
# Serving layer: repeated queries and interactive refinement
# ----------------------------------------------------------------------
def serving_repeated_table(
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Repeated-query serving: identical queries, cold vs warm wall time.

    Each query is executed twice through one
    :class:`~repro.serve.QueryService` — the first run is cold (mined,
    then stored in the fingerprinted result cache), the second is warm
    (rebuilt from the cached artifact).  Answers and operation counters
    are bit-identical either way (the serving differential suite proves
    it), so the table reports wall time only.
    """
    from repro.datagen.workloads import quickstart_workload
    from repro.serve import QueryService

    n_transactions = 1500 if scale == "full" else 500
    workload = quickstart_workload(n_transactions=n_transactions)
    queries = [
        ("full query", workload.cfq()),
        ("types only", workload.cfq(constraints=workload.constraints[:2])),
        ("tight minsup", workload.cfq(minsup=0.04)),
    ]
    service = QueryService()
    rows: List[List[object]] = []
    notes: List[str] = []
    for label, cfq in queries:
        tag = f"serving-repeated-{label.replace(' ', '-')}"
        cold = _strategy(f"{label} (cold)", workload.db, cfq,
                         service=service, report_dir=report_dir,
                         experiment=tag, deadline=deadline, notes=notes)
        warm = _strategy(f"{label} (warm)", workload.db, cfq,
                         service=service, report_dir=report_dir,
                         experiment=tag, deadline=deadline, notes=notes)
        source = (warm.result.cache_info or {}).get("source", "cold")
        rows.append(
            [
                label,
                round(cold.wall_seconds, 4),
                round(warm.wall_seconds, 4),
                round(cold.wall_seconds / warm.wall_seconds, 1)
                if warm.wall_seconds else float("inf"),
                source,
            ]
        )
    notes.append(f"cache: {service.stats.summary()}")
    return ExperimentResult(
        experiment="Serving: repeated queries (cold vs warm wall time)",
        headers=["query", "cold_seconds", "warm_seconds", "speedup", "source"],
        rows=rows,
        paper="(no paper counterpart: the serving layer is this "
        "reproduction's extension; answers are bit-identical cold or warm)",
        notes=notes,
    )


def serving_refinement_table(
    scale: str = "full",
    report_dir: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ExperimentResult:
    """Interactive refinement served as a shared-scan batch.

    The session of :func:`~repro.datagen.workloads.refinement_queries`
    (broad scan tightening toward the workload query) is answered two
    ways: every step mined cold and independently, and the whole session
    as one batch — one frequency skeleton mined at the opening (weakest)
    threshold, every step served from it.
    """
    from repro.datagen.workloads import quickstart_workload, refinement_queries
    from repro.serve import QueryService

    n_transactions = 1500 if scale == "full" else 500
    workload = quickstart_workload(n_transactions=n_transactions)
    session = refinement_queries(workload)
    notes: List[str] = []
    cold_runs = [
        _strategy(f"step {i} (cold)", workload.db, cfq,
                  report_dir=report_dir,
                  experiment=f"serving-refine-{i}",
                  deadline=deadline, notes=notes)
        for i, cfq in enumerate(session, start=1)
    ]
    service = QueryService()
    batch = service.execute_batch(workload.db, session)
    rows: List[List[object]] = []
    for i, (cold, item) in enumerate(zip(cold_runs, batch.items), start=1):
        rows.append(
            [
                i,
                str(item.cfq)[:46],
                round(cold.wall_seconds, 4),
                round(item.wall_seconds, 4),
                item.source,
            ]
        )
    cold_total = sum(run.wall_seconds for run in cold_runs)
    batch_total = (
        sum(item.wall_seconds for item in batch.items)
        + batch.skeleton_build_seconds
    )
    notes.append(
        f"session totals: cold {cold_total:.4f}s vs batch {batch_total:.4f}s "
        f"(incl. skeleton build {batch.skeleton_build_seconds:.4f}s); "
        f"cache: {service.stats.summary()}"
    )
    return ExperimentResult(
        experiment="Serving: interactive refinement (per-step cold runs vs "
        "one shared-scan batch)",
        headers=["step", "query", "cold_seconds", "batch_seconds", "source"],
        rows=rows,
        paper="(no paper counterpart: batch shared-scan serving generalizes "
        "the Section 5.2 dovetailing idea across queries)",
        notes=notes,
    )
