"""Strategy runners with uniform instrumentation.

A :class:`StrategyRun` captures everything a comparison needs: the
deterministic operation-count cost (the primary metric, mirroring the
paper's CPU+I/O total — see DESIGN.md), wall-clock time, and the answer
sizes (used to assert that all strategies agree).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.optimizer import CFQOptimizer
from repro.core.query import CFQ
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.mining.aprioriplus import apriori_plus


@dataclass
class StrategyRun:
    """Outcome of running one strategy on one workload."""

    name: str
    cost: float
    wall_seconds: float
    counters: OpCounters
    frequent_sizes: Dict[str, int]
    result: object = field(repr=False, default=None)

    def speedup_over(self, baseline: "StrategyRun") -> float:
        """Baseline cost divided by this run's cost."""
        return baseline.cost / self.cost if self.cost else float("inf")


def run_strategy(
    name: str,
    db: TransactionDatabase,
    cfq: CFQ,
    *,
    kind: str = "optimizer",
    **options,
) -> StrategyRun:
    """Run one strategy (``optimizer`` with options, or ``apriori_plus``).

    Only the mining phase is timed and costed — the paper's measurements
    cover step (i), finding the frequent valid sets; pair formation is
    excluded for every strategy alike (Section 6.2).
    """
    counters = OpCounters()
    start = time.perf_counter()
    if kind == "apriori_plus":
        result = apriori_plus(db, cfq, counters=counters)
        frequent_sizes = {var: len(result.frequent(var)) for var in cfq.variables}
    elif kind == "optimizer":
        result = CFQOptimizer(cfq).execute(db, counters=counters, **options)
        frequent_sizes = {
            var: len(result.frequent_valid(var)) for var in cfq.variables
        }
    else:
        raise ValueError(f"unknown strategy kind {kind!r}")
    wall = time.perf_counter() - start
    return StrategyRun(
        name=name,
        cost=counters.cost(),
        wall_seconds=wall,
        counters=counters,
        frequent_sizes=frequent_sizes,
        result=result,
    )


def compare_strategies(
    db: TransactionDatabase,
    cfq: CFQ,
    strategies: Sequence[Dict],
) -> List[StrategyRun]:
    """Run several strategies on the same query.

    Each entry of ``strategies`` is a dict of :func:`run_strategy`
    keyword arguments including ``name`` (and optionally ``kind`` and
    optimizer options).
    """
    runs = []
    for spec in strategies:
        spec = dict(spec)
        name = spec.pop("name")
        runs.append(run_strategy(name, db, cfq, **spec))
    return runs
