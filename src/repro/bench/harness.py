"""Strategy runners with uniform instrumentation.

A :class:`StrategyRun` captures everything a comparison needs: the
deterministic operation-count cost (the primary metric, mirroring the
paper's CPU+I/O total — see DESIGN.md), wall-clock time, and the answer
sizes (used to assert that all strategies agree).  With ``trace=True``
a run also carries a full observability trace, and :func:`emit_report`
exports it as the same versioned run-report JSON the CLI's
``--trace-out`` writes, so benchmark rows are reproducible artifacts.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.optimizer import CFQOptimizer
from repro.core.query import CFQ
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import RunInterrupted
from repro.mining.aprioriplus import AprioriPlusResult, apriori_plus
from repro.obs.report import RunReport, build_run_report
from repro.obs.trace import Tracer
from repro.runtime.guard import RunGuard


@dataclass
class StrategyRun:
    """Outcome of running one strategy on one workload."""

    name: str
    cost: float
    wall_seconds: float
    counters: OpCounters
    frequent_sizes: Dict[str, int]
    result: object = field(repr=False, default=None)
    tracer: object = field(repr=False, default=None)
    #: ``"complete"`` or ``"partial"`` (run guard tripped mid-mine).
    status: str = "complete"
    #: The :class:`~repro.runtime.guard.GuardTrip` for partial runs.
    trip: object = field(repr=False, default=None)

    @property
    def is_partial(self) -> bool:
        return self.status == "partial"

    def speedup_over(self, baseline: "StrategyRun") -> float:
        """Baseline cost divided by this run's cost."""
        return baseline.cost / self.cost if self.cost else float("inf")


def run_strategy(
    name: str,
    db: TransactionDatabase,
    cfq: CFQ,
    *,
    kind: str = "optimizer",
    trace: bool = False,
    deadline: Optional[float] = None,
    guard: Optional[RunGuard] = None,
    service=None,
    **options,
) -> StrategyRun:
    """Run one strategy (``optimizer`` with options, or ``apriori_plus``).

    Only the mining phase is timed and costed — the paper's measurements
    cover step (i), finding the frequent valid sets; pair formation is
    excluded for every strategy alike (Section 6.2).  ``trace=True``
    attaches a :class:`~repro.obs.trace.Tracer` to the run (supports and
    counters are unaffected — see ``tests/test_obs_differential.py``).

    ``deadline`` (seconds) builds a fresh :class:`RunGuard` for this run;
    alternatively pass an explicit ``guard``.  A tripped guard yields a
    ``status="partial"`` run instead of raising, so benchmark tables can
    include interrupted rows uniformly.

    ``service`` routes an ``optimizer`` run through a
    :class:`~repro.serve.QueryService` (result cache, then skeleton
    oracle, then cold) — the serving-workload benchmarks use this to
    measure cold-vs-warm wall time under identical instrumentation.
    """
    if guard is None and deadline is not None:
        guard = RunGuard(deadline_seconds=deadline)
    counters = OpCounters()
    tracer = Tracer() if trace else None
    status, trip = "complete", None
    start = time.perf_counter()
    if kind == "apriori_plus":
        try:
            result = apriori_plus(
                db, cfq, counters=counters, tracer=tracer, guard=guard
            )
        except RunInterrupted as exc:
            result = AprioriPlusResult(
                cfq=cfq, counters=counters, lattices=exc.partial or {}
            )
            status, trip = "partial", exc.trip
        frequent_sizes = {var: len(result.frequent(var)) for var in cfq.variables}
    elif kind == "optimizer":
        if service is not None:
            result = service.execute(
                db, cfq, counters=counters, tracer=tracer, guard=guard,
                **options,
            )
        else:
            result = CFQOptimizer(cfq).execute(
                db, counters=counters, tracer=tracer, guard=guard, **options
            )
        status = getattr(result, "status", "complete")
        trip = getattr(result, "interruption", None)
        frequent_sizes = {
            var: len(result.frequent_valid(var)) for var in cfq.variables
        }
    else:
        raise ValueError(f"unknown strategy kind {kind!r}")
    wall = time.perf_counter() - start
    return StrategyRun(
        name=name,
        cost=counters.cost(),
        wall_seconds=wall,
        counters=counters,
        frequent_sizes=frequent_sizes,
        result=result,
        tracer=tracer,
        status=status,
        trip=trip,
    )


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "run"


def emit_report(
    run: StrategyRun,
    report_dir: str,
    experiment: Optional[str] = None,
) -> str:
    """Write one run-report JSON for a finished :class:`StrategyRun`.

    The document matches the CLI's ``--trace-out`` schema
    (:class:`~repro.obs.report.RunReport`); the filename combines the
    experiment and strategy names.  Returns the written path.
    """
    result = run.result
    meta = {
        "strategy": run.name,
        "cost": run.cost,
        "wall_seconds": round(run.wall_seconds, 6),
        "status": run.status,
    }
    if experiment:
        meta["experiment"] = experiment
    if hasattr(result, "raw"):
        report = build_run_report(result, tracer=run.tracer, meta=meta)
    else:
        # Apriori+ has no dovetail result; emit counters + trace only.
        tracer = run.tracer
        report = RunReport(
            meta=meta,
            trace=tracer.to_dict() if tracer is not None else {"spans": []},
            metrics=(
                tracer.metrics.as_dict() if tracer is not None
                else {"counters": {}, "gauges": {}, "histograms": {}}
            ),
            op_counters={"cost": run.counters.cost(),
                         **{k: v for k, v in run.counters.as_dict().items()
                            if not isinstance(v, dict)}},
            answers={"frequent": dict(run.frequent_sizes),
                     "status": run.status},
            interruption=run.trip.as_dict() if run.trip is not None else None,
        )
    os.makedirs(report_dir, exist_ok=True)
    stem = _slug(f"{experiment}-{run.name}" if experiment else run.name)
    return report.write(os.path.join(report_dir, f"{stem}.json"))


def compare_strategies(
    db: TransactionDatabase,
    cfq: CFQ,
    strategies: Sequence[Dict],
) -> List[StrategyRun]:
    """Run several strategies on the same query.

    Each entry of ``strategies`` is a dict of :func:`run_strategy`
    keyword arguments including ``name`` (and optionally ``kind`` and
    optimizer options).
    """
    runs = []
    for spec in strategies:
        spec = dict(spec)
        name = spec.pop("name")
        runs.append(run_strategy(name, db, cfq, **spec))
    return runs
