"""Plain-text rendering of experiment tables and series.

The paper reports results as small tables and two speedup curves; these
helpers render the reproduced numbers in the same layouts so the bench
output can be eyeballed against Section 7 directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    xs: Sequence[float],
    series: Sequence[Sequence[float]],
    labels: Sequence[str],
    width: int = 50,
) -> str:
    """Render speedup curves as a compact ASCII chart plus value rows.

    One character column per x value would be unreadable at five points,
    so the chart lists each series as a labelled bar per x.
    """
    lines: List[str] = [title]
    peak = max(max(ys) for ys in series) or 1.0
    for x, *ys in zip(xs, *series):
        for label, y in zip(labels, ys):
            bar = "#" * max(1, int(round(width * y / peak)))
            lines.append(f"  x={x:>6g}  {label:<18} {y:7.2f}x {bar}")
        lines.append("")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
