"""Performance-trend records and the regression gate.

Benchmark PRs commit one ``BENCH_<n>.json`` at the repo root — a small
record of the headline performance figures at that point in history
(warm-hit latency, kernel and refresh speedups, replay throughput).
:func:`compare_records` gates a new record against the newest prior
one: any shared metric that moves the *wrong* way by more than the
threshold (20% by default) is a regression, and the gate fails.

Every metric carries its own direction (``"higher"`` is better for
speedups and throughput, ``"lower"`` for latencies), so the gate never
has to guess from the name.  The first record in a repository has
nothing to compare against — the gate **soft-passes** and says so;
CI's trend job mirrors this so a freshly seeded branch stays green.

A metric may also declare a **noise band** wider than the default
threshold (``record.add(..., noise=0.5)``) when the figure is known to
swing with machine placement rather than code — e.g. a ratio of an
interpreter-bound loop to a memory-bandwidth-bound kernel moves tens of
percent between container hosts with identical code.  The band is
serialized into the committed record, so loosening a metric's gate is a
visible, reviewable edit — never a silent bypass — and the gate applies
the widest band either side of the comparison declares.

Usage, from the benchmark that produced the figures::

    record = TrendRecord(label="PR8")
    record.add("warm_hit_p50_seconds", p50, unit="s", direction="lower")
    record.add("replay_qps", qps, unit="1/s", direction="higher")
    record.write("BENCH_8.json")
    regressions, prior = gate("BENCH_8.json")

or as a command (the CI trend job)::

    python -m repro.bench.trend BENCH_8.json --threshold 0.2
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

TREND_SCHEMA = "repro.bench.trend"
TREND_VERSION = 1
DEFAULT_THRESHOLD = 0.20
DIRECTIONS = ("higher", "lower")

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class TrendMetric:
    """One gated figure: a value plus which way 'better' points."""

    name: str
    value: float
    unit: str = ""
    direction: str = "higher"
    #: Declared measurement-noise band (fraction); when set and wider
    #: than the gate threshold, it becomes this metric's threshold.
    noise: Optional[float] = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if self.noise is not None and not 0 <= self.noise:
            raise ValueError(f"noise must be >= 0, got {self.noise}")

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
        }
        if self.noise is not None:
            document["noise"] = self.noise
        return document


@dataclass(frozen=True)
class Regression:
    """A metric that moved the wrong way past the threshold."""

    name: str
    current: float
    prior: float
    change: float  # fractional move in the *bad* direction
    direction: str
    unit: str = ""

    def describe(self) -> str:
        arrow = "dropped" if self.direction == "higher" else "rose"
        unit = f" {self.unit}" if self.unit else ""
        return (
            f"{self.name} {arrow} {self.change:.1%}: "
            f"{self.prior:g}{unit} -> {self.current:g}{unit}"
        )


@dataclass
class TrendRecord:
    """A labelled set of :class:`TrendMetric` values, serialized to JSON."""

    label: str
    metrics: Dict[str, TrendMetric] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def add(
        self,
        name: str,
        value: float,
        *,
        unit: str = "",
        direction: str = "higher",
        noise: Optional[float] = None,
    ) -> None:
        self.metrics[name] = TrendMetric(
            name, float(value), unit, direction, noise
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": TREND_SCHEMA,
            "version": TREND_VERSION,
            "label": self.label,
            "meta": dict(self.meta),
            "metrics": {
                name: metric.as_dict()
                for name, metric in sorted(self.metrics.items())
            },
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "TrendRecord":
        if document.get("schema") != TREND_SCHEMA:
            raise ValueError(
                f"not a trend record: schema={document.get('schema')!r}, "
                f"expected {TREND_SCHEMA!r}"
            )
        record = cls(
            label=str(document.get("label", "")),
            meta=dict(document.get("meta", {})),
        )
        for name, body in document.get("metrics", {}).items():
            noise = body.get("noise")
            record.add(
                name,
                float(body["value"]),
                unit=str(body.get("unit", "")),
                direction=str(body.get("direction", "higher")),
                noise=None if noise is None else float(noise),
            )
        return record

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "TrendRecord":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def bench_index(path: str) -> Optional[int]:
    """The ``<n>`` of a ``BENCH_<n>.json`` basename, or None."""
    match = _BENCH_NAME.match(os.path.basename(path))
    return int(match.group(1)) if match else None


def find_prior(current_path: str, directory: Optional[str] = None) -> Optional[str]:
    """The newest ``BENCH_*.json`` older than ``current_path``.

    'Newest prior' means the largest numeric suffix strictly below the
    current file's (``BENCH_10`` beats ``BENCH_9`` — lexicographic order
    would get this wrong).  Returns None when the current record is the
    first of its line.
    """
    directory = directory or (os.path.dirname(os.path.abspath(current_path)))
    current = bench_index(current_path)
    best_index, best_path = -1, None
    for name in os.listdir(directory):
        index = bench_index(name)
        if index is None:
            continue
        if current is not None and index >= current:
            continue
        if current is None and os.path.abspath(
            os.path.join(directory, name)
        ) == os.path.abspath(current_path):
            continue
        if index > best_index:
            best_index, best_path = index, os.path.join(directory, name)
    return best_path


def compare_records(
    current: TrendRecord,
    prior: TrendRecord,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Regression]:
    """Direction-aware comparison of the metrics both records carry.

    A higher-is-better metric regresses when it falls more than
    ``threshold`` below the prior value; a lower-is-better metric when
    it rises more than ``threshold`` above it.  A metric that declares
    a ``noise`` band wider than ``threshold`` (in either record — both
    sides' declarations count) is gated at that band instead.  Metrics
    present in only one record are new (or retired) figures, not
    regressions — the gate must not punish adding coverage.
    Non-positive priors are skipped (no meaningful ratio).
    """
    regressions: List[Regression] = []
    for name in sorted(set(current.metrics) & set(prior.metrics)):
        new, old = current.metrics[name], prior.metrics[name]
        if old.value <= 0:
            continue
        if new.direction == "higher":
            change = (old.value - new.value) / old.value
        else:
            change = (new.value - old.value) / old.value
        allowed = max(threshold, new.noise or 0.0, old.noise or 0.0)
        if change > allowed:
            regressions.append(
                Regression(
                    name=name,
                    current=new.value,
                    prior=old.value,
                    change=change,
                    direction=new.direction,
                    unit=new.unit,
                )
            )
    return regressions


def gate(
    current_path: str,
    directory: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[Regression], Optional[str]]:
    """Compare ``current_path`` against its newest prior record.

    Returns ``(regressions, prior_path)``; ``prior_path`` is None when
    no prior exists (first record — callers soft-pass).
    """
    prior_path = find_prior(current_path, directory)
    if prior_path is None:
        return [], None
    current = TrendRecord.load(current_path)
    prior = TrendRecord.load(prior_path)
    return compare_records(current, prior, threshold), prior_path


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trend",
        description="gate a BENCH_<n>.json trend record against the "
        "newest prior record in the same directory",
    )
    parser.add_argument("record", help="the new BENCH_<n>.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression allowed per metric (default 0.2)",
    )
    args = parser.parse_args(argv)
    regressions, prior_path = gate(args.record, threshold=args.threshold)
    if prior_path is None:
        print(
            f"trend gate: {args.record} is the first record — "
            "nothing to compare against (soft pass)"
        )
        return 0
    if not regressions:
        print(
            f"trend gate: {args.record} vs {prior_path} — all shared "
            f"metrics within {args.threshold:.0%}"
        )
        return 0
    print(f"trend gate: {args.record} regressed vs {prior_path}:")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
