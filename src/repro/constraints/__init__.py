"""The CFQ constraint language.

This package implements the constraint constructs of the paper's CFQ
language (Section 2): domain, class and SQL-style aggregation constraints
over set variables, in both 1-variable and 2-variable form.

Layers
------
* :mod:`repro.constraints.ast` — expression/constraint AST;
* :mod:`repro.constraints.parser` — a small text DSL
  (``"max(S.Price) <= min(T.Price)"``) producing AST nodes;
* :mod:`repro.constraints.evaluate` — evaluation of constraints against
  concrete bound sets;
* :mod:`repro.constraints.onevar` / :mod:`~repro.constraints.twovar` —
  normalized views of 1-var and 2-var constraints;
* :mod:`repro.constraints.properties` — anti-monotonicity, monotonicity
  and succinctness of 1-var constraints (Lemma 1 and the CAP tables);
* :mod:`repro.constraints.pruners` — the operational pruning forms CAP
  consumes (item filters, required buckets, anti-monotone checks, post
  filters) and the compilation of 1-var constraints into them.
"""

from repro.constraints.ast import (
    AGG_FUNCS,
    Agg,
    AttrRef,
    Comparison,
    Const,
    Constraint,
    SetComparison,
    SetConst,
    CmpOp,
    SetOp,
)
from repro.constraints.evaluate import evaluate_constraint
from repro.constraints.onevar import OneVarView
from repro.constraints.parser import parse_constraint
from repro.constraints.properties import OneVarProperties, classify_onevar
from repro.constraints.pruners import (
    AntiMonotoneCheck,
    CompiledPruning,
    ItemFilter,
    PostFilter,
    RequiredBucket,
    compile_onevar,
)
from repro.constraints.twovar import TwoVarShape, TwoVarView

__all__ = [
    "AGG_FUNCS",
    "Agg",
    "AttrRef",
    "Comparison",
    "Const",
    "Constraint",
    "SetComparison",
    "SetConst",
    "CmpOp",
    "SetOp",
    "evaluate_constraint",
    "OneVarView",
    "parse_constraint",
    "OneVarProperties",
    "classify_onevar",
    "AntiMonotoneCheck",
    "CompiledPruning",
    "ItemFilter",
    "PostFilter",
    "RequiredBucket",
    "compile_onevar",
    "TwoVarShape",
    "TwoVarView",
]
