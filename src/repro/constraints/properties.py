"""Anti-monotonicity, monotonicity and succinctness of 1-var constraints.

This reproduces the characterization the paper inherits from CAP
(Ng et al., SIGMOD 1998) and restates as Lemma 1:

    1-var domain, class, and aggregation constraints involving only
    ``min()`` and/or ``max()`` are succinct; 1-var constraints involving
    ``sum()`` and/or ``avg()`` are not.

The table below is the full classification over the shapes the language
admits.  ``sum`` results assume the aggregated attribute is non-negative
(the caller supplies that fact from the catalog); with possibly-negative
values ``sum`` constraints are neither anti-monotone nor monotone.

==============================  ============  ========  ========
shape                           anti-monotone monotone  succinct
==============================  ============  ========  ========
``S.A ⊆ V``                     yes           no        yes
``S.A ⊇ V``                     no            yes       yes
``S.A = V``                     no            no        yes
``S.A ≠ V``                     no            no        no
``S.A ∩ V = ∅``                 yes           no        yes
``S.A ∩ V ≠ ∅``                 no            yes       yes
``S.A ⊄ V``                     no            yes       yes
``S.A ⊉ V``                     yes           no        yes
``min(S.A) ≥ v`` (also ``>``)   yes           no        yes
``min(S.A) ≤ v`` (also ``<``)   no            yes       yes
``min(S.A) = v``                no            no        yes
``max(S.A) ≤ v`` (also ``<``)   yes           no        yes
``max(S.A) ≥ v`` (also ``>``)   no            yes       yes
``max(S.A) = v``                no            no        yes
``count ≤ v``                   yes           no        no
``count ≥ v``                   no            yes       no
``count = v``                   no            no        no
``sum(S.A) ≤ v`` (A ≥ 0)        yes           no        no
``sum(S.A) ≥ v`` (A ≥ 0)        no            yes       no
``avg(S.A) op v``               no            no        no
==============================  ============  ========  ========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import CmpOp, SetOp
from repro.constraints.onevar import AggConstShape, OneVarView, SetConstShape


@dataclass(frozen=True)
class OneVarProperties:
    """Property triple of a 1-var constraint (Definitions 1 and 2)."""

    anti_monotone: bool
    monotone: bool
    succinct: bool

    @property
    def none_apply(self) -> bool:
        """Whether the constraint enjoys none of the exploitable properties."""
        return not (self.anti_monotone or self.monotone or self.succinct)


_UNKNOWN = OneVarProperties(anti_monotone=False, monotone=False, succinct=False)


def classify_onevar(view: OneVarView, non_negative: bool = False) -> OneVarProperties:
    """Classify a 1-var constraint per the table in the module docstring.

    Parameters
    ----------
    view:
        The normalized constraint view.
    non_negative:
        Whether the aggregated attribute is known to be non-negative
        (relevant only for ``sum``; obtain from
        :meth:`repro.db.catalog.ItemCatalog.non_negative_attribute`).
    """
    shape = view.shape
    if shape is None:
        return _UNKNOWN
    if isinstance(shape, SetConstShape):
        return _classify_set_shape(shape)
    return _classify_agg_shape(shape, non_negative)


def _classify_set_shape(shape: SetConstShape) -> OneVarProperties:
    op = shape.op
    if op is SetOp.SUBSET:
        return OneVarProperties(True, False, True)
    if op is SetOp.SUPERSET:
        return OneVarProperties(False, True, True)
    if op is SetOp.SETEQ:
        return OneVarProperties(False, False, True)
    if op is SetOp.SETNEQ:
        return _UNKNOWN
    if op is SetOp.DISJOINT:
        return OneVarProperties(True, False, True)
    if op is SetOp.OVERLAPS:
        return OneVarProperties(False, True, True)
    if op is SetOp.NOT_SUBSET:
        return OneVarProperties(False, True, True)
    if op is SetOp.NOT_SUPERSET:
        return OneVarProperties(True, False, True)
    return _UNKNOWN


def _classify_agg_shape(shape: AggConstShape, non_negative: bool) -> OneVarProperties:
    func, op = shape.func, shape.op
    if func == "min":
        if op.is_ge_like:
            return OneVarProperties(True, False, True)
        if op.is_le_like:
            return OneVarProperties(False, True, True)
        if op is CmpOp.EQ:
            return OneVarProperties(False, False, True)
        return _UNKNOWN
    if func == "max":
        if op.is_le_like:
            return OneVarProperties(True, False, True)
        if op.is_ge_like:
            return OneVarProperties(False, True, True)
        if op is CmpOp.EQ:
            return OneVarProperties(False, False, True)
        return _UNKNOWN
    if func == "count":
        if op.is_le_like:
            return OneVarProperties(True, False, False)
        if op.is_ge_like:
            return OneVarProperties(False, True, False)
        return _UNKNOWN
    if func == "sum":
        if not non_negative:
            return _UNKNOWN
        if op.is_le_like:
            return OneVarProperties(True, False, False)
        if op.is_ge_like:
            return OneVarProperties(False, True, False)
        return _UNKNOWN
    # avg — neither anti-monotone, monotone, nor succinct
    return _UNKNOWN
