"""Normalized view of 2-variable constraints.

A :class:`TwoVarView` wraps a constraint mentioning exactly two set
variables and exposes its *shape* — the normal forms Sections 3–5 of the
paper analyze:

* :class:`SetSetShape` — ``X.A  setop  Y.B`` (2-var domain constraints:
  the first block of Figure 1);
* :class:`AggAggShape` — ``agg1(X.A)  op  agg2(Y.B)`` (2-var aggregation
  constraints: the min/max block and the sum/avg block of Figure 1).

Shapes can be *oriented*: ``oriented(var)`` rewrites the shape so that
``var`` appears on the left, flipping the operator as needed.  All the
characterization, reduction and induction tables are written for the
left-oriented form, so orientation is the single place side-swapping
happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.constraints.ast import (
    Agg,
    AttrRef,
    CmpOp,
    Comparison,
    Constraint,
    SetComparison,
    SetOp,
)
from repro.errors import ConstraintTypeError


@dataclass(frozen=True)
class SetSetShape:
    """``left_var.left_attr  setop  right_var.right_attr``."""

    op: SetOp
    left_var: str
    left_attr: Optional[str]
    right_var: str
    right_attr: Optional[str]

    def oriented(self, var: str) -> "SetSetShape":
        """Return the shape with ``var`` on the left."""
        if var == self.left_var:
            return self
        if var != self.right_var:
            raise ConstraintTypeError(f"variable {var!r} not in shape {self}")
        return SetSetShape(
            self.op.flipped(), self.right_var, self.right_attr,
            self.left_var, self.left_attr,
        )

    @property
    def other_var(self) -> str:
        """The right-hand variable."""
        return self.right_var


@dataclass(frozen=True)
class AggAggShape:
    """``left_func(left_var.left_attr)  op  right_func(right_var.right_attr)``."""

    left_func: str
    op: CmpOp
    right_func: str
    left_var: str
    left_attr: Optional[str]
    right_var: str
    right_attr: Optional[str]

    def oriented(self, var: str) -> "AggAggShape":
        """Return the shape with ``var`` on the left."""
        if var == self.left_var:
            return self
        if var != self.right_var:
            raise ConstraintTypeError(f"variable {var!r} not in shape {self}")
        return AggAggShape(
            self.right_func, self.op.flipped(), self.left_func,
            self.right_var, self.right_attr, self.left_var, self.left_attr,
        )

    @property
    def uses_sum_or_avg(self) -> bool:
        """Whether either side aggregates with ``sum`` or ``avg``."""
        return self.left_func in ("sum", "avg") or self.right_func in ("sum", "avg")

    @property
    def min_max_only(self) -> bool:
        """Whether both sides aggregate with ``min`` or ``max`` only."""
        return self.left_func in ("min", "max") and self.right_func in ("min", "max")


Shape2 = Union[SetSetShape, AggAggShape]


@dataclass(frozen=True)
class TwoVarView:
    """A 2-var constraint, its two variables, and its canonical shape."""

    constraint: Constraint
    shape: Optional[Shape2]

    @classmethod
    def of(cls, constraint: Constraint) -> "TwoVarView":
        """Build the view; raises if the constraint is not 2-variable."""
        variables = constraint.variables()
        if len(variables) != 2:
            raise ConstraintTypeError(
                f"{constraint} mentions {len(variables)} variables, expected 2"
            )
        return cls(constraint, _extract_shape(constraint))

    @property
    def variables(self) -> frozenset:
        """The two variable names."""
        return self.constraint.variables()

    def oriented(self, var: str) -> Optional[Shape2]:
        """The shape with ``var`` on the left, or None for opaque constraints."""
        if self.shape is None:
            return None
        return self.shape.oriented(var)

    def __str__(self) -> str:
        return str(self.constraint)


# Back-compat alias used in a few call sites and docs.
TwoVarShape = Shape2


def _extract_shape(constraint: Constraint) -> Optional[Shape2]:
    if isinstance(constraint, SetComparison):
        left, right = constraint.left, constraint.right
        if isinstance(left, AttrRef) and isinstance(right, AttrRef):
            if left.var == right.var:
                return None
            return SetSetShape(
                constraint.op, left.var, left.attr, right.var, right.attr
            )
        return None
    if isinstance(constraint, Comparison):
        left, right = constraint.left, constraint.right
        if isinstance(left, Agg) and isinstance(right, Agg):
            if left.arg.var == right.arg.var:
                return None
            return AggAggShape(
                left.func, constraint.op, right.func,
                left.arg.var, left.arg.attr, right.arg.var, right.arg.attr,
            )
        return None
    return None
