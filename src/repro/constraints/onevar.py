"""Normalized view of 1-variable constraints.

A :class:`OneVarView` wraps a constraint that mentions exactly one set
variable and exposes its *shape* in a canonical orientation (variable side
on the left), which is what the property classifier and the pruner
compiler dispatch on.

Shapes
------
* :class:`SetConstShape` — ``X.A  setop  V`` for a constant set ``V``
  (domain and class constraints);
* :class:`AggConstShape` — ``agg(X.A)  op  c`` for a scalar constant ``c``
  (aggregation constraints);
* ``None`` — anything else (e.g. two aggregates of the same variable);
  such constraints are legal but are handled as opaque post-filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Union

from repro.constraints.ast import (
    Agg,
    AttrRef,
    CmpOp,
    Comparison,
    Const,
    Constraint,
    SetComparison,
    SetConst,
    SetOp,
)
from repro.errors import ConstraintTypeError


@dataclass(frozen=True)
class SetConstShape:
    """``X.A setop V``: a set relation against a constant set."""

    op: SetOp
    attr: Optional[str]
    values: FrozenSet


@dataclass(frozen=True)
class AggConstShape:
    """``agg(X.A) op c``: an aggregate compared against a constant."""

    func: str
    op: CmpOp
    attr: Optional[str]
    const: Union[int, float]


Shape = Union[SetConstShape, AggConstShape]


@dataclass(frozen=True)
class OneVarView:
    """A 1-var constraint, its variable, and its canonical shape."""

    constraint: Constraint
    var: str
    shape: Optional[Shape]

    @classmethod
    def of(cls, constraint: Constraint) -> "OneVarView":
        """Build the view; raises if the constraint is not 1-variable."""
        variables = constraint.variables()
        if len(variables) != 1:
            raise ConstraintTypeError(
                f"{constraint} mentions {len(variables)} variables, expected 1"
            )
        (var,) = variables
        return cls(constraint, var, _extract_shape(constraint))

    def __str__(self) -> str:
        return str(self.constraint)


def _extract_shape(constraint: Constraint) -> Optional[Shape]:
    if isinstance(constraint, SetComparison):
        left, op, right = constraint.left, constraint.op, constraint.right
        if isinstance(left, SetConst) and isinstance(right, AttrRef):
            flipped = constraint.flipped()
            left, op, right = flipped.left, flipped.op, flipped.right
        if isinstance(left, AttrRef) and isinstance(right, SetConst):
            return SetConstShape(op, left.attr, right.values)
        return None
    if isinstance(constraint, Comparison):
        left, op, right = constraint.left, constraint.op, constraint.right
        if isinstance(left, Const) and isinstance(right, Agg):
            flipped = constraint.flipped()
            left, op, right = flipped.left, flipped.op, flipped.right
        if isinstance(left, Agg) and isinstance(right, Const):
            return AggConstShape(left.func, op, left.arg.attr, right.value)
        return None
    return None
