"""Abstract syntax for the CFQ constraint language.

The language of Section 2 contains, besides the implicit frequency
constraints:

* **domain constraints** — set relations between attribute projections and
  constant sets or each other: ``S.Type = {Snacks}``,
  ``S.A ∩ T.B = ∅``, ``S.A ⊆ T.B``, ...;
* **class constraints** — expressed through ``count`` over an attribute,
  e.g. ``count(S.Type) = 1`` (count is COUNT DISTINCT);
* **aggregation constraints** — comparisons between ``min``, ``max``,
  ``sum``, ``avg``, ``count`` of attribute projections and constants or
  each other: ``sum(S.Price) <= 100``, ``max(S.A) <= min(T.B)``.

Expressions and constraints are small frozen dataclasses, hashable and
printable; all structural analysis (1-var vs 2-var, shapes, properties)
lives in sibling modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from repro.errors import ConstraintTypeError

AGG_FUNCS: Tuple[str, ...] = ("min", "max", "sum", "avg", "count")

Number = Union[int, float]


class CmpOp(enum.Enum):
    """Scalar comparison operators."""

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "!="
    GE = ">="
    GT = ">"

    def apply(self, a, b) -> bool:
        """Apply the comparison to two scalar values."""
        if self is CmpOp.LT:
            return a < b
        if self is CmpOp.LE:
            return a <= b
        if self is CmpOp.EQ:
            return a == b
        if self is CmpOp.NE:
            return a != b
        if self is CmpOp.GE:
            return a >= b
        return a > b

    def flipped(self) -> "CmpOp":
        """The operator with operands swapped (``a <= b`` -> ``b >= a``)."""
        return _CMP_FLIP[self]

    @property
    def is_le_like(self) -> bool:
        """Whether this is ``<`` or ``<=``."""
        return self in (CmpOp.LT, CmpOp.LE)

    @property
    def is_ge_like(self) -> bool:
        """Whether this is ``>`` or ``>=``."""
        return self in (CmpOp.GT, CmpOp.GE)

    @property
    def strict(self) -> bool:
        """Whether the comparison is strict."""
        return self in (CmpOp.LT, CmpOp.GT)


_CMP_FLIP = {
    CmpOp.LT: CmpOp.GT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
    CmpOp.GE: CmpOp.LE,
    CmpOp.GT: CmpOp.LT,
}


class SetOp(enum.Enum):
    """Set relations between two set-valued expressions."""

    DISJOINT = "disjoint"          # A ∩ B = ∅
    OVERLAPS = "overlaps"          # A ∩ B != ∅
    SUBSET = "subset"              # A ⊆ B
    NOT_SUBSET = "not_subset"      # A ⊄ B
    SUPERSET = "superset"          # A ⊇ B
    NOT_SUPERSET = "not_superset"  # A ⊉ B
    SETEQ = "seteq"                # A = B
    SETNEQ = "setneq"              # A != B

    def apply(self, a: frozenset, b: frozenset) -> bool:
        """Apply the relation to two frozensets."""
        if self is SetOp.DISJOINT:
            return a.isdisjoint(b)
        if self is SetOp.OVERLAPS:
            return not a.isdisjoint(b)
        if self is SetOp.SUBSET:
            return a.issubset(b)
        if self is SetOp.NOT_SUBSET:
            return not a.issubset(b)
        if self is SetOp.SUPERSET:
            return a.issuperset(b)
        if self is SetOp.NOT_SUPERSET:
            return not a.issuperset(b)
        if self is SetOp.SETEQ:
            return a == b
        return a != b

    def flipped(self) -> "SetOp":
        """The relation with operands swapped (``A ⊆ B`` -> ``B ⊇ A``)."""
        return _SET_FLIP[self]


_SET_FLIP = {
    SetOp.DISJOINT: SetOp.DISJOINT,
    SetOp.OVERLAPS: SetOp.OVERLAPS,
    SetOp.SUBSET: SetOp.SUPERSET,
    SetOp.NOT_SUBSET: SetOp.NOT_SUPERSET,
    SetOp.SUPERSET: SetOp.SUBSET,
    SetOp.NOT_SUPERSET: SetOp.NOT_SUBSET,
    SetOp.SETEQ: SetOp.SETEQ,
    SetOp.SETNEQ: SetOp.SETNEQ,
}


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Const:
    """A scalar constant (``100`` in ``sum(S.Price) <= 100``)."""

    value: Number

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True)
class SetConst:
    """A constant set (``{Snacks}`` in ``S.Type = {Snacks}``)."""

    values: FrozenSet

    def __str__(self) -> str:
        inner = ", ".join(sorted(str(v) for v in self.values))
        return "{" + inner + "}"


@dataclass(frozen=True)
class AttrRef:
    """An attribute projection of a set variable.

    ``AttrRef("S", "Price")`` denotes ``S.Price``.  ``attr=None`` denotes
    the variable's element values themselves (used when a variable ranges
    over a derived domain, e.g. ``S.Type ⊆ T`` with ``T`` over Types).
    """

    var: str
    attr: Optional[str]

    def __str__(self) -> str:
        return f"{self.var}.{self.attr}" if self.attr else self.var


@dataclass(frozen=True)
class Agg:
    """An aggregate over an attribute projection, e.g. ``min(S.Price)``.

    ``count`` is COUNT DISTINCT, matching the paper's class-constraint
    examples (``count(S.Type) = 1`` means all items of ``S`` share one
    type).
    """

    func: str
    arg: AttrRef

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise ConstraintTypeError(
                f"unknown aggregate {self.func!r}; expected one of {AGG_FUNCS}"
            )

    def __str__(self) -> str:
        return f"{self.func}({self.arg})"


Expr = Union[Const, SetConst, AttrRef, Agg]


def expr_variables(expr: Expr) -> FrozenSet[str]:
    """The set-variable names an expression mentions."""
    if isinstance(expr, AttrRef):
        return frozenset({expr.var})
    if isinstance(expr, Agg):
        return frozenset({expr.arg.var})
    return frozenset()


def is_scalar_expr(expr: Expr) -> bool:
    """Whether the expression denotes a scalar (number) value."""
    return isinstance(expr, (Const, Agg))


def is_set_expr(expr: Expr) -> bool:
    """Whether the expression denotes a set value."""
    return isinstance(expr, (SetConst, AttrRef))


# ----------------------------------------------------------------------
# Constraints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    """A scalar comparison constraint: ``agg-or-const op agg-or-const``.

    At least one side must mention a variable (a comparison between two
    constants is rejected as vacuous).
    """

    left: Expr
    op: CmpOp
    right: Expr

    def __post_init__(self) -> None:
        for side, name in ((self.left, "left"), (self.right, "right")):
            if not is_scalar_expr(side):
                raise ConstraintTypeError(
                    f"{name} side of a scalar comparison must be an aggregate "
                    f"or constant, got {side}"
                )
        if not self.variables():
            raise ConstraintTypeError(
                "a constraint must mention at least one set variable"
            )

    def variables(self) -> FrozenSet[str]:
        """The set-variable names this constraint mentions."""
        return expr_variables(self.left) | expr_variables(self.right)

    def flipped(self) -> "Comparison":
        """The same constraint with the operand sides swapped."""
        return Comparison(self.right, self.op.flipped(), self.left)

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class SetComparison:
    """A set-relation constraint between set-valued expressions.

    Examples: ``S.Type = {Snacks}``, ``S.A ∩ T.B = ∅`` (DISJOINT),
    ``S.Type ⊆ T`` (T over the Type domain).
    """

    left: Expr
    op: SetOp
    right: Expr

    def __post_init__(self) -> None:
        for side, name in ((self.left, "left"), (self.right, "right")):
            if not is_set_expr(side):
                raise ConstraintTypeError(
                    f"{name} side of a set comparison must be an attribute "
                    f"projection or a set constant, got {side}"
                )
        if not self.variables():
            raise ConstraintTypeError(
                "a constraint must mention at least one set variable"
            )

    def variables(self) -> FrozenSet[str]:
        """The set-variable names this constraint mentions."""
        return expr_variables(self.left) | expr_variables(self.right)

    def flipped(self) -> "SetComparison":
        """The same constraint with the operand sides swapped."""
        return SetComparison(self.right, self.op.flipped(), self.left)

    def __str__(self) -> str:
        symbol = {
            SetOp.DISJOINT: "∩∅",
            SetOp.OVERLAPS: "∩≠∅",
            SetOp.SUBSET: "⊆",
            SetOp.NOT_SUBSET: "⊄",
            SetOp.SUPERSET: "⊇",
            SetOp.NOT_SUPERSET: "⊉",
            SetOp.SETEQ: "=",
            SetOp.SETNEQ: "≠",
        }[self.op]
        if self.op is SetOp.DISJOINT:
            return f"{self.left} ∩ {self.right} = ∅"
        if self.op is SetOp.OVERLAPS:
            return f"{self.left} ∩ {self.right} ≠ ∅"
        return f"{self.left} {symbol} {self.right}"


Constraint = Union[Comparison, SetComparison]


def constraint_variables(constraint: Constraint) -> FrozenSet[str]:
    """The set-variable names a constraint mentions."""
    return constraint.variables()


def is_onevar(constraint: Constraint) -> bool:
    """Whether the constraint mentions exactly one set variable."""
    return len(constraint.variables()) == 1


def is_twovar(constraint: Constraint) -> bool:
    """Whether the constraint mentions exactly two set variables."""
    return len(constraint.variables()) == 2
