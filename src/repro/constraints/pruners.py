"""Operational pruning forms and compilation of 1-var constraints.

Every pruning condition the paper pushes into the levelwise computation —
the user's own 1-var constraints, the reduced 1-var constraints of
Figures 2/3, the induced weaker constraints of Figure 4, and the dynamic
``V^k`` bounds of Section 5.2 — falls into one of four operational forms,
which is how the CAP miner consumes them:

``ItemFilter``
    An anti-monotone *and* succinct condition that holds iff every element
    of the set individually passes (e.g. ``max(S.A) <= c``, ``S.A ⊆ V``).
    CAP restricts the item universe to the filter — pure generate-only.
``RequiredBucket``
    A succinct, non-anti-monotone condition of the form "the set contains
    at least one element of R" (e.g. ``min(S.A) <= c``, ``S.A ∩ V ≠ ∅``).
    This is the member-generating-function case: CAP orders bucket
    elements first and generates only candidates containing one.
``AntiMonotoneCheck``
    A testable anti-monotone predicate that is not an item filter (e.g.
    ``sum(S.A) <= c`` over a non-negative domain, ``V ⊄ S.A``).  Checked
    once per generated candidate; failing candidates and all their
    supersets are discarded.
``PostFilter``
    Everything else; checked only on final frequent sets (and again at
    pair-formation time for 2-var originals).

:func:`compile_onevar` maps a classified 1-var constraint to a
:class:`CompiledPruning` bundle of these forms.  The compilation is
*exact* where the table of :mod:`repro.constraints.properties` allows and
conservative otherwise: any part of a constraint that cannot be pushed
soundly becomes a post-filter, so answers are never wrong, only pruning
power varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.constraints.ast import CmpOp, SetOp
from repro.constraints.onevar import AggConstShape, OneVarView, SetConstShape
from repro.db.domain import Domain

SetIds = Tuple[int, ...]
Predicate = Callable[[SetIds], bool]


@dataclass(frozen=True)
class ItemFilter:
    """Keep only sets all of whose elements lie in ``keep``."""

    keep: FrozenSet[int]
    source: str

    def admits(self, element: int) -> bool:
        """Whether a single element passes the filter."""
        return element in self.keep


@dataclass(frozen=True)
class RequiredBucket:
    """Keep only sets containing at least one element of ``bucket``."""

    bucket: FrozenSet[int]
    source: str

    def hit_by(self, elements: Iterable[int]) -> bool:
        """Whether the set hits the bucket."""
        return any(e in self.bucket for e in elements)


@dataclass(frozen=True)
class AntiMonotoneCheck:
    """A testable anti-monotone predicate on candidate sets."""

    predicate: Predicate
    source: str

    def holds(self, elements: SetIds) -> bool:
        """Whether the candidate passes the check."""
        return self.predicate(elements)


@dataclass(frozen=True)
class PostFilter:
    """A predicate applied to final frequent sets only."""

    predicate: Predicate
    source: str

    def holds(self, elements: SetIds) -> bool:
        """Whether the final set passes the filter."""
        return self.predicate(elements)


@dataclass
class CompiledPruning:
    """A bundle of operational pruners for one variable's lattice."""

    filters: List[ItemFilter] = field(default_factory=list)
    buckets: List[RequiredBucket] = field(default_factory=list)
    am_checks: List[AntiMonotoneCheck] = field(default_factory=list)
    post_filters: List[PostFilter] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def merge(self, other: "CompiledPruning") -> "CompiledPruning":
        """Conjunction of two pruning bundles."""
        return CompiledPruning(
            filters=self.filters + other.filters,
            buckets=self.buckets + other.buckets,
            am_checks=self.am_checks + other.am_checks,
            post_filters=self.post_filters + other.post_filters,
        )

    def extend(self, other: "CompiledPruning") -> None:
        """In-place conjunction with another bundle."""
        self.filters.extend(other.filters)
        self.buckets.extend(other.buckets)
        self.am_checks.extend(other.am_checks)
        self.post_filters.extend(other.post_filters)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def admits_element(self, element: int) -> bool:
        """Whether a single element passes all item filters."""
        return all(f.admits(element) for f in self.filters)

    def filtered_universe(self, elements: Iterable[int]) -> Tuple[int, ...]:
        """Restrict an element universe to those passing all item filters."""
        return tuple(e for e in elements if self.admits_element(e))

    def buckets_hit(self, elements: Iterable[int]) -> bool:
        """Whether the set hits every required bucket."""
        elements = tuple(elements)
        return all(b.hit_by(elements) for b in self.buckets)

    def am_checks_pass(self, elements: SetIds) -> bool:
        """Whether the set passes every anti-monotone check."""
        return all(c.holds(elements) for c in self.am_checks)

    def post_filters_pass(self, elements: SetIds) -> bool:
        """Whether the set passes every post-filter."""
        return all(p.holds(elements) for p in self.post_filters)

    def lattice_valid(self, elements: SetIds) -> bool:
        """Validity during the lattice computation: filters are enforced
        structurally by the universe restriction, so this checks buckets
        and anti-monotone predicates."""
        return self.buckets_hit(elements) and self.am_checks_pass(elements)

    def describe(self) -> List[str]:
        """Human-readable description of every installed pruner."""
        lines: List[str] = []
        for f in self.filters:
            lines.append(f"item-filter[{len(f.keep)} elements] from {f.source}")
        for b in self.buckets:
            lines.append(f"required-bucket[{len(b.bucket)} elements] from {b.source}")
        for c in self.am_checks:
            lines.append(f"anti-monotone-check from {c.source}")
        for p in self.post_filters:
            lines.append(f"post-filter from {p.source}")
        return lines

    @property
    def is_trivial(self) -> bool:
        """Whether the bundle prunes nothing."""
        return not (self.filters or self.buckets or self.am_checks or self.post_filters)


# ----------------------------------------------------------------------
# Compilation of 1-var constraints
# ----------------------------------------------------------------------
def element_value_map(domain: Domain, attr: Optional[str]) -> Dict[int, object]:
    """Map each domain element to its value under ``attr`` (identity if None)."""
    if attr is None:
        return {e: domain.element_value(e) for e in domain.elements}
    return domain.catalog.column(attr)


def select_elements(
    domain: Domain, attr: Optional[str], predicate: Callable[[object], bool]
) -> FrozenSet[int]:
    """Elements of the domain whose ``attr`` value satisfies ``predicate``."""
    values = element_value_map(domain, attr)
    return frozenset(e for e, v in values.items() if predicate(v))


def compile_onevar(view: OneVarView, domain: Domain) -> CompiledPruning:
    """Compile a 1-var constraint into operational pruning forms.

    The compilation realizes the CAP treatment of the four 1-var classes;
    it is sound for every constraint (what cannot be pushed becomes a
    post-filter) and tight for the succinct and anti-monotone shapes.
    """
    shape = view.shape
    source = str(view.constraint)
    if shape is None:
        return _opaque_post_filter(view, domain, source)
    if isinstance(shape, SetConstShape):
        return _compile_set_shape(view, shape, domain, source)
    return _compile_agg_shape(view, shape, domain, source)


def _opaque_post_filter(view: OneVarView, domain: Domain, source: str) -> CompiledPruning:
    from repro.constraints.evaluate import evaluate_constraint

    constraint, var = view.constraint, view.var

    def check(elements: SetIds) -> bool:
        return evaluate_constraint(constraint, {var: elements}, {var: domain})

    return CompiledPruning(post_filters=[PostFilter(check, source)])


def _compile_set_shape(
    view: OneVarView, shape: SetConstShape, domain: Domain, source: str
) -> CompiledPruning:
    op, attr, values = shape.op, shape.attr, shape.values
    value_of = element_value_map(domain, attr)

    if op is SetOp.SUBSET:
        keep = frozenset(e for e, v in value_of.items() if v in values)
        return CompiledPruning(filters=[ItemFilter(keep, source)])

    if op is SetOp.DISJOINT:
        keep = frozenset(e for e, v in value_of.items() if v not in values)
        return CompiledPruning(filters=[ItemFilter(keep, source)])

    if op is SetOp.OVERLAPS:
        bucket = frozenset(e for e, v in value_of.items() if v in values)
        return CompiledPruning(buckets=[RequiredBucket(bucket, source)])

    if op is SetOp.NOT_SUBSET:
        bucket = frozenset(e for e, v in value_of.items() if v not in values)
        return CompiledPruning(buckets=[RequiredBucket(bucket, source)])

    if op is SetOp.SUPERSET:
        buckets = [
            RequiredBucket(
                frozenset(e for e, v in value_of.items() if v == target),
                f"{source} (value {target!r})",
            )
            for target in values
        ]
        return CompiledPruning(buckets=buckets)

    if op is SetOp.SETEQ:
        if not values:
            # S.A = ∅ is unsatisfiable for the non-empty sets mining produces.
            return CompiledPruning(filters=[ItemFilter(frozenset(), source)])
        keep = frozenset(e for e, v in value_of.items() if v in values)
        buckets = [
            RequiredBucket(
                frozenset(e for e, v in value_of.items() if v == target),
                f"{source} (value {target!r})",
            )
            for target in values
        ]
        return CompiledPruning(filters=[ItemFilter(keep, source)], buckets=buckets)

    if op is SetOp.NOT_SUPERSET:
        if not values:
            # S.A ⊉ ∅ is always false.
            return CompiledPruning(filters=[ItemFilter(frozenset(), source)])

        def not_covering(elements: SetIds) -> bool:
            present = {value_of[e] for e in elements}
            return not values.issubset(present)

        return CompiledPruning(am_checks=[AntiMonotoneCheck(not_covering, source)])

    # SETNEQ — no useful monotone structure; check at the end.
    def differs(elements: SetIds) -> bool:
        return frozenset(value_of[e] for e in elements) != values

    return CompiledPruning(post_filters=[PostFilter(differs, source)])


def _compile_agg_shape(
    view: OneVarView, shape: AggConstShape, domain: Domain, source: str
) -> CompiledPruning:
    func, op, attr, const = shape.func, shape.op, shape.attr, shape.const
    value_of = element_value_map(domain, attr)

    def leq(v) -> bool:
        return v < const if op.strict else v <= const

    def geq(v) -> bool:
        return v > const if op.strict else v >= const

    if func == "min":
        return _compile_min(op, value_of, const, leq, geq, source)
    if func == "max":
        return _compile_max(op, value_of, const, leq, geq, source)
    if func == "count":
        return _compile_count(op, attr, value_of, const, source)
    if func == "sum":
        return _compile_sum(op, value_of, const, domain, attr, source)
    return _compile_avg(op, value_of, const, source)


def _compile_min(op, value_of, const, leq, geq, source) -> CompiledPruning:
    if op.is_ge_like:
        keep = frozenset(e for e, v in value_of.items() if geq(v))
        return CompiledPruning(filters=[ItemFilter(keep, source)])
    if op.is_le_like:
        bucket = frozenset(e for e, v in value_of.items() if leq(v))
        return CompiledPruning(buckets=[RequiredBucket(bucket, source)])
    if op is CmpOp.EQ:
        keep = frozenset(e for e, v in value_of.items() if v >= const)
        bucket = frozenset(e for e, v in value_of.items() if v == const)
        return CompiledPruning(
            filters=[ItemFilter(keep, source)], buckets=[RequiredBucket(bucket, source)]
        )
    # min != const — post-filter
    def check(elements):
        return min(value_of[e] for e in elements) != const

    return CompiledPruning(post_filters=[PostFilter(check, source)])


def _compile_max(op, value_of, const, leq, geq, source) -> CompiledPruning:
    if op.is_le_like:
        keep = frozenset(e for e, v in value_of.items() if leq(v))
        return CompiledPruning(filters=[ItemFilter(keep, source)])
    if op.is_ge_like:
        bucket = frozenset(e for e, v in value_of.items() if geq(v))
        return CompiledPruning(buckets=[RequiredBucket(bucket, source)])
    if op is CmpOp.EQ:
        keep = frozenset(e for e, v in value_of.items() if v <= const)
        bucket = frozenset(e for e, v in value_of.items() if v == const)
        return CompiledPruning(
            filters=[ItemFilter(keep, source)], buckets=[RequiredBucket(bucket, source)]
        )

    def check(elements):
        return max(value_of[e] for e in elements) != const

    return CompiledPruning(post_filters=[PostFilter(check, source)])


def _compile_count(op, attr, value_of, const, source) -> CompiledPruning:
    if attr is None:
        def measure(elements):
            return len(elements)
    else:
        def measure(elements):
            return len({value_of[e] for e in elements})

    if op.is_le_like:
        def am(elements):
            return measure(elements) < const if op.strict else measure(elements) <= const

        return CompiledPruning(am_checks=[AntiMonotoneCheck(am, source)])
    if op.is_ge_like:
        def post(elements):
            return measure(elements) > const if op.strict else measure(elements) >= const

        return CompiledPruning(post_filters=[PostFilter(post, source)])
    if op is CmpOp.EQ:
        def am_eq(elements):
            return measure(elements) <= const

        def post_eq(elements):
            return measure(elements) == const

        return CompiledPruning(
            am_checks=[AntiMonotoneCheck(am_eq, f"{source} (<= part)")],
            post_filters=[PostFilter(post_eq, source)],
        )

    def post_ne(elements):
        return measure(elements) != const

    return CompiledPruning(post_filters=[PostFilter(post_ne, source)])


def _compile_sum(op, value_of, const, domain: Domain, attr, source) -> CompiledPruning:
    non_negative = all(
        isinstance(v, (int, float)) and v >= 0 for v in value_of.values()
    )

    def total(elements):
        return sum(value_of[e] for e in elements)

    if op.is_le_like and non_negative:
        def am(elements):
            return total(elements) < const if op.strict else total(elements) <= const

        return CompiledPruning(am_checks=[AntiMonotoneCheck(am, source)])
    if op is CmpOp.EQ and non_negative:
        def am_eq(elements):
            return total(elements) <= const

        def post_eq(elements):
            return total(elements) == const

        return CompiledPruning(
            am_checks=[AntiMonotoneCheck(am_eq, f"{source} (<= part)")],
            post_filters=[PostFilter(post_eq, source)],
        )

    # sum >= v (monotone), != v, or a possibly-negative domain: post only.
    def post(elements):
        return op.apply(total(elements), const)

    return CompiledPruning(post_filters=[PostFilter(post, source)])


def _compile_avg(op, value_of, const, source) -> CompiledPruning:
    """avg has no exploitable monotone structure, but ``avg(S.A) <= c``
    implies ``min(S.A) <= c`` (and symmetrically for >=), which is a sound
    succinct relaxation worth pushing alongside the exact post-filter."""

    def average(elements):
        return sum(value_of[e] for e in elements) / len(elements)

    def post(elements):
        return bool(elements) and op.apply(average(elements), const)

    bundle = CompiledPruning(post_filters=[PostFilter(post, source)])
    if op.is_le_like:
        bucket = frozenset(
            e for e, v in value_of.items() if (v < const if op.strict else v <= const)
        )
        bundle.buckets.append(RequiredBucket(bucket, f"{source} (implied min bound)"))
    elif op.is_ge_like:
        bucket = frozenset(
            e for e, v in value_of.items() if (v > const if op.strict else v >= const)
        )
        bundle.buckets.append(RequiredBucket(bucket, f"{source} (implied max bound)"))
    return bundle
