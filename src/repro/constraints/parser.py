"""A small text DSL for the CFQ constraint language.

The paper writes constraints like ``max(S.Price) <= min(T.Price)``,
``S.Type ∩ T.Type = ∅`` and ``S.Type = {Snacks}``.  This module parses
exactly that surface syntax (with plain-ASCII alternatives for every
unicode operator) into the AST of :mod:`repro.constraints.ast`.

Supported forms
---------------
Scalar comparisons::

    sum(S.Price) <= 100
    avg(T.Price) >= 200
    max(S.Price) <= min(T.Price)
    count(S.Type) = 1

Set relations::

    S.Type = {Snacks}
    S.Type != T.Type
    S.A subset T.B            (or  S.A ⊆ T.B)
    S.A not subset T.B        (or  S.A ⊄ T.B)
    S.A superset T.B          (or  S.A ⊇ T.B)
    S.A ∩ T.B = ∅             (or  disjoint(S.A, T.B))
    S.A ∩ T.B != ∅            (or  overlaps(S.A, T.B))
    S.Type ⊆ T                (T ranging over a derived domain)

Set literals take bare identifiers, quoted strings, or numbers:
``{Snacks, "Dried Fruit", 42}``.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Sequence, Union

from repro.constraints.ast import (
    AGG_FUNCS,
    Agg,
    AttrRef,
    CmpOp,
    Comparison,
    Const,
    Constraint,
    SetComparison,
    SetConst,
    SetOp,
    is_set_expr,
)
from repro.errors import ConstraintSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|≤|≥|≠|[<>=]|⊆|⊄|⊇|⊉|∩|∅|[(){},.])
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ConstraintSyntaxError(
                f"unexpected character {text[position]!r}", text, position
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


_CMP_OPS = {
    "<": CmpOp.LT,
    "<=": CmpOp.LE,
    "≤": CmpOp.LE,
    "=": CmpOp.EQ,
    "==": CmpOp.EQ,
    "!=": CmpOp.NE,
    "≠": CmpOp.NE,
    ">=": CmpOp.GE,
    "≥": CmpOp.GE,
    ">": CmpOp.GT,
}

_SET_KEYWORD_OPS = {
    "subset": SetOp.SUBSET,
    "superset": SetOp.SUPERSET,
}

_SET_SYMBOL_OPS = {
    "⊆": SetOp.SUBSET,
    "⊄": SetOp.NOT_SUBSET,
    "⊇": SetOp.SUPERSET,
    "⊉": SetOp.NOT_SUPERSET,
}

_FUNCTION_SET_OPS = {
    "disjoint": SetOp.DISJOINT,
    "overlaps": SetOp.OVERLAPS,
    "intersects": SetOp.OVERLAPS,
    "subset": SetOp.SUBSET,
    "superset": SetOp.SUPERSET,
}


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token stream helpers ------------------------------------------
    def _peek(self, ahead: int = 0) -> Optional[_Token]:
        index = self.index + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ConstraintSyntaxError(
                "unexpected end of constraint", self.text, len(self.text)
            )
        self.index += 1
        return token

    def _expect(self, value: str) -> _Token:
        token = self._next()
        if token.value != value:
            raise ConstraintSyntaxError(
                f"expected {value!r}, got {token.value!r}", self.text, token.position
            )
        return token

    def _error(self, message: str, token: Optional[_Token] = None) -> ConstraintSyntaxError:
        position = token.position if token else len(self.text)
        return ConstraintSyntaxError(message, self.text, position)

    # -- grammar --------------------------------------------------------
    def parse(self) -> Constraint:
        constraint = self._constraint()
        trailing = self._peek()
        if trailing is not None:
            raise self._error(f"unexpected trailing input {trailing.value!r}", trailing)
        return constraint

    def _constraint(self) -> Constraint:
        head = self._peek()
        if (
            head is not None
            and head.kind == "name"
            and head.value.lower() in _FUNCTION_SET_OPS
            and self._peek(1) is not None
            and self._peek(1).value == "("
        ):
            return self._function_set_constraint()
        left = self._operand()
        return self._relation(left)

    def _function_set_constraint(self) -> SetComparison:
        func_token = self._next()
        op = _FUNCTION_SET_OPS[func_token.value.lower()]
        self._expect("(")
        left = self._operand()
        self._expect(",")
        right = self._operand()
        self._expect(")")
        self._require_set(left, func_token)
        self._require_set(right, func_token)
        return SetComparison(left, op, right)

    def _relation(self, left) -> Constraint:
        token = self._peek()
        if token is None:
            raise self._error("expected a comparison operator")
        # "A ∩ B = ∅" / "A ∩ B != ∅"
        if token.value == "∩":
            return self._intersection_relation(left)
        # keyword set relations: subset / not subset / superset
        if token.kind == "name":
            return self._keyword_relation(left, token)
        if token.value in _SET_SYMBOL_OPS:
            self._next()
            right = self._operand()
            self._require_set(left, token)
            self._require_set(right, token)
            return SetComparison(left, _SET_SYMBOL_OPS[token.value], right)
        if token.value in _CMP_OPS:
            self._next()
            right = self._operand()
            return self._comparison(left, _CMP_OPS[token.value], right, token)
        raise self._error(f"expected a comparison operator, got {token.value!r}", token)

    def _intersection_relation(self, left) -> SetComparison:
        cap = self._next()  # consume ∩
        right = self._operand()
        self._require_set(left, cap)
        self._require_set(right, cap)
        op_token = self._next()
        if op_token.value in ("=", "=="):
            set_op = SetOp.DISJOINT
        elif op_token.value in ("!=", "≠"):
            set_op = SetOp.OVERLAPS
        else:
            raise self._error(
                f"expected '=' or '!=' after intersection, got {op_token.value!r}",
                op_token,
            )
        empty = self._next()
        is_empty_literal = empty.value == "∅" or (
            empty.value == "{" and self._peek() is not None and self._peek().value == "}"
        )
        if empty.value == "{":
            self._expect("}")
        if not is_empty_literal and empty.value.lower() != "empty":
            raise self._error(
                f"expected the empty set after intersection comparison, got "
                f"{empty.value!r}",
                empty,
            )
        return SetComparison(left, set_op, right)

    def _keyword_relation(self, left, token: _Token) -> SetComparison:
        word = token.value.lower()
        if word == "not":
            self._next()
            next_token = self._next()
            next_word = next_token.value.lower()
            if next_word == "subset":
                op = SetOp.NOT_SUBSET
            elif next_word == "superset":
                op = SetOp.NOT_SUPERSET
            else:
                raise self._error(
                    f"expected 'subset' or 'superset' after 'not', got "
                    f"{next_token.value!r}",
                    next_token,
                )
        elif word in _SET_KEYWORD_OPS:
            self._next()
            op = _SET_KEYWORD_OPS[word]
        else:
            raise self._error(
                f"expected a comparison operator, got {token.value!r}", token
            )
        right = self._operand()
        self._require_set(left, token)
        self._require_set(right, token)
        return SetComparison(left, op, right)

    def _comparison(self, left, op: CmpOp, right, token: _Token) -> Constraint:
        left_set = is_set_expr(left)
        right_set = is_set_expr(right)
        if left_set and right_set:
            if op is CmpOp.EQ:
                return SetComparison(left, SetOp.SETEQ, right)
            if op is CmpOp.NE:
                return SetComparison(left, SetOp.SETNEQ, right)
            raise self._error(
                f"ordering operator {op.value!r} cannot compare two sets", token
            )
        if left_set or right_set:
            raise self._error(
                "cannot compare a set expression with a scalar expression", token
            )
        return Comparison(left, op, right)

    def _operand(self):
        token = self._next()
        if token.kind == "number":
            value = float(token.value)
            return Const(int(value) if value.is_integer() else value)
        if token.value == "{":
            return self._set_literal(token)
        if token.value == "∅":
            return SetConst(frozenset())
        if token.kind == "name":
            word = token.value
            lower = word.lower()
            next_token = self._peek()
            if lower in AGG_FUNCS and next_token is not None and next_token.value == "(":
                return self._aggregate(lower)
            if next_token is not None and next_token.value == ".":
                self._next()
                attr = self._next()
                if attr.kind != "name":
                    raise self._error(
                        f"expected an attribute name after '.', got {attr.value!r}",
                        attr,
                    )
                return AttrRef(word, attr.value)
            return AttrRef(word, None)
        raise self._error(f"unexpected token {token.value!r}", token)

    def _aggregate(self, func: str) -> Agg:
        self._expect("(")
        inner = self._operand()
        self._expect(")")
        if not isinstance(inner, AttrRef):
            raise self._error(
                f"aggregate {func}(...) must take a variable or attribute "
                f"projection, got {inner}"
            )
        return Agg(func, inner)

    def _set_literal(self, opener: _Token) -> SetConst:
        values = []
        token = self._peek()
        if token is not None and token.value == "}":
            self._next()
            return SetConst(frozenset())
        while True:
            token = self._next()
            if token.kind == "number":
                value = float(token.value)
                values.append(int(value) if value.is_integer() else value)
            elif token.kind == "string":
                values.append(token.value[1:-1])
            elif token.kind == "name":
                values.append(token.value)
            else:
                raise self._error(
                    f"unexpected token {token.value!r} in set literal", token
                )
            token = self._next()
            if token.value == "}":
                break
            if token.value != ",":
                raise self._error(
                    f"expected ',' or '}}' in set literal, got {token.value!r}", token
                )
        return SetConst(frozenset(values))

    def _require_set(self, expr, token: _Token) -> None:
        if not is_set_expr(expr):
            raise self._error(
                f"operator near position {token.position} requires set operands, "
                f"got {expr}",
                token,
            )


def parse_constraint(text: str) -> Constraint:
    """Parse one constraint from its textual form.

    >>> parse_constraint("max(S.Price) <= min(T.Price)")
    Comparison(left=Agg(func='max', arg=AttrRef(var='S', attr='Price')), op=<CmpOp.LE: '<='>, right=Agg(func='min', arg=AttrRef(var='T', attr='Price')))
    """
    return _Parser(text).parse()


def parse_constraints(texts: Sequence[Union[str, Constraint]]) -> List[Constraint]:
    """Parse a conjunction given as strings (already-built AST nodes pass
    through unchanged)."""
    parsed: List[Constraint] = []
    for entry in texts:
        if isinstance(entry, str):
            parsed.append(parse_constraint(entry))
        else:
            parsed.append(entry)
    return parsed
