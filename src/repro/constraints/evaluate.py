"""Evaluation of constraints against concrete bound sets.

Given bindings ``{"S": (element ids...), "T": (...)}`` and the domains the
variables range over, :func:`evaluate_constraint` decides whether a
constraint holds.  This is the ground-truth semantics: every pruning
optimization in the library is validated (in tests, and at pair-formation
time) against this function.

Empty-set semantics
-------------------
``sum`` of an empty projection is 0 and ``count`` is 0; ``min``, ``max``
and ``avg`` of an empty projection are undefined, and any comparison
involving an undefined aggregate evaluates to ``False``.  This matches the
usual SQL-flavored reading and keeps pruning conditions conservative.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from repro.constraints.ast import (
    Agg,
    AttrRef,
    Comparison,
    Const,
    Constraint,
    SetComparison,
    SetConst,
)
from repro.db.domain import Domain
from repro.errors import ConstraintTypeError

Bindings = Mapping[str, Iterable[int]]
Domains = Mapping[str, Domain]

_UNDEFINED = object()


def projection_values(ref: AttrRef, elements: Iterable[int], domain: Domain) -> List:
    """The multiset of values ``ref`` projects ``elements`` to.

    ``S.Price`` yields one value per element; a bare variable reference
    (``attr is None``) yields each element's identity value.
    """
    elements = list(elements)
    if ref.attr is None:
        return [domain.element_value(e) for e in elements]
    return domain.catalog.project(elements, ref.attr)


def projection_set(ref: AttrRef, elements: Iterable[int], domain: Domain) -> frozenset:
    """The set of values ``ref`` projects ``elements`` to (``S.A`` as a set)."""
    return frozenset(projection_values(ref, elements, domain))


def evaluate_aggregate(agg: Agg, elements: Iterable[int], domain: Domain):
    """Evaluate an aggregate over a bound set; undefined aggregates return
    the internal sentinel, which makes any enclosing comparison false."""
    values = projection_values(agg.arg, elements, domain)
    if agg.func == "count":
        return len(set(values))
    if agg.func == "sum":
        _require_numeric(agg, values)
        return sum(values)
    if not values:
        return _UNDEFINED
    if agg.func == "min":
        return min(values)
    if agg.func == "max":
        return max(values)
    # avg
    _require_numeric(agg, values)
    return sum(values) / len(values)


def _require_numeric(agg: Agg, values: Sequence) -> None:
    for v in values:
        if not isinstance(v, (int, float)):
            raise ConstraintTypeError(
                f"{agg} aggregates a non-numeric value {v!r}"
            )


def _scalar_side(expr, bindings: Bindings, domains: Domains):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Agg):
        var = expr.arg.var
        return evaluate_aggregate(expr, bindings[var], domains[var])
    raise ConstraintTypeError(f"not a scalar expression: {expr}")


def _set_side(expr, bindings: Bindings, domains: Domains) -> frozenset:
    if isinstance(expr, SetConst):
        return expr.values
    if isinstance(expr, AttrRef):
        return projection_set(expr, bindings[expr.var], domains[expr.var])
    raise ConstraintTypeError(f"not a set expression: {expr}")


def evaluate_constraint(
    constraint: Constraint,
    bindings: Bindings,
    domains: Domains,
) -> bool:
    """Decide whether ``constraint`` holds under ``bindings``.

    Parameters
    ----------
    constraint:
        A :class:`~repro.constraints.ast.Comparison` or
        :class:`~repro.constraints.ast.SetComparison`.
    bindings:
        Mapping from variable name to the element ids of its bound set.
        Every variable the constraint mentions must be bound.
    domains:
        Mapping from variable name to its :class:`~repro.db.domain.Domain`.
    """
    missing = constraint.variables() - set(bindings)
    if missing:
        raise ConstraintTypeError(
            f"constraint {constraint} mentions unbound variables {sorted(missing)}"
        )
    if isinstance(constraint, Comparison):
        left = _scalar_side(constraint.left, bindings, domains)
        right = _scalar_side(constraint.right, bindings, domains)
        if left is _UNDEFINED or right is _UNDEFINED:
            return False
        return constraint.op.apply(left, right)
    if isinstance(constraint, SetComparison):
        left = _set_side(constraint.left, bindings, domains)
        right = _set_side(constraint.right, bindings, domains)
        return constraint.op.apply(left, right)
    raise ConstraintTypeError(f"unknown constraint node: {constraint!r}")


def evaluate_all(
    constraints: Sequence[Constraint],
    bindings: Bindings,
    domains: Domains,
) -> bool:
    """Decide whether a conjunction of constraints holds under ``bindings``."""
    return all(evaluate_constraint(c, bindings, domains) for c in constraints)
