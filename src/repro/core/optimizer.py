"""The CFQ query optimizer (Section 6, Figure 7).

Given a CFQ, the optimizer produces an
:class:`~repro.core.plan.ExecutionPlan`:

1. split the constraint set ``C = C1 ∪ C2`` (purely syntactic);
2. split ``C2 = Cqs ∪ Cnqs`` by quasi-succinctness (Figure 1);
3. induce a weaker quasi-succinct constraint from each member of
   ``Cnqs`` (Figure 4) and schedule the ``J^k_max`` iterative pruning for
   the sum/avg sides (Section 5.2);
4. schedule every member of (the possibly enlarged) ``Cqs`` for reduction
   to 1-var succinct constraints after level 1 (Figures 2/3);
5. hand ``C1`` plus the reduced constraints to CAP, via the dovetailed
   dual-lattice engine;
6. form the final valid pairs, re-verifying the original constraints.

The strategy is ccc-optimal for the class of 1-var succinct and 2-var
quasi-succinct constraints (Theorem 4 and Corollary 2); the audit in
:mod:`repro.core.ccc` verifies the two conditions of Definition 6 on
concrete runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.constraints.twovar import AggAggShape, TwoVarView
from repro.core.classify import classify_twovar
from repro.core.induction import induce_weaker
from repro.core.pairs import form_valid_pairs, rules_from_pairs, valid_sets_existential
from repro.core.plan import ExecutionPlan, JmaxPlan, ReductionPlan, VarPlan
from repro.core.query import CFQ
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.errors import RunInterrupted
from repro.mining.dovetail import DovetailEngine, DovetailResult
from repro.obs.trace import resolve_tracer
from repro.runtime.checkpoint import CheckpointManager, run_fingerprint
from repro.runtime.guard import resolve_guard
from repro.itemsets import Itemset


@dataclass
class CFQResult:
    """The answer to a CFQ plus full instrumentation.

    ``status`` is ``"complete"`` for a run that finished, ``"partial"``
    for one cut short by a :class:`~repro.runtime.guard.RunGuard` budget
    or a signal — then ``interruption`` carries the
    :class:`~repro.runtime.guard.GuardTrip` and the per-variable results
    cover only the levels completed before the trip (see
    ``docs/run-lifecycle.md`` for the exact partial-result contract).
    ``guard`` is the guard the run carried, if any; its telemetry feeds
    :meth:`explain` and the run report's ``budget`` block.
    """

    cfq: CFQ
    plan: ExecutionPlan
    counters: OpCounters
    raw: DovetailResult
    backend: object = None
    trace: object = None
    status: str = "complete"
    interruption: object = None
    guard: object = None
    #: How the serving layer answered this query, when a cache was in
    #: play: ``{"source": "result-cache" | "skeleton" | "cold", ...}``
    #: plus fingerprints, timings, and a cache-stats snapshot.  ``None``
    #: for plain uncached runs.
    cache_info: Optional[Dict] = None

    @property
    def is_partial(self) -> bool:
        return self.status == "partial"

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def frequent_valid(self, var: str) -> Dict[Itemset, int]:
        """The frequent sets of ``var`` surviving all pushed pruning.

        For induced (weaker) constraints this may include sets invalid for
        the original constraint; :meth:`valid_sets` and :meth:`pairs`
        apply the exact verification (footnote 4 of the paper).
        """
        return self.raw.result_for(var).all_sets()

    def valid_sets(self, var: str) -> Dict[Itemset, int]:
        """Frequent sets of ``var`` participating in at least one valid pair
        (for single-variable queries: the frequent valid sets directly)."""
        variables = self.cfq.variables
        if len(variables) == 1:
            return self.frequent_valid(var)
        other = variables[0] if variables[1] == var else variables[1]
        return valid_sets_existential(
            self.frequent_valid(var),
            self.frequent_valid(other),
            self.cfq.parsed,
            var,
            other,
            self.cfq.domains,
            self.counters,
        )

    def pairs(self, limit: Optional[int] = None) -> List[Tuple[Itemset, Itemset]]:
        """The frequent valid pairs — the answer to the CFQ."""
        variables = self.cfq.variables
        if len(variables) != 2:
            raise ValueError("pairs() requires a 2-variable CFQ")
        s_var, t_var = variables
        return form_valid_pairs(
            self.frequent_valid(s_var),
            self.frequent_valid(t_var),
            self.cfq.parsed,
            self.cfq.domains,
            s_var=s_var,
            t_var=t_var,
            counters=self.counters,
            limit=limit,
        )

    def rules(self, db: TransactionDatabase, min_confidence: float = 0.0):
        """Phase-2 association rules from the valid pairs."""
        return rules_from_pairs(self.pairs(), db, min_confidence)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self) -> str:
        """The executed plan, bound histories, per-level pruning table
        and operation counts."""
        from repro.obs.report import pruning_summary, render_pruning_table

        lines = [self.plan.explain()]
        if self.is_partial:
            trip = self.interruption
            lines.append(
                f"  status: PARTIAL — interrupted by {trip.summary()}"
                if trip is not None
                else "  status: PARTIAL"
            )
            lines.append(
                "  partial results cover completed levels only; deeper "
                "sets were never counted"
            )
        for key, history in self.raw.bound_histories.items():
            rendered = ", ".join(f"W^{k}={bound:.6g}" for k, bound in history)
            lines.append(f"  bound series {key}: {rendered}")
        for note in self.raw.disabled_jmax:
            lines.append(f"  note: {note}")
        pruning = pruning_summary(self.raw)
        if pruning:
            lines.append(render_pruning_table(pruning))
        lines.append("  operation counts:")
        for name, value in self.counters.as_dict().items():
            lines.append(f"    {name}: {value}")
        stats = getattr(self.backend, "stats", None)
        if stats is not None and getattr(stats, "levels", None):
            label = getattr(stats, "explain_label", "parallel counting")
            lines.append(f"  {label}: {stats.summary()}")
        if self.cache_info:
            info = self.cache_info
            source = info.get("source", "unknown")
            if info.get("tier"):
                source = f"{source} ({info['tier']} tier)"
            lines.append(f"  cache: source {source}")
            for label, key in (
                ("dataset", "dataset_fingerprint"),
                ("query", "query_fingerprint"),
            ):
                if info.get(key):
                    lines.append(f"    {label} fingerprint: {info[key][:16]}...")
            if info.get("cold_wall_seconds") is not None:
                lines.append(
                    f"    cold wall seconds: {info['cold_wall_seconds']:.6f}"
                )
            if info.get("warm_wall_seconds") is not None:
                lines.append(
                    f"    warm wall seconds: {info['warm_wall_seconds']:.6f}"
                )
            stats_block = info.get("stats")
            if stats_block:
                rendered = ", ".join(
                    f"{name}={value}" for name, value in stats_block.items()
                )
                lines.append(f"    stats: {rendered}")
        if self.guard is not None and getattr(self.guard, "enabled", False):
            telemetry = self.guard.telemetry()
            budgets = {
                name: value
                for name, value in telemetry["budgets"].items()
                if value is not None
            }
            consumed = telemetry["consumed"]
            lines.append("  run budgets:")
            if budgets:
                for name, value in budgets.items():
                    lines.append(f"    {name}: {value}")
            else:
                lines.append("    (none configured; guard active for "
                             "cancellation only)")
            lines.append(
                f"    consumed: {consumed['elapsed_seconds']:.3f}s elapsed"
                + (
                    f", peak rss {consumed['peak_rss_mb']:.0f}MB"
                    if consumed["peak_rss_mb"] is not None
                    else ""
                )
                + f", {consumed['checks']} cooperative checks"
            )
        return "\n".join(lines)


class CFQOptimizer:
    """Builds and executes ccc-conscious strategies for CFQs."""

    def __init__(self, cfq: CFQ):
        self.cfq = cfq

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, db: TransactionDatabase, tracer=None) -> ExecutionPlan:
        """Construct the Figure 7 strategy for this query."""
        tracer = resolve_tracer(tracer)
        cfq = self.cfq
        with tracer.span("optimizer.plan", query=str(cfq)):
            var_plans = {
                var: VarPlan(
                    var=var,
                    domain=cfq.domains[var],
                    min_count=db.min_count(cfq.minsup_for(var)),
                    base_constraints=cfq.onevar_for(var),
                )
                for var in cfq.variables
            }
            plan = ExecutionPlan(var_plans=var_plans)
            for constraint in cfq.twovar:
                view = TwoVarView.of(constraint)
                self._plan_twovar(view, plan, tracer)
            for note in plan.notes:
                tracer.event("plan.note", note=note)
        return plan

    def _plan_twovar(self, view: TwoVarView, plan: ExecutionPlan, tracer=None) -> None:
        tracer = resolve_tracer(tracer)
        with tracer.span("plan.classify", constraint=str(view)) as classify_span:
            properties = classify_twovar(view)
            classify_span.set(
                recognized=view.shape is not None,
                quasi_succinct=bool(properties.quasi_succinct),
            )
        if view.shape is None:
            plan.notes.append(
                f"{view}: unrecognized 2-var form; verified at pair formation only"
            )
            return
        if properties.quasi_succinct:
            with tracer.span("plan.reduce", constraint=str(view), induced=False):
                plan.reductions.append(ReductionPlan(view))
            return
        shape = view.shape
        if not isinstance(shape, AggAggShape):
            plan.notes.append(
                f"{view}: non-quasi-succinct non-aggregate form; pair-time only"
            )
            return
        if not self._sides_non_negative(shape):
            plan.notes.append(
                f"{view}: aggregated domain may be negative; the Section 5 "
                f"machinery is invalid there, so the constraint is verified "
                f"at pair formation only"
            )
            return
        with tracer.span("plan.induce", constraint=str(view)) as induce_span:
            induced = induce_weaker(view)
            induce_span.set(
                weaker=str(induced.weaker) if induced.weaker is not None else None,
                pruned_var=induced.pruned_var,
            )
        if induced.weaker is not None:
            with tracer.span("plan.reduce", constraint=str(induced.weaker),
                             induced=True):
                plan.reductions.append(
                    ReductionPlan(induced.weaker, induced_from=view.constraint)
                )
        oriented = shape if shape.op.is_le_like or shape.op.value in ("=",) else (
            shape.oriented(shape.right_var)
        )
        if induced.pruned_var is not None and oriented.right_func in ("sum", "avg"):
            with tracer.span(
                "plan.jmax",
                constraint=str(view),
                bound_var=oriented.right_var,
                bound_kind=oriented.right_func,
                pruned_var=induced.pruned_var,
            ):
                plan.jmax.append(
                    JmaxPlan(
                        bound_var=oriented.right_var,
                        bound_attr=oriented.right_attr,
                        bound_kind=oriented.right_func,
                        pruned_var=induced.pruned_var,
                        pruned_func=induced.pruned_func,
                        pruned_attr=induced.pruned_attr,
                        strict=induced.strict,
                        source=str(view),
                    )
                )
        if induced.weaker is None and induced.pruned_var is None:
            plan.notes.append(
                f"{view}: nothing to induce (Figure 4 does not apply); "
                f"pair-time verification only"
            )

    def _sides_non_negative(self, shape: AggAggShape) -> bool:
        for var, attr in (
            (shape.left_var, shape.left_attr),
            (shape.right_var, shape.right_attr),
        ):
            domain = self.cfq.domains[var]
            if attr is None:
                values = [domain.element_value(e) for e in domain.elements]
                if not all(isinstance(v, (int, float)) and v >= 0 for v in values):
                    return False
            elif not domain.catalog.non_negative_attribute(attr):
                return False
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        db: TransactionDatabase,
        counters: Optional[OpCounters] = None,
        dovetail: bool = True,
        use_reduction: bool = True,
        use_jmax: bool = True,
        keep_candidates: bool = False,
        backend=None,
        reduction_rounds: int = 1,
        tracer=None,
        guard=None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        cache=None,
        support_oracle=None,
    ) -> CFQResult:
        """Plan and run the query; the keyword flags drive the ablations.

        ``guard`` is an optional :class:`~repro.runtime.guard.RunGuard`:
        when one of its budgets trips (or cancellation was requested) the
        run unwinds and a ``status="partial"`` result is returned instead
        of raising — the completed levels, the trip, and the guard
        telemetry are all on the result.  ``checkpoint_dir`` enables
        crash-safe checkpointing after every completed level;
        ``resume=True`` additionally replays a stored checkpoint (the
        fingerprint must match this query, database, and option set).

        ``cache`` is a duck-typed result-cache hook (the serving layer's
        :class:`~repro.serve.QueryService` supplies one): an object with
        ``lookup(db, cfq, options)`` returning ``None`` or a hit carrying
        ``raw``/``counters_snapshot``/``info``, and ``store(db, cfq,
        options, result, elapsed_seconds)``.  A hit skips mining entirely
        (the caller's ``counters`` are overwritten with the cold run's
        snapshot, exactly as checkpoint resume does); a miss stores the
        completed result.  Runs that checkpoint, resume, or keep
        candidate logs bypass the cache, and partial (guard-tripped)
        results are never stored.  ``support_oracle`` substitutes cached
        skeleton supports for database passes (see
        :class:`~repro.mining.dovetail.DovetailEngine`).
        """
        tracer = resolve_tracer(tracer)
        guard = resolve_guard(guard)
        cache_options = {
            "dovetail": dovetail,
            "use_reduction": use_reduction,
            "use_jmax": use_jmax,
            "reduction_rounds": reduction_rounds,
        }
        cacheable = (
            cache is not None
            and checkpoint_dir is None
            and not resume
            and not keep_candidates
            and support_oracle is None
        )
        if cacheable:
            hit = cache.lookup(db, self.cfq, cache_options)
            if hit is not None:
                plan = self.plan(db, tracer=tracer)
                if counters is None:
                    counters = OpCounters()
                counters.restore(hit.counters_snapshot)
                raw = hit.raw
                raw.counters = counters
                tracer.event("cache.hit", query=str(self.cfq))
                return CFQResult(
                    cfq=self.cfq,
                    plan=plan,
                    counters=counters,
                    raw=raw,
                    backend=None,
                    trace=tracer if tracer.enabled else None,
                    status="complete",
                    cache_info=dict(getattr(hit, "info", None) or {}),
                )
        checkpointer = None
        if checkpoint_dir is not None:
            fingerprint = run_fingerprint(
                str(self.cfq), db,
                {
                    "dovetail": dovetail,
                    "use_reduction": use_reduction,
                    "use_jmax": use_jmax,
                    "reduction_rounds": reduction_rounds,
                    "max_level": self.cfq.max_level,
                },
            )
            checkpointer = CheckpointManager(checkpoint_dir, fingerprint)
        elif resume:
            raise ValueError("resume=True requires a checkpoint_dir")
        status = "complete"
        interruption = None
        with tracer.span("optimizer.execute", query=str(self.cfq)):
            plan = self.plan(db, tracer=tracer)
            engine = DovetailEngine(
                db,
                plan,
                counters=counters,
                dovetail=dovetail,
                use_reduction=use_reduction,
                use_jmax=use_jmax,
                max_level=self.cfq.max_level,
                keep_candidates=keep_candidates,
                backend=backend,
                reduction_rounds=reduction_rounds,
                tracer=tracer,
                guard=guard,
                checkpointer=checkpointer,
                resume=resume,
                support_oracle=support_oracle,
            )
            start = time.perf_counter()
            try:
                raw = engine.run()
            except RunInterrupted as exc:
                # Graceful degradation: package whatever completed as a
                # well-labeled partial result instead of re-raising.
                status = "partial"
                interruption = exc.trip
                raw = engine.partial_result()
                tracer.event(
                    "run.interrupted",
                    reason=getattr(exc.trip, "reason", None),
                    detail=str(exc),
                )
            elapsed = time.perf_counter() - start
        result = CFQResult(
            cfq=self.cfq,
            plan=plan,
            counters=engine.counters,
            raw=raw,
            backend=engine.backend,
            trace=tracer if tracer.enabled else None,
            status=status,
            interruption=interruption,
            guard=guard if guard.enabled else None,
        )
        if cacheable and status == "complete":
            result.cache_info = cache.store(
                db, self.cfq, cache_options, result, elapsed
            )
        return result


def mine_cfq(
    db: TransactionDatabase,
    cfq: CFQ,
    counters: Optional[OpCounters] = None,
    **options,
) -> CFQResult:
    """One-call entry point: optimize and execute a CFQ."""
    return CFQOptimizer(cfq).execute(db, counters=counters, **options)
