"""Induced weaker constraints for ``sum``/``avg`` (Section 5.1, Figure 4).

A 2-var constraint involving ``sum`` or ``avg`` is not quasi-succinct, but
— over **non-negative** domains — it *implies* a weaker constraint that
is, which can then be reduced via Figure 3 and pushed as usual.  In the
normalized ``lhs ≤ rhs`` orientation the paper's rules are::

    avg(S.A)  ≤  agg(T.B)    induces    min(S.A)  ≤  agg(T.B)     (i)
    sum(S.A)  ≤  agg(T.B)    induces    max(S.A)  ≤  agg(T.B)     (ii)
    agg(S.A)  ≤  avg(T.B)    induces    agg(S.A)  ≤  max(T.B)     (iii)

because ``min ≤ avg ≤ max ≤ sum`` pointwise over non-negative values.
There is **no** min/max weakening for a ``sum`` on the *greater* side:
nothing among min/max/avg dominates sum.  For those constraints the
induction instead emits the paper's direct "loose" bound
``lhs'(CS.A) ≤ sum(L1T.B)`` — numerically weak (the motivating example in
Section 5.1: the bound 5050) — which is exactly the gap the iterative
``J^k_max`` pruning of Section 5.2 closes.

Pruning with an induced constraint is sound but not tight: final answers
are re-verified against the original constraint at pair-formation time
(footnote 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constraints.ast import Agg, AttrRef, CmpOp, Comparison, Constraint
from repro.constraints.twovar import AggAggShape, TwoVarView
from repro.errors import ClassificationError

#: Weakenings for the lesser side of a ``≤``: replacements that are
#: pointwise <= the original aggregate on non-negative domains.
_WEAKEN_LESSER = {"sum": "max", "avg": "min", "min": "min", "max": "max"}

#: Weakenings for the greater side of a ``≤``: replacements that are
#: pointwise >= the original aggregate on non-negative domains.  ``sum``
#: has no such replacement (None).
_WEAKEN_GREATER = {"sum": None, "avg": "max", "min": "min", "max": "max"}


@dataclass(frozen=True)
class InducedConstraint:
    """The outcome of weakening one non-quasi-succinct constraint.

    Attributes
    ----------
    original:
        The constraint the user wrote.
    weaker:
        A quasi-succinct 2-var constraint implied by the original, or
        ``None`` when none exists (a ``sum`` on the greater side with a
        min/max lesser side leaves nothing 2-var to induce).
    sum_side_var / sum_side_attr:
        Set when the greater side aggregates with ``sum``: the variable
        and attribute whose frequent-set sums must be bounded — the input
        to the ``J^k_max`` machinery (and to the loose ``sum(L1)`` bound).
    pruned_var / pruned_func / pruned_attr:
        The lesser-side variable as (func, attr) after weakening — the
        side that receives the ``V^k``/``A^k`` series.
    strict:
        Whether the original comparison was strict.
    """

    original: TwoVarView
    weaker: Optional[TwoVarView]
    sum_side_var: Optional[str] = None
    sum_side_attr: Optional[str] = None
    pruned_var: Optional[str] = None
    pruned_func: Optional[str] = None
    pruned_attr: Optional[str] = None
    strict: bool = False


def induce_weaker(view: TwoVarView) -> InducedConstraint:
    """Apply Figure 4 to a non-quasi-succinct aggregate constraint.

    The caller must have checked (via the catalog) that both aggregated
    attributes are non-negative; the rules are invalid otherwise.

    Equality constraints are handled as the conjunction of both
    directions; since only one direction can be pushed per variable
    anyway, the ``<=`` direction is induced and the rest is left to final
    verification.  ``!=`` induces nothing.
    """
    shape = view.shape
    if shape is None or not isinstance(shape, AggAggShape):
        raise ClassificationError(f"{view} is not a 2-var aggregate constraint")
    if shape.min_max_only:
        raise ClassificationError(
            f"{view} is already quasi-succinct; reduce it directly"
        )

    if shape.op.is_ge_like:
        shape = shape.oriented(shape.right_var)
    if shape.op is CmpOp.NE:
        return InducedConstraint(original=view, weaker=None)
    # EQ is treated through its <= direction.
    lesser_func = _WEAKEN_LESSER.get(shape.left_func)
    greater_func = _WEAKEN_GREATER.get(shape.right_func)
    if lesser_func is None or shape.left_func == "count" or shape.right_func == "count":
        # count-based 2-var constraints are outside Figure 4; nothing to induce.
        return InducedConstraint(original=view, weaker=None)

    op = CmpOp.LT if shape.op is CmpOp.LT else CmpOp.LE
    sum_on_greater = shape.right_func == "sum"
    weaker_view: Optional[TwoVarView] = None
    if greater_func is not None:
        weaker_constraint: Constraint = Comparison(
            Agg(lesser_func, AttrRef(shape.left_var, shape.left_attr)),
            op,
            Agg(greater_func, AttrRef(shape.right_var, shape.right_attr)),
        )
        weaker_view = TwoVarView.of(weaker_constraint)

    return InducedConstraint(
        original=view,
        weaker=weaker_view,
        sum_side_var=shape.right_var if sum_on_greater else None,
        sum_side_attr=shape.right_attr if sum_on_greater else None,
        pruned_var=shape.left_var,
        pruned_func=shape.left_func if shape.left_func in ("sum", "avg") else lesser_func,
        pruned_attr=shape.left_attr,
        strict=op is CmpOp.LT,
    )
