"""Quasi-succinct reduction: Figures 2 and 3 of the paper.

A quasi-succinct 2-var constraint ``C(S, T)`` reduces to two 1-var
*succinct* constraints ``C1(S, qc_s)`` and ``C2(T, qc_t)`` whose constants
are computed from the level-1 frequent elements of the *other* variable —
sets the levelwise computation produces anyway, which is why the paper
calls the de-coupling essentially free.

Figure 2 (domain constraints)::

    C                    C1(S)                     C2(T)
    S.A ∩ T.B = ∅        CS.A ⊄ L1T.B              CT.B ⊄ L1S.A
    S.A ∩ T.B ≠ ∅        CS.A ∩ L1T.B ≠ ∅          CT.B ∩ L1S.A ≠ ∅
    S.A ⊆ T.B            CS.A ⊆ L1T.B              L1S.A ∩ CT.B ≠ ∅
    S.A ⊄ T.B            (CS ≠ ∅, trivial)         L1S.A ⊄ CT.B
    S.A = T.B            CS.A ⊆ L1T.B              CT.B ⊆ L1S.A

Figure 3 (min/max aggregates) collapses, once shapes are oriented with
the reduced variable on the left, to a single rule::

    f(X.A) ≤ g(Y.B)   ->   f(CX.A) ≤ max(L1Y.B)
    f(X.A) ≥ g(Y.B)   ->   f(CX.A) ≥ min(L1Y.B)

with equality treated as the conjunction of both directions (the paper's
tables list the four ≤ rows explicitly; the rule above reproduces each).

The reductions are emitted as ordinary 1-var AST constraints so the
standard CAP compilation (:func:`repro.constraints.pruners.compile_onevar`)
turns them into item filters and required buckets — which is precisely
what makes them succinct pruning conditions.

Tightness caveat: all emitted conditions are *sound*; every non-equality
row is also *tight* (Theorems 2 and 3).  The equality-aggregate rows use
the two directional bounds, which are sound but not tight (exact
verification happens at pair formation, as for induced constraints).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.constraints.ast import (
    Agg,
    AttrRef,
    CmpOp,
    Comparison,
    Const,
    Constraint,
    SetComparison,
    SetConst,
    SetOp,
)
from repro.constraints.twovar import AggAggShape, SetSetShape, TwoVarView
from repro.db.domain import Domain
from repro.errors import ClassificationError


def other_side_values(
    shape, domains: Mapping[str, Domain], l1_elements: Mapping[str, Iterable[int]]
) -> frozenset:
    """The value set ``L1Y.B`` for an oriented shape's right-hand side."""
    y = shape.right_var
    domain = domains[y]
    elements = l1_elements[y]
    if shape.right_attr is None:
        return frozenset(domain.element_value(e) for e in elements)
    return domain.catalog.project_set(elements, shape.right_attr)


def _unsatisfiable(var: str, attr) -> Constraint:
    # No frequent set exists on the other side, so no set of `var` can be
    # valid; an empty-subset constraint compiles to an empty item filter.
    return SetComparison(AttrRef(var, attr), SetOp.SUBSET, SetConst(frozenset()))


def reduce_twovar(
    view: TwoVarView,
    domains: Mapping[str, Domain],
    l1_elements: Mapping[str, Iterable[int]],
) -> Dict[str, List[Constraint]]:
    """Reduce a quasi-succinct 2-var constraint to per-variable 1-var
    succinct constraints.

    Parameters
    ----------
    view:
        The 2-var constraint; must have a recognized shape with both sides
        aggregating via min/max only (for aggregate shapes).
    domains:
        Per-variable domains.
    l1_elements:
        Per-variable frequent level-1 elements (``L1``).  Using the
        variable's *constrained* L1 (frequent elements passing its item
        filters) is sound and tighter than the plain frequent L1, since
        elements of any valid set individually pass all item filters.

    Returns
    -------
    ``{var: [1-var constraints]}`` — an empty list means the reduction for
    that variable is trivial (no pruning power), as for the ``S`` side of
    ``S.A ⊄ T.B``.
    """
    shape = view.shape
    if shape is None:
        raise ClassificationError(f"{view} has no reducible shape")
    l1_elements = {v: tuple(es) for v, es in l1_elements.items()}
    reduced: Dict[str, List[Constraint]] = {}
    for var in sorted(view.variables):
        oriented = shape.oriented(var)
        if not l1_elements[oriented.right_var]:
            # No frequent singleton on the other side means no frequent
            # set at all there, hence no valid pair can involve `var`.
            reduced[var] = [_unsatisfiable(var, oriented.left_attr)]
            continue
        values = other_side_values(oriented, domains, l1_elements)
        if isinstance(oriented, SetSetShape):
            reduced[var] = _reduce_set_shape(oriented, values)
        else:
            reduced[var] = _reduce_agg_shape(oriented, values)
    return reduced


def _reduce_set_shape(shape: SetSetShape, values: frozenset) -> List[Constraint]:
    ref = AttrRef(shape.left_var, shape.left_attr)
    const = SetConst(values)
    op = shape.op
    if op is SetOp.DISJOINT:
        # Lemma 2/3: CX is valid iff it does not swallow every value of
        # L1Y.B — if it did, every frequent partner (whose values all lie
        # in L1Y.B) would intersect it.  An anti-monotone, succinct
        # condition; note the direction is ⊉, not ⊄.
        return [SetComparison(ref, SetOp.NOT_SUPERSET, const)]
    if op is SetOp.OVERLAPS:
        return [SetComparison(ref, SetOp.OVERLAPS, const)]
    if op is SetOp.SUBSET:
        return [SetComparison(ref, SetOp.SUBSET, const)]
    if op is SetOp.SUPERSET:
        # Figure 2, C2 column of the S.A ⊆ T.B row: L1S.A ∩ CT.B ≠ ∅.
        if not values:
            return [_unsatisfiable(shape.left_var, shape.left_attr)]
        return [SetComparison(ref, SetOp.OVERLAPS, const)]
    if op is SetOp.SETEQ:
        return [SetComparison(ref, SetOp.SUBSET, const)]
    if op is SetOp.NOT_SUBSET:
        # Figure 2 row 4, C1 column: CS ≠ ∅ — trivially true in mining.
        return []
    if op is SetOp.NOT_SUPERSET:
        # Figure 2 row 4, C2 column: L1S.A ⊄ CT.B — an anti-monotone
        # testable condition (the set's values must not cover L1Y.B).
        if not values:
            return [_unsatisfiable(shape.left_var, shape.left_attr)]
        return [SetComparison(ref, SetOp.NOT_SUPERSET, const)]
    # SETNEQ: the paper's extreme example of a trivial reduction.
    return []


def _reduce_agg_shape(shape: AggAggShape, values: frozenset) -> List[Constraint]:
    if not shape.min_max_only:
        raise ClassificationError(
            f"{shape} involves sum/avg/count; reduce its induced weaker "
            f"constraint instead (Section 5.1)"
        )
    if not values:
        return [_unsatisfiable(shape.left_var, shape.left_attr)]
    numeric = [v for v in values]
    agg = Agg(shape.left_func, AttrRef(shape.left_var, shape.left_attr))
    op = shape.op
    if op.is_le_like:
        return [Comparison(agg, op, Const(max(numeric)))]
    if op.is_ge_like:
        return [Comparison(agg, op, Const(min(numeric)))]
    if op is CmpOp.EQ:
        return [
            Comparison(agg, CmpOp.LE, Const(max(numeric))),
            Comparison(agg, CmpOp.GE, Const(min(numeric))),
        ]
    # NE: some frequent singleton on the other side differs unless the
    # other side carries a single constant value everywhere; no useful
    # succinct pruning either way.
    return []
