"""The paper's primary contribution: 2-var constraint optimization.

* :mod:`repro.core.classify` — the Figure 1 characterization
  (anti-monotonicity and quasi-succinctness of 2-var constraints);
* :mod:`repro.core.reduction` — the Figure 2/3 quasi-succinct reductions
  to 1-var succinct constraints;
* :mod:`repro.core.induction` — the Figure 4 induced weaker constraints
  for ``sum``/``avg``;
* :mod:`repro.core.jmax` — the ``J^k_max`` bound and the ``V^k``/``A^k``
  series of Section 5.2;
* :mod:`repro.core.query` — the CFQ object;
* :mod:`repro.core.optimizer` — the Figure 7 query optimizer;
* :mod:`repro.core.ccc` — ccc-optimality accounting and audit;
* :mod:`repro.core.pairs` — final pair formation and rule generation.
"""

from repro.core.classify import TwoVarProperties, classify_twovar
from repro.core.induction import induce_weaker
from repro.core.jmax import BoundSeries, jmax_upper_bound, vk_sum_bound
from repro.core.optimizer import CFQOptimizer, CFQResult
from repro.core.pairs import form_valid_pairs, valid_sets_existential
from repro.core.query import CFQ
from repro.core.reduction import reduce_twovar

__all__ = [
    "TwoVarProperties",
    "classify_twovar",
    "induce_weaker",
    "BoundSeries",
    "jmax_upper_bound",
    "vk_sum_bound",
    "CFQOptimizer",
    "CFQResult",
    "form_valid_pairs",
    "valid_sets_existential",
    "CFQ",
    "reduce_twovar",
]
