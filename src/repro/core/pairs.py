"""Final pair formation: the last box of Figure 7.

Once the frequent valid S- and T-sets are computed, the answer to the CFQ
is the set of pairs ``(S0, T0)`` jointly satisfying every constraint.
The paper treats this step as comparatively trivial ("typically many
orders of magnitude" cheaper than the lattice computation); nonetheless
the checks performed here are metered (``pair_checks``) so the ccc audit
can confirm that claim on real runs.

Also provided: existential validity filtering (Definition 3's valid
S-sets), and phase-2 rule generation ``S => T`` with support/confidence
for same-domain variables — the second phase of the exploratory
architecture the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.ast import Constraint, is_onevar, is_twovar
from repro.constraints.evaluate import evaluate_constraint
from repro.db.domain import Domain
from repro.db.stats import OpCounters
from repro.db.transactions import TransactionDatabase
from repro.itemsets import Itemset, canonical


def split_constraints(
    constraints: Sequence[Constraint],
) -> Tuple[Dict[str, List[Constraint]], List[Constraint]]:
    """Split a conjunction into per-variable 1-var lists and 2-var list —
    the purely syntactic first step of the Figure 7 optimizer."""
    onevar: Dict[str, List[Constraint]] = {}
    twovar: List[Constraint] = []
    for constraint in constraints:
        if is_onevar(constraint):
            (var,) = constraint.variables()
            onevar.setdefault(var, []).append(constraint)
        elif is_twovar(constraint):
            twovar.append(constraint)
    return onevar, twovar


def form_valid_pairs(
    s_sets: Mapping[Itemset, int],
    t_sets: Mapping[Itemset, int],
    constraints: Sequence[Constraint],
    domains: Mapping[str, Domain],
    s_var: str = "S",
    t_var: str = "T",
    counters: Optional[OpCounters] = None,
    limit: Optional[int] = None,
) -> List[Tuple[Itemset, Itemset]]:
    """Enumerate the frequent valid pairs.

    1-var constraints are applied to each side once (not per pair);
    2-var constraints are then checked on the surviving cross product.
    ``limit`` truncates the output (useful for exploration).
    """
    onevar, twovar = split_constraints(constraints)
    s_survivors = _filter_onevar(s_sets, onevar.get(s_var, []), s_var, domains, counters)
    t_survivors = _filter_onevar(t_sets, onevar.get(t_var, []), t_var, domains, counters)
    pairs: List[Tuple[Itemset, Itemset]] = []
    for s0 in s_survivors:
        for t0 in t_survivors:
            ok = True
            for constraint in twovar:
                if counters is not None:
                    counters.pair_checks += 1
                if not evaluate_constraint(
                    constraint, {s_var: s0, t_var: t0}, domains
                ):
                    ok = False
                    break
            if ok:
                pairs.append((s0, t0))
                if limit is not None and len(pairs) >= limit:
                    return pairs
    return pairs


def valid_sets_existential(
    sets: Mapping[Itemset, int],
    other_sets: Mapping[Itemset, int],
    constraints: Sequence[Constraint],
    var: str,
    other_var: str,
    domains: Mapping[str, Domain],
    counters: Optional[OpCounters] = None,
) -> Dict[Itemset, int]:
    """Frequent sets of ``var`` that participate in at least one valid pair.

    This is the joint-existential strengthening of Definition 3: a set
    survives iff it satisfies its own 1-var constraints and some frequent
    set of the other variable (satisfying *its* 1-var constraints) makes
    every 2-var constraint true simultaneously.
    """
    onevar, twovar = split_constraints(constraints)
    own = _filter_onevar(sets, onevar.get(var, []), var, domains, counters)
    partners = _filter_onevar(
        other_sets, onevar.get(other_var, []), other_var, domains, counters
    )
    if not twovar:
        return own
    survivors: Dict[Itemset, int] = {}
    for candidate, support in own.items():
        for partner in partners:
            ok = True
            for constraint in twovar:
                if counters is not None:
                    counters.pair_checks += 1
                if not evaluate_constraint(
                    constraint, {var: candidate, other_var: partner}, domains
                ):
                    ok = False
                    break
            if ok:
                survivors[candidate] = support
                break
    return survivors


def _filter_onevar(
    sets: Mapping[Itemset, int],
    constraints: Sequence[Constraint],
    var: str,
    domains: Mapping[str, Domain],
    counters: Optional[OpCounters],
) -> Dict[Itemset, int]:
    if not constraints:
        return dict(sets)
    survivors: Dict[Itemset, int] = {}
    for itemset, support in sets.items():
        ok = True
        for constraint in constraints:
            if counters is not None:
                counters.pair_checks += 1
            if not evaluate_constraint(constraint, {var: itemset}, {var: domains[var]}):
                ok = False
                break
        if ok:
            survivors[itemset] = support
    return survivors


# ----------------------------------------------------------------------
# Phase 2: rule formation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """An association rule ``S => T`` with its quality measures."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{set(self.antecedent)} => {set(self.consequent)} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f})"
        )


def rules_from_pairs(
    pairs: Sequence[Tuple[Itemset, Itemset]],
    db: TransactionDatabase,
    min_confidence: float = 0.0,
) -> List[Rule]:
    """Form ``S => T`` rules from valid pairs over a shared item domain.

    Requires one extra pass per distinct union to count joint supports
    (the paper's phase-2 computation).  Pairs with overlapping antecedent
    and consequent are skipped, as the rule reading makes no sense there.
    """
    n = len(db)
    if n == 0:
        return []
    support_cache: Dict[Itemset, int] = {}
    rules: List[Rule] = []
    for antecedent, consequent in pairs:
        if set(antecedent) & set(consequent):
            continue
        union = canonical(set(antecedent) | set(consequent))
        if union not in support_cache:
            support_cache[union] = db.support(union)
        if antecedent not in support_cache:
            support_cache[antecedent] = db.support(antecedent)
        joint = support_cache[union]
        ante = support_cache[antecedent]
        confidence = joint / ante if ante else 0.0
        if confidence >= min_confidence:
            rules.append(Rule(antecedent, consequent, joint / n, confidence))
    return rules
