"""Iterative pruning with ``J^k_max`` (Section 5.2, Figures 5 and 6).

Given all frequent T-sets of size ``k``, Figure 5 derives a combinatorial
upper bound on the size of the largest frequent T-set:

1. ``N_i^k`` — the number of frequent k-sets containing element ``t_i``;
2. ``J_i^k`` — the largest ``j`` with ``N_i^k >= C(k+j-1, k-1)`` (for
   ``t_i`` to occur in a frequent set of size ``k+j`` it must occur in at
   least that many frequent k-sets);
3. ``J^k_max = max_i J_i^k``.

Figure 6 turns this into a value bound: for each ``t_i``, take the
frequent k-set ``T_i^k`` containing ``t_i`` with maximum ``sum(T.B)``
(call it ``Sum_i^k``), add the top ``J^k_max`` B-values among elements
co-occurring with ``t_i`` (outside ``T_i^k``), and maximize over ``i`` —
yielding ``V^k``, an upper bound on ``sum(T.B)`` over frequent T-sets *of
size >= k*.

:class:`BoundSeries` maintains the overall bound ``W^k`` used for pruning:
the maximum of ``V^k`` and the largest sum among the frequent T-sets of
size <= k already enumerated.  (The paper's Lemma 6 uses ``V^k`` directly;
``W^k`` makes the small-set case explicit — ``V^k`` only covers sets of
size >= k — while preserving Lemma 7's monotone decrease, since every
frequent (k+1)-set's sum is itself <= ``V^k``.)

The series is sound only when the T-side lattice enumerates *all*
frequent sets over its (possibly filter-restricted) universe; required
buckets or anti-monotone checks on the T side would hide frequent sets
from the statistics, so the engine disables the series in that case.

An analogous series bounds ``avg(T.B)`` (the ``A^k`` values the paper
sketches at the end of Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb, inf
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import ExecutionError

# Local alias rather than an import from repro.mining: this module is a
# dependency of the mining engine, and importing the mining package here
# would close an import cycle.
Itemset = Tuple[int, ...]


def element_set_counts(frequent_k: Iterable[Itemset]) -> Dict[int, int]:
    """``N_i^k``: how many frequent k-sets contain each element."""
    counts: Dict[int, int] = {}
    for itemset in frequent_k:
        for element in itemset:
            counts[element] = counts.get(element, 0) + 1
    return counts


def j_bound(n_sets: int, k: int) -> int:
    """``J_i^k``: the largest ``j`` with ``n_sets >= C(k+j-1, k-1)``."""
    if k < 2:
        raise ExecutionError("J bounds are defined for k >= 2 (Figure 5)")
    j = 0
    while n_sets >= comb(k + j, k - 1):
        j += 1
    return j


def jmax_upper_bound(frequent_k: Iterable[Itemset], k: int) -> int:
    """``J^k_max`` per Figure 5 — an upper bound on how many elements the
    largest frequent set can have beyond ``k``.

    As the paper notes, step 3 only needs the maximum ``N_i^k``.
    """
    counts = element_set_counts(frequent_k)
    if not counts:
        return 0
    return j_bound(max(counts.values()), k)


def _cooccurrence_index(frequent_k: List[Itemset]) -> Dict[int, List[int]]:
    """Map each element to the indices of the frequent k-sets containing it."""
    index: Dict[int, List[int]] = {}
    for position, itemset in enumerate(frequent_k):
        for element in itemset:
            index.setdefault(element, []).append(position)
    return index


def vk_sum_bound(
    frequent_k: Iterable[Itemset],
    values: Mapping[int, float],
    jmax: int,
) -> float:
    """``V^k`` per Figure 6: an upper bound on ``sum(T.B)`` over frequent
    T-sets of size >= k.

    ``values`` maps each element to its B-value.  Returns ``-inf`` when
    there are no frequent k-sets (no set of size >= k can be frequent).
    """
    sets = list(frequent_k)
    if not sets:
        return -inf
    sums = [sum(values[e] for e in itemset) for itemset in sets]
    index = _cooccurrence_index(sets)
    best = -inf
    for positions in index.values():
        # T_i^k: the containing set with maximum sum.
        best_position = max(positions, key=sums.__getitem__)
        base_sum = sums[best_position]
        base_set = frozenset(sets[best_position])
        if jmax > 0:
            cooccurring = set()
            for position in positions:
                cooccurring.update(sets[position])
            extras = sorted(
                (values[e] for e in cooccurring - base_set), reverse=True
            )[:jmax]
            candidate = base_sum + sum(extras)
        else:
            candidate = base_sum
        if candidate > best:
            best = candidate
    return best


def ak_avg_bound(
    frequent_k: Iterable[Itemset],
    values: Mapping[int, float],
    jmax: int,
    k: int,
) -> float:
    """``A^k``: an upper bound on ``avg(T.B)`` over frequent T-sets of
    size >= k, via the same co-occurrence statistics as ``V^k``."""
    sets = list(frequent_k)
    if not sets:
        return -inf
    sums = [sum(values[e] for e in itemset) for itemset in sets]
    index = _cooccurrence_index(sets)
    best = -inf
    for positions in index.values():
        best_position = max(positions, key=sums.__getitem__)
        base_sum = sums[best_position]
        base_set = frozenset(sets[best_position])
        best = max(best, base_sum / k)
        if jmax > 0:
            cooccurring = set()
            for position in positions:
                cooccurring.update(sets[position])
            extras = sorted(
                (values[e] for e in cooccurring - base_set), reverse=True
            )
            running = base_sum
            for j, extra in enumerate(extras[:jmax], start=1):
                running += extra
                best = max(best, running / (k + j))
    return best


@dataclass
class BoundSeries:
    """The decreasing series ``W^2 >= W^3 >= ...`` of Section 5.2.

    One instance tracks the bound for one (variable, attribute) pair on
    the "greater" side of a non-quasi-succinct constraint.  Feed it every
    level of that variable's lattice via :meth:`update`; read
    :attr:`bound` any time.  ``kind`` selects the aggregate bounded:
    ``"sum"`` (the ``V^k`` series) or ``"avg"`` (the ``A^k`` series).
    """

    values: Mapping[int, float]
    kind: str = "sum"
    bound: float = inf
    history: List[Tuple[int, float]] = field(default_factory=list)
    _seen_max: float = -inf

    def __post_init__(self) -> None:
        if self.kind not in ("sum", "avg"):
            raise ExecutionError(f"unknown bound kind {self.kind!r}")

    def start(self, level1_elements: Iterable[int]) -> float:
        """Initialize from L1: the loose ``sum(L1T.B)`` bound the paper
        uses as the obvious-but-ineffective starting point (for ``avg``,
        ``max(L1T.B)``)."""
        element_values = [self.values[e] for e in level1_elements]
        if not element_values:
            self.bound = -inf
            self.history.append((1, self.bound))
            return self.bound
        # Every frequent singleton {t} is itself a frequent set with
        # sum (and avg) equal to value(t); the bound may never drop
        # below the largest of these.
        self._seen_max = max(element_values)
        if self.kind == "sum":
            positive_total = sum(v for v in element_values if v > 0)
            self.bound = max(positive_total, self._seen_max)
        else:
            self.bound = self._seen_max
        self.history.append((1, self.bound))
        return self.bound

    def update(self, k: int, frequent_k: Iterable[Itemset]) -> float:
        """Absorb level ``k``'s frequent sets and tighten the bound."""
        sets = list(frequent_k)
        if k < 2:
            raise ExecutionError("BoundSeries.update expects k >= 2; use start()")
        for itemset in sets:
            total = sum(self.values[e] for e in itemset)
            measured = total if self.kind == "sum" else total / len(itemset)
            if measured > self._seen_max:
                self._seen_max = measured
        jmax = jmax_upper_bound(sets, k)
        if self.kind == "sum":
            large = vk_sum_bound(sets, self.values, jmax)
        else:
            large = ak_avg_bound(sets, self.values, jmax, k)
        candidate = max(large, self._seen_max)
        if candidate < self.bound:
            self.bound = candidate
        self.history.append((k, self.bound))
        return self.bound
