"""Brute-force empirical checkers for the paper's definitions.

These utilities make the paper's *claims* testable on concrete data:

* :func:`def3_valid_sets` — Definition 3's valid S-sets by exhaustive
  enumeration;
* :func:`reduction_soundness_tightness` — checks Theorems 2/3: the
  reduced 1-var constraints prune no valid set (sound) and prune every
  invalid one (tight);
* :func:`anti_monotone_counterexample` — searches for a violation of
  2-var anti-monotonicity (Definition 4); used to verify both the "yes"
  and the "no" entries of Figure 1.

Everything here is exponential in the universe size by design — these are
oracles for small domains, not mining strategies.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.constraints.evaluate import evaluate_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.reduction import reduce_twovar
from repro.db.domain import Domain
from repro.errors import ExecutionError
from repro.itemsets import Itemset, all_nonempty_subsets


def _check_universe(universe: Sequence[int], limit: int = 12) -> None:
    if len(universe) > limit:
        raise ExecutionError(
            f"empirical checkers enumerate 2^N subsets; N={len(universe)} "
            f"exceeds the safety limit {limit}"
        )


def def3_valid_sets(
    view: TwoVarView,
    var: str,
    domains: Mapping[str, Domain],
    frequent_other: Iterable[Itemset],
) -> Set[Itemset]:
    """Definition 3's valid sets of ``var``, by exhaustive enumeration.

    ``frequent_other`` are the frequent sets of the other variable (the
    one-sided frequency requirement of the definition).
    """
    (other,) = view.variables - {var}
    universe = domains[var].elements
    _check_universe(universe)
    partners = list(frequent_other)
    valid: Set[Itemset] = set()
    for candidate in all_nonempty_subsets(universe):
        for partner in partners:
            if evaluate_constraint(
                view.constraint, {var: candidate, other: partner}, domains
            ):
                valid.add(candidate)
                break
    return valid


def reduction_soundness_tightness(
    view: TwoVarView,
    var: str,
    domains: Mapping[str, Domain],
    frequent_other: Sequence[Itemset],
) -> Tuple[bool, bool, Set[Itemset], Set[Itemset]]:
    """Check the reduced 1-var constraint of ``var`` against Definition 3.

    Returns ``(sound, tight, valid, passing)`` where ``valid`` is the
    ground-truth valid-set collection and ``passing`` the sets admitted by
    the reduced constraints.  Sound means ``valid ⊆ passing``; tight means
    ``passing ⊆ valid`` (Theorems 2 and 3).

    ``frequent_other`` must be subset-closed (every subset of a frequent
    set frequent), as real frequent-set collections are; the reduction's
    L1 is derived from its singletons.
    """
    (other,) = view.variables - {var}
    l1_other = sorted({e for itemset in frequent_other for e in itemset})
    reduced = reduce_twovar(
        view, domains, {var: tuple(domains[var].elements), other: l1_other}
    )[var]
    universe = domains[var].elements
    _check_universe(universe)
    valid = def3_valid_sets(view, var, domains, frequent_other)
    passing: Set[Itemset] = set()
    for candidate in all_nonempty_subsets(universe):
        if all(
            evaluate_constraint(c, {var: candidate}, domains) for c in reduced
        ):
            passing.add(candidate)
    sound = valid.issubset(passing)
    tight = passing.issubset(valid)
    return sound, tight, valid, passing


def pairwise_anti_monotone_counterexample(
    view: TwoVarView,
    domains: Mapping[str, Domain],
    s_var: str = "S",
    t_var: str = "T",
) -> Optional[Tuple[Tuple[Itemset, Itemset], Tuple[Itemset, Itemset]]]:
    """Search for a violation of pairwise 2-var anti-monotonicity.

    This is the reading under which Figure 1's anti-monotone column is
    exact, and the one the paper's own proof phrase expresses —
    "violation is preserved when S0 grows bigger and/or T grows bigger":
    a constraint is anti-monotone iff whenever a pair ``(S0, T0)``
    violates it, every pair ``(S', T')`` with ``S' ⊇ S0`` and ``T' ⊇ T0``
    also violates it.  (Definition 4's frequency-quantified form is the
    operational consequence used for pruning.)

    Returns ``((S0, T0), (S', T'))`` witnessing a violation, or ``None``.
    """
    s_universe = domains[s_var].elements
    t_universe = domains[t_var].elements
    _check_universe(s_universe, limit=6)
    _check_universe(t_universe, limit=6)
    s_subsets = list(all_nonempty_subsets(s_universe))
    t_subsets = list(all_nonempty_subsets(t_universe))

    valid: Dict[Tuple[Itemset, Itemset], bool] = {}
    for s0 in s_subsets:
        for t0 in t_subsets:
            valid[(s0, t0)] = evaluate_constraint(
                view.constraint, {s_var: s0, t_var: t0}, domains
            )

    # reachable[(s, t)]: some (s', t') with s' ⊇ s, t' ⊇ t satisfies C.
    # Filled by dynamic programming from the largest pairs downward.
    reachable: Dict[Tuple[Itemset, Itemset], bool] = {}
    order = sorted(valid, key=lambda st: (len(st[0]) + len(st[1])), reverse=True)
    for s0, t0 in order:
        ok = valid[(s0, t0)]
        if not ok:
            for e in s_universe:
                if e not in s0:
                    if reachable.get((tuple(sorted(s0 + (e,))), t0)):
                        ok = True
                        break
        if not ok:
            for e in t_universe:
                if e not in t0:
                    if reachable.get((s0, tuple(sorted(t0 + (e,))))):
                        ok = True
                        break
        reachable[(s0, t0)] = ok

    for s0 in s_subsets:
        for t0 in t_subsets:
            if valid[(s0, t0)]:
                continue
            if reachable[(s0, t0)]:
                witness = _find_satisfied_superpair(
                    valid, s0, t0, s_universe, t_universe
                )
                if witness is not None:
                    return (s0, t0), witness
    return None


def _find_satisfied_superpair(valid, s0, t0, s_universe, t_universe):
    for s_ext in chain.from_iterable(
        combinations([e for e in s_universe if e not in s0], n)
        for n in range(len(s_universe) - len(s0) + 1)
    ):
        s_prime = tuple(sorted(s0 + s_ext))
        for t_ext in chain.from_iterable(
            combinations([e for e in t_universe if e not in t0], n)
            for n in range(len(t_universe) - len(t0) + 1)
        ):
            t_prime = tuple(sorted(t0 + t_ext))
            if valid[(s_prime, t_prime)]:
                return s_prime, t_prime
    return None


def anti_monotone_counterexample(
    view: TwoVarView,
    var: str,
    domains: Mapping[str, Domain],
    frequent_other_by_size: Mapping[int, Sequence[Itemset]],
) -> Optional[Tuple[Itemset, Itemset]]:
    """Search for a violation of Definition 4 (2-var anti-monotonicity)
    with respect to ``var``.

    The operative content of the definition (at ``j = 1``, the case the
    paper's pruning uses, with the ``|T0| >= j`` convention of its
    ``sat^S_{C,j}`` notation) is: if ``S0`` is related to *no* frequent
    partner at all, then no superset of ``S0`` may be related to any
    frequent partner.  Note Figure 1's anti-monotone column asserts the
    property w.r.t. *both* variables; callers should check each side.

    Returns ``(S0, S_superset)`` witnessing a violation, or ``None`` if
    the property holds on this data.
    """
    (other,) = view.variables - {var}
    universe = domains[var].elements
    _check_universe(universe, limit=8)
    all_partners = [
        partner for partners in frequent_other_by_size.values() for partner in partners
    ]

    def related(candidate: Itemset) -> bool:
        return any(
            evaluate_constraint(
                view.constraint, {var: candidate, other: partner}, domains
            )
            for partner in all_partners
        )

    subsets = list(all_nonempty_subsets(universe))
    valid = {candidate: related(candidate) for candidate in subsets}
    for candidate in subsets:
        if valid[candidate]:
            continue
        remaining = [e for e in universe if e not in candidate]
        for extension in chain.from_iterable(
            combinations(remaining, n) for n in range(1, len(remaining) + 1)
        ):
            superset = tuple(sorted(candidate + extension))
            if valid[superset]:
                return candidate, superset
    return None
