"""ccc-optimality: Definition 6, Theorem 4 and Corollary 2, made testable.

Definition 6 says a strategy is **ccc-optimal** for a constraint class iff

1. it counts the support of a candidate set ``CS`` iff all subsets of
   ``CS`` are frequent and ``CS`` is valid; and
2. it invokes the constraint-checking operation only on singletons
   (so at most ``N`` invocations over an ``N``-element domain).

This module audits *actual runs* against those conditions using a
brute-force oracle:

* the oracle mines all frequent sets per variable unconstrained;
* a set is **valid** in the Definition 3 sense: it satisfies its own
  1-var constraints, and for every 2-var constraint some frequent set of
  the other variable (any size) satisfies it jointly;
* the audited strategy runs with ``keep_candidates=True`` so the exact
  sets it counted are known.

Condition (1) is audited in two strengths:

* **strict** — every counted set has *all* subsets frequent.  This is
  Definition 6 verbatim; it holds for item-filter-style succinct
  constraints and for unconstrained mining.
* **mgf** — every counted set has all its *valid* subsets frequent.
  Under a required-bucket (member generating function) constraint the
  frequency of invalid subsets is unknowable without counting them —
  which condition (1) itself forbids — so this is the reading under which
  Theorem 4's claim is coherent, and the one CAP satisfies.

Completeness (the "if" direction of condition (1)) is audited strictly:
every set of size >= 2 that is valid with all subsets frequent must have
been counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.constraints.evaluate import evaluate_constraint
from repro.core.optimizer import CFQOptimizer, CFQResult
from repro.core.query import CFQ
from repro.db.transactions import TransactionDatabase
from repro.mining.apriori import mine_frequent
from repro.itemsets import Itemset


@dataclass
class CCCReport:
    """Outcome of auditing one run against Definition 6."""

    condition1_strict: bool
    condition1_mgf: bool
    condition1_complete: bool
    condition2: bool
    universe_size: int
    singleton_checks: int
    larger_checks: int
    violations: List[str] = field(default_factory=list)

    @property
    def ccc_optimal(self) -> bool:
        """ccc-optimality under the MGF reading of condition (1)."""
        return self.condition1_mgf and self.condition1_complete and self.condition2

    @property
    def ccc_optimal_strict(self) -> bool:
        """ccc-optimality under the verbatim reading of condition (1)."""
        return self.condition1_strict and self.condition1_complete and self.condition2

    def describe(self) -> str:
        """Human-readable audit summary."""
        lines = [
            f"condition 1 (counted => valid & subsets frequent): "
            f"strict={self.condition1_strict} mgf={self.condition1_mgf}",
            f"condition 1 (valid & subsets frequent => counted): "
            f"{self.condition1_complete}",
            f"condition 2 (checks only on singletons): {self.condition2} "
            f"({self.singleton_checks} singleton checks over universe of "
            f"{self.universe_size}; {self.larger_checks} larger-set checks)",
        ]
        lines.extend(f"violation: {v}" for v in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"... and {len(self.violations) - 10} more")
        return "\n".join(lines)


class _Oracle:
    """Ground-truth frequency and Definition-3 validity for one CFQ run."""

    def __init__(self, db: TransactionDatabase, cfq: CFQ, max_level: Optional[int]):
        self.cfq = cfq
        self.frequent: Dict[str, Dict[Itemset, int]] = {}
        self.eligible_partners: Dict[str, List[Itemset]] = {}
        for var in cfq.variables:
            domain = cfq.domains[var]
            projected = [domain.project(t) for t in db.transactions]
            result = mine_frequent(
                projected,
                domain.elements,
                db.min_count(cfq.minsup_for(var)),
                max_level=max_level,
            )
            self.frequent[var] = result.all_sets()
        # Partners for the 2-var existential must satisfy their own 1-var
        # constraints: elements of any answer pair do, and the engine's
        # reduction constants are computed from the constrained L1, so
        # this is the coherent joint reading of Definition 3.
        for var in cfq.variables:
            own = cfq.onevar_for(var)
            self.eligible_partners[var] = [
                itemset
                for itemset in self.frequent[var]
                if all(
                    evaluate_constraint(c, {var: itemset}, cfq.domains)
                    for c in own
                )
            ]

    def is_frequent(self, var: str, itemset: Itemset) -> bool:
        return itemset in self.frequent[var]

    def all_subsets_frequent(self, var: str, itemset: Itemset) -> bool:
        return all(
            subset in self.frequent[var]
            for subset in combinations(itemset, len(itemset) - 1)
        )

    def is_valid(self, var: str, itemset: Itemset) -> bool:
        """Definition-3 validity of a set, per-constraint existential."""
        cfq = self.cfq
        domains = cfq.domains
        for constraint in cfq.onevar_for(var):
            if not evaluate_constraint(constraint, {var: itemset}, domains):
                return False
        for constraint in cfq.twovar:
            variables = constraint.variables()
            if var not in variables:
                continue
            (other,) = variables - {var}
            witnessed = any(
                evaluate_constraint(
                    constraint, {var: itemset, other: partner}, domains
                )
                for partner in self.eligible_partners[other]
            )
            if not witnessed:
                return False
        return True


def audit_ccc(
    db: TransactionDatabase,
    cfq: CFQ,
    dovetail: bool = True,
    use_reduction: bool = True,
    use_jmax: bool = True,
    oracle_max_level: Optional[int] = None,
) -> Tuple[CFQResult, CCCReport]:
    """Run the optimizer's strategy on ``cfq`` and audit it.

    Only sensible on small workloads: the oracle mines unconstrained and
    validity checks are existential over all frequent partner sets.
    """
    result = CFQOptimizer(cfq).execute(
        db,
        dovetail=dovetail,
        use_reduction=use_reduction,
        use_jmax=use_jmax,
        keep_candidates=True,
    )
    report = audit_counted_sets(
        db, cfq, result.raw.candidate_logs, result.counters,
        oracle_max_level=oracle_max_level,
    )
    return result, report


def audit_counted_sets(
    db: TransactionDatabase,
    cfq: CFQ,
    candidate_logs: Mapping[str, Mapping[int, Sequence[Itemset]]],
    counters,
    oracle_max_level: Optional[int] = None,
) -> CCCReport:
    """Audit explicit per-level candidate logs against Definition 6."""
    oracle = _Oracle(db, cfq, oracle_max_level)
    violations: List[str] = []
    strict_ok = True
    mgf_ok = True

    validity_cache: Dict[Tuple[str, Itemset], bool] = {}

    def valid(var: str, itemset: Itemset) -> bool:
        key = (var, itemset)
        if key not in validity_cache:
            validity_cache[key] = oracle.is_valid(var, itemset)
        return validity_cache[key]

    counted: Dict[str, Set[Itemset]] = {}
    for var, levels in candidate_logs.items():
        counted[var] = set()
        for k, candidates in levels.items():
            counted[var].update(candidates)
            if k < 2:
                continue
            for candidate in candidates:
                if not valid(var, candidate):
                    mgf_ok = False
                    strict_ok = False
                    violations.append(f"{var}: counted invalid set {candidate}")
                    continue
                for subset in combinations(candidate, k - 1):
                    frequent = oracle.is_frequent(var, subset)
                    if not frequent:
                        strict_ok = False
                        if valid(var, subset):
                            mgf_ok = False
                            violations.append(
                                f"{var}: counted {candidate} whose valid subset "
                                f"{subset} is infrequent"
                            )

    complete_ok = True
    for var in cfq.variables:
        frequent = oracle.frequent[var]
        by_level: Dict[int, List[Itemset]] = {}
        for itemset in frequent:
            by_level.setdefault(len(itemset), []).append(itemset)
        deepest = max(by_level) if by_level else 0
        for k in range(2, deepest + 2):
            required = _closed_valid_candidates(oracle, var, k, valid)
            missing = required - counted.get(var, set())
            for itemset in sorted(missing):
                complete_ok = False
                violations.append(
                    f"{var}: never counted {itemset} though it is valid with "
                    f"all subsets frequent"
                )

    universe = sum(len(cfq.domains[var].elements) for var in cfq.variables)
    return CCCReport(
        condition1_strict=strict_ok,
        condition1_mgf=mgf_ok,
        condition1_complete=complete_ok,
        condition2=counters.constraint_checks_larger == 0,
        universe_size=universe,
        singleton_checks=counters.constraint_checks_singleton,
        larger_checks=counters.constraint_checks_larger,
        violations=violations,
    )


def _closed_valid_candidates(oracle: _Oracle, var: str, k: int, valid) -> Set[Itemset]:
    """All k-sets whose every (k-1)-subset is frequent and that are valid."""
    prev = [s for s in oracle.frequent[var] if len(s) == k - 1]
    prev_set = set(prev)
    required: Set[Itemset] = set()
    by_prefix: Dict[Itemset, List[int]] = {}
    for itemset in prev:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    for prefix, tails in by_prefix.items():
        tails.sort()
        for i in range(len(tails)):
            for j in range(i + 1, len(tails)):
                candidate = prefix + (tails[i], tails[j])
                if all(
                    subset in prev_set
                    for subset in combinations(candidate, k - 1)
                ) and valid(var, candidate):
                    required.add(candidate)
    return required
