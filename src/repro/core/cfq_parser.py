"""Parsing whole CFQs in the paper's surface syntax.

The paper writes queries as ``{(S, T) | C1 & C2 & ...}`` with implicit
``S ⊆ Item`` and ``freq(S)`` atoms.  :func:`parse_cfq` accepts exactly
that form:

* the head declares the set variables: ``{(S, T) | ...}`` or ``{(S) | ...}``;
* the body is an ``&``-separated conjunction of constraint atoms in the
  DSL of :mod:`repro.constraints.parser`;
* frequency atoms ``freq(S)`` (use the default threshold) or
  ``freq(S, 0.02)`` (per-variable threshold) may appear anywhere in the
  body and are optional — every declared variable is implicitly frequent,
  as in the paper;
* domain-membership atoms like ``S ⊆ Item`` are accepted and ignored
  (domains are supplied programmatically, since they carry data).

Example::

    parse_cfq(
        "{(S, T) | freq(S, 0.01) & freq(T) & sum(S.Price) <= 100 "
        "& avg(T.Price) >= 200}",
        domains={"S": item, "T": item},
        default_minsup=0.02,
    )
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

from repro.constraints.parser import parse_constraint
from repro.core.query import CFQ
from repro.db.domain import Domain
from repro.errors import ConstraintSyntaxError, QueryValidationError

_HEAD_RE = re.compile(
    r"^\s*\{\s*\(?\s*([A-Za-z_][A-Za-z_0-9]*(?:\s*,\s*[A-Za-z_][A-Za-z_0-9]*)?)"
    r"\s*\)?\s*\|\s*(.*)\}\s*$",
    re.DOTALL,
)

_FREQ_RE = re.compile(
    r"^freq\s*\(\s*([A-Za-z_][A-Za-z_0-9]*)\s*(?:,\s*([0-9.]+)\s*)?\)$"
)

_MEMBERSHIP_RE = re.compile(
    r"^([A-Za-z_][A-Za-z_0-9]*)\s*(?:⊆|subset)\s*[A-Za-z_][A-Za-z_0-9]*$"
)


def split_conjunction(body: str) -> List[str]:
    """Split on top-level '&', respecting braces/parentheses (so set
    literals and aggregate calls survive)."""
    atoms: List[str] = []
    depth = 0
    current: List[str] = []
    for char in body:
        if char in "({":
            depth += 1
        elif char in ")}":
            depth -= 1
        if char == "&" and depth == 0:
            atoms.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        atoms.append(tail)
    return [a for a in atoms if a]


def parse_cfq(
    text: str,
    domains: Mapping[str, Domain],
    default_minsup: float = 0.01,
    max_level: Optional[int] = None,
) -> CFQ:
    """Parse a whole CFQ from the paper's ``{(S, T) | C}`` notation.

    Parameters
    ----------
    text:
        The query text.
    domains:
        The domain of each declared variable (data cannot be written in a
        query string).
    default_minsup:
        Threshold for variables whose ``freq`` atom omits one (or is
        absent entirely).
    """
    match = _HEAD_RE.match(text)
    if match is None:
        raise ConstraintSyntaxError(
            "a CFQ looks like '{(S, T) | constraint & ...}'", text, 0
        )
    declared = tuple(v.strip() for v in match.group(1).split(","))
    body = match.group(2).strip()

    missing = set(declared) - set(domains)
    if missing:
        raise QueryValidationError(
            f"query declares {sorted(missing)} but no domain was supplied "
            f"for them"
        )

    minsup: Dict[str, float] = {var: default_minsup for var in declared}
    constraints: List = []
    for atom in split_conjunction(body):
        freq = _FREQ_RE.match(atom)
        if freq is not None:
            var, threshold = freq.group(1), freq.group(2)
            if var not in declared:
                raise QueryValidationError(
                    f"freq atom references undeclared variable {var!r}"
                )
            if threshold is not None:
                minsup[var] = float(threshold)
            continue
        if _MEMBERSHIP_RE.match(atom) and atom.split()[0].rstrip("⊆") in declared:
            # Domain membership like "S ⊆ Item": informational only.
            head_var = re.split(r"⊆|subset", atom)[0].strip()
            if head_var in declared:
                continue
        constraints.append(parse_constraint(atom))

    return CFQ(
        domains={var: domains[var] for var in declared},
        minsup=minsup,
        constraints=constraints,
        max_level=max_level,
    )
