"""Characterization of 2-var constraints (Section 3/4, Figure 1).

For every shape the CFQ language admits this module answers, per
Theorem 1 and the quasi-succinctness analysis of Section 4:

* is the constraint **anti-monotone** w.r.t. each variable
  (Definition 4)?
* is it **quasi-succinct** (Definition 5)?

Figure 1's representative rows are reproduced exactly:

====================================  =============  ==============
2-var constraint                      anti-monotone  quasi-succinct
====================================  =============  ==============
``S.A ∩ T.B = ∅``                     yes            yes
``S.A ∩ T.B ≠ ∅``                     no             yes
``S.A ⊆ T.B``                         no             yes
``S.A ⊄ T.B``                         no             yes
``S.A = T.B``                         no             yes
``max(S.A) ≤ min(T.B)``               yes            yes
``min(S.A) ≤ min(T.B)``               no             yes
``max(S.A) ≤ max(T.B)``               no             yes
``min(S.A) ≤ max(T.B)``               no             yes
``sum(S.A) ≤ max(T.B)``               no             no
``sum(S.A) ≤ sum(T.B)``               no             no
``avg(S.A) ≤ avg(T.B)``               no             no
====================================  =============  ==============

The full decision procedure generalizes the table: a 2-var aggregate
constraint is quasi-succinct iff both sides aggregate with ``min`` or
``max`` only; all 2-var domain (set-relation) constraints are
quasi-succinct; constraints involving ``sum`` or ``avg`` (or ``count``,
which behaves like ``sum`` over the unit weighting) are not.
Anti-monotonicity holds exactly for ``S.A ∩ T.B = ∅`` and for the
``max(S.A) ≤/< min(T.B)`` family (plus their flipped orientations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import SetOp
from repro.constraints.twovar import AggAggShape, SetSetShape, TwoVarView


@dataclass(frozen=True)
class TwoVarProperties:
    """Property summary of a 2-var constraint.

    ``anti_monotone`` is w.r.t. *both* variables (for the constraints in
    the characterized language, 2-var anti-monotonicity is symmetric:
    Figure 1 has a single anti-monotone column).
    """

    anti_monotone: bool
    quasi_succinct: bool

    @property
    def needs_induction(self) -> bool:
        """Whether the constraint needs the Section 5 machinery."""
        return not self.quasi_succinct


_OPAQUE = TwoVarProperties(anti_monotone=False, quasi_succinct=False)


def classify_twovar(view: TwoVarView) -> TwoVarProperties:
    """Classify a 2-var constraint per Figure 1."""
    shape = view.shape
    if shape is None:
        return _OPAQUE
    if isinstance(shape, SetSetShape):
        return _classify_set_set(shape)
    return _classify_agg_agg(shape)


def _classify_set_set(shape: SetSetShape) -> TwoVarProperties:
    # All 2-var domain constraints are quasi-succinct (Section 4.2);
    # among them only the non-overlap constraint is anti-monotone
    # (Theorem 1).
    return TwoVarProperties(
        anti_monotone=shape.op is SetOp.DISJOINT,
        quasi_succinct=True,
    )


def _classify_agg_agg(shape: AggAggShape) -> TwoVarProperties:
    if not shape.min_max_only:
        # sum/avg (and count) on either side: neither anti-monotone nor
        # quasi-succinct (Figure 1, bottom block).
        return _OPAQUE
    anti_monotone = _minmax_anti_monotone(shape)
    return TwoVarProperties(anti_monotone=anti_monotone, quasi_succinct=True)


def _minmax_anti_monotone(shape: AggAggShape) -> bool:
    # max(S.A) <= min(T.B) is the unique anti-monotone min/max pattern
    # (Theorem 1): growing S can only raise max(S.A) and growing T can
    # only lower min(T.B), so a violation is permanent.  The flipped
    # orientation min(S.A) >= max(T.B) is the same constraint.
    if shape.op.is_le_like:
        return shape.left_func == "max" and shape.right_func == "min"
    if shape.op.is_ge_like:
        return shape.left_func == "min" and shape.right_func == "max"
    return False
