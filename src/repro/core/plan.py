"""Execution plans: the optimizer's explainable output.

The Figure 7 optimizer turns a CFQ into a deterministic strategy; the
plan objects here record that strategy so it can be executed by the
dovetailed engine *and* rendered for inspection (``explain()``), which is
what makes the ccc accounting auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.constraints.ast import Constraint
from repro.constraints.twovar import TwoVarView
from repro.db.domain import Domain


@dataclass
class VarPlan:
    """Per-variable lattice configuration."""

    var: str
    domain: Domain
    min_count: int
    base_constraints: List[Constraint] = field(default_factory=list)


@dataclass
class ReductionPlan:
    """One quasi-succinct constraint to reduce after level 1.

    ``induced_from`` is set when ``view`` is a weaker constraint induced
    from a non-quasi-succinct original (Section 5.1); the original is then
    re-verified at pair formation.
    """

    view: TwoVarView
    induced_from: Optional[Constraint] = None


@dataclass
class JmaxPlan:
    """One iterative-pruning series (Section 5.2).

    ``bound_var``'s lattice feeds a :class:`~repro.core.jmax.BoundSeries`
    over attribute ``bound_attr`` with aggregate ``bound_kind``; the
    resulting ``W^k`` bound prunes ``pruned_var`` via
    ``pruned_func(pruned_var.pruned_attr) <= W^k``.
    """

    bound_var: str
    bound_attr: Optional[str]
    bound_kind: str
    pruned_var: str
    pruned_func: str
    pruned_attr: Optional[str]
    strict: bool
    source: str


@dataclass
class ExecutionPlan:
    """The full strategy for a CFQ."""

    var_plans: Dict[str, VarPlan]
    reductions: List[ReductionPlan] = field(default_factory=list)
    jmax: List[JmaxPlan] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def signature(self) -> Dict[str, object]:
        """A stable, JSON-serializable structural description of the plan.

        The serving layer stamps this into cached result artifacts so an
        entry records *which strategy* produced it (variables with their
        thresholds and pushed constraints, scheduled reductions, jmax
        series, planner notes) — planning is deterministic, so a warm
        hit's recomputed plan must match the stored signature, and the
        differential suite asserts it does.
        """
        return {
            "variables": {
                var: {
                    "domain": plan.domain.name,
                    "elements": len(plan.domain),
                    "min_count": plan.min_count,
                    "constraints": [str(c) for c in plan.base_constraints],
                }
                for var, plan in sorted(self.var_plans.items())
            },
            "reductions": [
                {
                    "constraint": str(reduction.view),
                    "induced_from": (
                        str(reduction.induced_from)
                        if reduction.induced_from is not None
                        else None
                    ),
                }
                for reduction in self.reductions
            ],
            "jmax": [
                {
                    "bound": f"{j.bound_kind}({j.bound_var}.{j.bound_attr})",
                    "pruned": f"{j.pruned_func}({j.pruned_var}.{j.pruned_attr})",
                    "strict": j.strict,
                    "source": j.source,
                }
                for j in self.jmax
            ],
            "notes": list(self.notes),
        }

    def explain(self) -> str:
        """Render the plan in the layout of the paper's Figure 7."""
        lines: List[str] = ["CFQ execution plan"]
        for var in sorted(self.var_plans):
            plan = self.var_plans[var]
            lines.append(
                f"  lattice {var}: domain {plan.domain.name!r} "
                f"({len(plan.domain)} elements), min_count {plan.min_count}"
            )
            for constraint in plan.base_constraints:
                lines.append(f"    push 1-var: {constraint}")
        for reduction in self.reductions:
            origin = (
                f" (induced from {reduction.induced_from})"
                if reduction.induced_from is not None
                else ""
            )
            lines.append(f"  reduce after level 1: {reduction.view}{origin}")
        for jplan in self.jmax:
            op = "<" if jplan.strict else "<="
            lines.append(
                f"  iterative pruning: {jplan.pruned_func}"
                f"({jplan.pruned_var}.{jplan.pruned_attr}) {op} W^k from "
                f"{jplan.bound_kind} over {jplan.bound_var}.{jplan.bound_attr} "
                f"[{jplan.source}]"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
