"""The CFQ object: ``{(S, T) | C}``.

A :class:`CFQ` bundles the two set variables, their domains, the
per-variable frequency thresholds, and the conjunction of constraints.
Constraints may be given as DSL strings (parsed via
:func:`repro.constraints.parser.parse_constraint`) or as prebuilt AST
nodes.  Validation checks that every mentioned variable and attribute
exists and that the implicit language restrictions hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.constraints.ast import (
    Agg,
    AttrRef,
    Comparison,
    Constraint,
    SetComparison,
    is_onevar,
)
from repro.constraints.parser import parse_constraints
from repro.db.domain import Domain
from repro.errors import QueryValidationError


@dataclass
class CFQ:
    """A constrained frequent set query.

    Parameters
    ----------
    domains:
        Mapping from variable name to domain.  One entry gives a
        single-variable query (degenerate but allowed); two entries give
        the full 2-var form.
    minsup:
        Relative support threshold per variable (or one float applied to
        both).
    constraints:
        The conjunction ``C`` — DSL strings and/or AST nodes.

    Examples
    --------
    >>> from repro.db import ItemCatalog, Domain
    >>> catalog = ItemCatalog({"Price": {1: 10, 2: 20}})
    >>> item = Domain.items(catalog)
    >>> cfq = CFQ(
    ...     domains={"S": item, "T": item},
    ...     minsup=0.1,
    ...     constraints=["max(S.Price) <= min(T.Price)"],
    ... )
    >>> len(cfq.twovar)
    1
    """

    domains: Mapping[str, Domain]
    minsup: Union[float, Mapping[str, float]]
    constraints: Sequence[Union[str, Constraint]]
    max_level: Optional[int] = None

    parsed: List[Constraint] = field(init=False)
    onevar: Dict[str, List[Constraint]] = field(init=False)
    twovar: List[Constraint] = field(init=False)

    def __post_init__(self) -> None:
        if not self.domains:
            raise QueryValidationError("a CFQ needs at least one variable")
        if len(self.domains) > 2:
            raise QueryValidationError(
                f"CFQs have at most two set variables, got {sorted(self.domains)}"
            )
        self.parsed = parse_constraints(self.constraints)
        self.onevar = {}
        self.twovar = []
        for constraint in self.parsed:
            self._validate(constraint)
            if is_onevar(constraint):
                (var,) = constraint.variables()
                self.onevar.setdefault(var, []).append(constraint)
            else:
                self.twovar.append(constraint)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def variables(self) -> Tuple[str, ...]:
        """The variable names, in sorted order."""
        return tuple(sorted(self.domains))

    def minsup_for(self, var: str) -> float:
        """The relative support threshold of one variable."""
        if isinstance(self.minsup, Mapping):
            try:
                return self.minsup[var]
            except KeyError:
                raise QueryValidationError(f"no minsup given for {var!r}") from None
        return float(self.minsup)

    def onevar_for(self, var: str) -> List[Constraint]:
        """The 1-var constraints on one variable."""
        return list(self.onevar.get(var, []))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, constraint: Constraint) -> None:
        variables = constraint.variables()
        unknown = variables - set(self.domains)
        if unknown:
            raise QueryValidationError(
                f"constraint {constraint} mentions unknown variables "
                f"{sorted(unknown)}; query variables are {sorted(self.domains)}"
            )
        for ref in _attr_refs(constraint):
            if ref.attr is None:
                continue
            domain = self.domains[ref.var]
            if not domain.catalog.has_attribute(ref.attr):
                raise QueryValidationError(
                    f"constraint {constraint}: domain {domain.name!r} of "
                    f"{ref.var!r} has no attribute {ref.attr!r}"
                )

    def __str__(self) -> str:
        body = " & ".join(str(c) for c in self.parsed)
        variables = ", ".join(self.variables)
        return f"{{({variables}) | {body}}}"


def _attr_refs(constraint: Constraint) -> List[AttrRef]:
    refs: List[AttrRef] = []
    sides = (
        (constraint.left, constraint.right)
        if isinstance(constraint, (Comparison, SetComparison))
        else ()
    )
    for side in sides:
        if isinstance(side, AttrRef):
            refs.append(side)
        elif isinstance(side, Agg):
            refs.append(side.arg)
    return refs
