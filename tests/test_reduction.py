"""Quasi-succinct reduction (Figures 2 and 3): structure and semantics.

Soundness (Theorems 2/3, the direction pruning correctness rests on) is
property-tested over random tiny scenarios for *every* reducible row;
tightness is asserted for the rows where a singleton-witness argument
proves it (disjoint/overlaps, the min/max aggregate rows, and the
OVERLAPS-style sides of subset/superset) — see DESIGN.md for the
tightness caveat on the remaining rows.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.ast import CmpOp, Comparison, SetComparison, SetOp
from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.empirical import reduction_soundness_tightness
from repro.core.reduction import reduce_twovar
from repro.datagen.tiny import tiny_scenario
from repro.errors import ClassificationError

REDUCIBLE = [
    "S.A ∩ T.B = ∅",
    "S.A ∩ T.B != ∅",
    "S.A ⊆ T.B",
    "S.A ⊄ T.B",
    "S.A ⊇ T.B",
    "S.A ⊉ T.B",
    "S.A = T.B",
    "S.A != T.B",
    "min(S.A) <= min(T.B)",
    "min(S.A) <= max(T.B)",
    "max(S.A) <= min(T.B)",
    "max(S.A) <= max(T.B)",
    "min(S.A) >= max(T.B)",
    "max(S.A) >= max(T.B)",
    "min(S.A) < min(T.B)",
    "max(S.A) > min(T.B)",
    "min(S.A) = min(T.B)",
    "max(S.A) != max(T.B)",
]

TIGHT = [
    "S.A ∩ T.B = ∅",
    "S.A ∩ T.B != ∅",
    "min(S.A) <= min(T.B)",
    "min(S.A) <= max(T.B)",
    "max(S.A) <= min(T.B)",
    "max(S.A) <= max(T.B)",
    "min(S.A) >= max(T.B)",
    "max(S.A) >= max(T.B)",
    "min(S.A) < min(T.B)",
    "max(S.A) > min(T.B)",
]


@pytest.mark.parametrize("text", REDUCIBLE)
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("var", ["S", "T"])
def test_reduction_soundness(text, seed, var):
    scenario = tiny_scenario(seed, n_s=5, n_t=5)
    view = TwoVarView.of(parse_constraint(text))
    other = "T" if var == "S" else "S"
    sound, __, valid, passing = reduction_soundness_tightness(
        view, var, scenario.domains, list(scenario.frequent[other])
    )
    assert sound, (
        f"{text} for {var}: pruned valid sets {sorted(valid - passing)[:3]}"
    )


@pytest.mark.parametrize("text", TIGHT)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_reduction_tightness_where_provable(text, seed):
    scenario = tiny_scenario(seed, n_s=5, n_t=5)
    view = TwoVarView.of(parse_constraint(text))
    for var, other in (("S", "T"), ("T", "S")):
        __, tight, valid, passing = reduction_soundness_tightness(
            view, var, scenario.domains, list(scenario.frequent[other])
        )
        assert tight, (
            f"{text} for {var}: admitted invalid sets {sorted(passing - valid)[:3]}"
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       text=st.sampled_from(REDUCIBLE))
def test_reduction_soundness_fuzz(seed, text):
    scenario = tiny_scenario(seed, n_s=4, n_t=4)
    view = TwoVarView.of(parse_constraint(text))
    sound, __, __, __ = reduction_soundness_tightness(
        view, "S", scenario.domains, list(scenario.frequent["T"])
    )
    assert sound


# ----------------------------------------------------------------------
# Structural checks of the emitted constraints (table rows verbatim)
# ----------------------------------------------------------------------
def _reduce(text, scenario):
    view = TwoVarView.of(parse_constraint(text))
    l1 = {"S": scenario.l1("S"), "T": scenario.l1("T")}
    return reduce_twovar(view, scenario.domains, l1)


def test_disjoint_row_emits_not_superset(market_catalog):
    scenario = tiny_scenario(0)
    reduced = _reduce("S.A ∩ T.B = ∅", scenario)
    for var in ("S", "T"):
        (constraint,) = reduced[var]
        assert isinstance(constraint, SetComparison)
        assert constraint.op is SetOp.NOT_SUPERSET


def test_overlap_row_emits_overlaps():
    scenario = tiny_scenario(0)
    reduced = _reduce("S.A ∩ T.B != ∅", scenario)
    for var in ("S", "T"):
        (constraint,) = reduced[var]
        assert constraint.op is SetOp.OVERLAPS


def test_subset_row_is_asymmetric():
    scenario = tiny_scenario(0)
    reduced = _reduce("S.A ⊆ T.B", scenario)
    assert reduced["S"][0].op is SetOp.SUBSET
    assert reduced["T"][0].op is SetOp.OVERLAPS


def test_not_subset_row_is_trivial_for_s():
    scenario = tiny_scenario(0)
    reduced = _reduce("S.A ⊄ T.B", scenario)
    assert reduced["S"] == []
    assert reduced["T"][0].op is SetOp.NOT_SUPERSET


def test_seteq_row_gives_filters_both_sides():
    scenario = tiny_scenario(0)
    reduced = _reduce("S.A = T.B", scenario)
    assert reduced["S"][0].op is SetOp.SUBSET
    assert reduced["T"][0].op is SetOp.SUBSET


def test_setneq_row_is_trivial():
    scenario = tiny_scenario(0)
    reduced = _reduce("S.A != T.B", scenario)
    assert reduced["S"] == [] and reduced["T"] == []


def test_minmax_rows_use_extreme_of_other_l1():
    scenario = tiny_scenario(0)
    t_values = scenario.domains["T"].catalog.project(scenario.l1("T"), "B")
    s_values = scenario.domains["S"].catalog.project(scenario.l1("S"), "A")
    reduced = _reduce("max(S.A) <= min(T.B)", scenario)
    (c1,) = reduced["S"]
    assert isinstance(c1, Comparison)
    assert c1.op is CmpOp.LE and c1.right.value == max(t_values)
    (c2,) = reduced["T"]
    assert c2.op is CmpOp.GE and c2.right.value == min(s_values)


def test_strictness_preserved():
    scenario = tiny_scenario(0)
    reduced = _reduce("max(S.A) < min(T.B)", scenario)
    assert reduced["S"][0].op is CmpOp.LT
    assert reduced["T"][0].op is CmpOp.GT


def test_agg_equality_emits_both_bounds():
    scenario = tiny_scenario(0)
    reduced = _reduce("min(S.A) = min(T.B)", scenario)
    assert {c.op for c in reduced["S"]} == {CmpOp.LE, CmpOp.GE}


def test_empty_other_l1_is_unsatisfiable():
    scenario = tiny_scenario(0)
    view = TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)"))
    reduced = reduce_twovar(
        view, scenario.domains, {"S": scenario.l1("S"), "T": []}
    )
    (constraint,) = reduced["S"]
    assert isinstance(constraint, SetComparison)
    assert constraint.op is SetOp.SUBSET and not constraint.right.values


def test_sum_avg_shapes_rejected():
    scenario = tiny_scenario(0)
    with pytest.raises(ClassificationError):
        _reduce("sum(S.A) <= sum(T.B)", scenario)
