"""Randomized end-to-end equivalence battery.

For randomly generated catalogs, databases and constraint conjunctions,
the optimizer's answer (under randomly sampled engine options) must equal
``Apriori+``'s.  This is the strongest single correctness property in the
suite: it exercises the parser, classification, reduction, induction,
Jmax, CAP compilation, dovetailing and pair formation together.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.optimizer import CFQOptimizer
from repro.core.query import CFQ
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.db.transactions import TransactionDatabase
from repro.mining.aprioriplus import apriori_plus

TYPES = ["red", "blue", "green"]

ONEVAR_TEMPLATES = [
    "max({v}.Price) <= {c}",
    "min({v}.Price) >= {c}",
    "min({v}.Price) <= {c}",
    "sum({v}.Price) <= {c2}",
    "avg({v}.Price) >= {c}",
    "{v}.Type = {{red}}",
    "{v}.Type ∩ {{blue}} != ∅",
    "count({v}.Type) = 1",
]

TWOVAR_TEMPLATES = [
    "max(S.Price) <= min(T.Price)",
    "min(S.Price) <= min(T.Price)",
    "max(S.Price) <= max(T.Price)",
    "min(S.Price) >= max(T.Price)",
    "S.Type = T.Type",
    "S.Type ∩ T.Type = ∅",
    "S.Type ∩ T.Type != ∅",
    "S.Type ⊆ T.Type",
    "sum(S.Price) <= sum(T.Price)",
    "sum(S.Price) <= max(T.Price)",
    "avg(S.Price) <= avg(T.Price)",
    "avg(S.Price) >= sum(T.Price)",
]


def build_world(seed: int, n_items: int, n_transactions: int):
    rng = np.random.RandomState(seed)
    catalog = ItemCatalog(
        {
            "Price": {i: int(rng.randint(1, 60)) for i in range(n_items)},
            "Type": {i: TYPES[rng.randint(len(TYPES))] for i in range(n_items)},
        }
    )
    transactions = [
        tuple(
            sorted(
                rng.choice(
                    n_items, size=rng.randint(1, max(2, n_items // 2)),
                    replace=False,
                )
            )
        )
        for __ in range(n_transactions)
    ]
    return catalog, TransactionDatabase(transactions)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    onevar_s=st.lists(st.sampled_from(ONEVAR_TEMPLATES), max_size=1),
    onevar_t=st.lists(st.sampled_from(ONEVAR_TEMPLATES), max_size=1),
    twovar=st.lists(st.sampled_from(TWOVAR_TEMPLATES), min_size=1, max_size=2),
    const=st.integers(min_value=5, max_value=55),
    dovetail=st.booleans(),
    use_reduction=st.booleans(),
    use_jmax=st.booleans(),
    rounds=st.integers(min_value=1, max_value=3),
)
def test_random_query_equivalence(
    seed, onevar_s, onevar_t, twovar, const, dovetail, use_reduction,
    use_jmax, rounds,
):
    catalog, db = build_world(seed, n_items=12, n_transactions=40)
    item = Domain.items(catalog)
    constraints = (
        [t.format(v="S", c=const, c2=const * 2) for t in onevar_s]
        + [t.format(v="T", c=const, c2=const * 2) for t in onevar_t]
        + twovar
    )
    cfq = CFQ(
        domains={"S": item, "T": item}, minsup=0.15, constraints=constraints,
        max_level=5,
    )
    optimized = CFQOptimizer(cfq).execute(
        db,
        dovetail=dovetail,
        use_reduction=use_reduction,
        use_jmax=use_jmax,
        reduction_rounds=rounds,
    )
    baseline = apriori_plus(db, cfq)
    assert set(optimized.pairs()) == set(baseline.pairs()), constraints


@pytest.mark.parametrize("seed", range(6))
def test_random_query_equivalence_with_segmented_domains(seed):
    """Different domains per variable (the Figure 8(a) shape), random
    constraints mixing everything."""
    rng = np.random.RandomState(seed + 500)
    catalog, db = build_world(seed + 500, n_items=16, n_transactions=60)
    s_items = list(range(8))
    t_items = list(range(8, 16))
    domains = {
        "S": Domain.items(catalog, name="SegS", subset=s_items),
        "T": Domain.items(catalog, name="SegT", subset=t_items),
    }
    twovar = [TWOVAR_TEMPLATES[rng.randint(len(TWOVAR_TEMPLATES))]]
    cfq = CFQ(domains=domains, minsup=0.1, constraints=twovar, max_level=5)
    optimized = CFQOptimizer(cfq).execute(db)
    baseline = apriori_plus(db, cfq)
    assert set(optimized.pairs()) == set(baseline.pairs()), twovar
