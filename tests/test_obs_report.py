"""The versioned run-report document (repro.obs.report)."""

import cProfile
import json

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import jmax_workload, quickstart_workload
from repro.obs.report import (
    RUN_REPORT_SCHEMA,
    RUN_REPORT_VERSION,
    ReportSchemaError,
    RunReport,
    build_run_report,
    profile_hotspots,
    pruning_summary,
    render_pruning_table,
)
from repro.obs.trace import Tracer


def _run(n_transactions=200, trace=True, workload_fn=quickstart_workload,
         **workload_kwargs):
    workload = workload_fn(n_transactions=n_transactions, **workload_kwargs)
    cfq = workload.cfq()
    tracer = Tracer() if trace else None
    result = CFQOptimizer(cfq).execute(workload.db, tracer=tracer)
    return result, tracer


def test_report_round_trip():
    result, tracer = _run()
    report = build_run_report(result, tracer=tracer)
    text = report.to_json()
    parsed = RunReport.from_json(text)
    assert parsed.meta == report.meta
    assert parsed.trace == report.trace
    assert parsed.pruning == report.pruning
    assert parsed.answers == report.answers
    document = json.loads(text)
    assert document["schema"] == RUN_REPORT_SCHEMA
    assert document["version"] == RUN_REPORT_VERSION
    assert "generated_at_unix" in document


def test_report_sections_populated():
    result, tracer = _run()
    report = build_run_report(result, tracer=tracer)
    assert report.meta["query"] == str(result.cfq)
    assert report.trace["spans"], "trace tree must not be empty"
    assert report.op_counters["sets_counted"] > 0
    # The expanded per-level ledger carries (var, level, sets) rows.
    rows = report.op_counters["support_counted"]
    assert all({"var", "level", "sets"} <= set(r) for r in rows)
    for var in result.cfq.variables:
        assert report.pruning[var]["1"]["counted"] > 0
        assert report.answers["frequent_valid"][var] == len(
            result.frequent_valid(var)
        )


def test_report_defaults_to_result_trace():
    result, tracer = _run()
    assert result.trace is tracer
    report = build_run_report(result)
    assert report.trace == tracer.to_dict()


def test_validate_rejects_missing_keys():
    with pytest.raises(ReportSchemaError, match="missing keys"):
        RunReport.validate({"schema": RUN_REPORT_SCHEMA})


def test_validate_rejects_wrong_schema_and_version():
    result, tracer = _run()
    document = build_run_report(result, tracer=tracer).to_dict()
    bad_schema = dict(document, schema="something.else")
    with pytest.raises(ReportSchemaError, match="unexpected schema"):
        RunReport.validate(bad_schema)
    bad_version = dict(document, version=RUN_REPORT_VERSION + 1)
    with pytest.raises(ReportSchemaError, match="version"):
        RunReport.validate(bad_version)
    no_spans = dict(document, trace={})
    with pytest.raises(ReportSchemaError, match="spans"):
        RunReport.validate(no_spans)


def test_report_write_and_read_back(tmp_path):
    result, tracer = _run()
    path = str(tmp_path / "report.json")
    build_run_report(result, tracer=tracer).write(path)
    with open(path, encoding="utf-8") as handle:
        RunReport.from_dict(json.load(handle))


def test_bound_histories_json_safe():
    """J^k_max bound series legitimately start at +/-inf; the document
    must still be standard JSON (no bare Infinity literals)."""
    workload = jmax_workload(600.0, n_transactions=200, core_size=10)
    cfq = workload.cfq()
    tracer = Tracer()
    result = CFQOptimizer(cfq).execute(workload.db, tracer=tracer)
    report = build_run_report(result, tracer=tracer)
    text = report.to_json()
    assert "Infinity" not in text
    json.loads(text)
    assert report.bound_histories, "jmax workload must produce bound series"


def test_pruning_summary_and_render():
    result, __ = _run(trace=False)
    pruning = pruning_summary(result.raw)
    for var in result.cfq.variables:
        for level, sets in result.raw.result_for(var).frequent.items():
            assert pruning[var][str(level)]["frequent"] == len(sets)
    rendered = render_pruning_table(pruning)
    assert rendered.startswith("  per-level pruning:")
    assert "L1: counted" in rendered
    # explain() embeds the same table.
    assert rendered in result.explain()


def test_profile_hotspots_shape():
    profile = cProfile.Profile()
    profile.enable()
    sorted([(-i) % 7 for i in range(5000)])
    profile.disable()
    section = profile_hotspots(profile, top_n=5)
    assert section["engine"] == "cProfile"
    assert 0 < len(section["hotspots"]) <= 5
    cumulative = [h["cumulative_seconds"] for h in section["hotspots"]]
    assert cumulative == sorted(cumulative, reverse=True)
    json.dumps(section)


# ----------------------------------------------------------------------
# v3: the serving layer's cache block
# ----------------------------------------------------------------------
def _served_run(tmp_cache=None):
    from repro.serve import QueryService

    workload = quickstart_workload(n_transactions=200)
    cfq = workload.cfq()
    service = QueryService(
        **({"cache_dir": tmp_cache} if tmp_cache else {})
    )
    tracer = Tracer()
    service.execute(workload.db, cfq, tracer=tracer)  # cold, stored
    tracer = Tracer()
    warm = service.execute(workload.db, cfq, tracer=tracer)
    return warm, tracer


def test_cache_block_round_trips_in_v3_reports():
    warm, tracer = _served_run()
    assert warm.cache_info["source"] == "result-cache"
    report = build_run_report(warm, tracer=tracer)
    assert report.cache == warm.cache_info
    document = report.to_dict()
    assert document["version"] == RUN_REPORT_VERSION
    cache = document["cache"]
    assert cache["source"] == "result-cache"
    assert len(cache["dataset_fingerprint"]) == 64
    assert len(cache["query_fingerprint"]) == 64
    assert cache["cold_wall_seconds"] >= 0
    assert cache["warm_wall_seconds"] >= 0
    # Hit/miss/eviction counts and held bytes are all present.
    stats = cache["stats"]
    for key in ("hits", "misses", "stores", "evictions", "expirations",
                "invalidations", "bytes_held"):
        assert key in stats, key
    assert stats["hits"] >= 1
    parsed = RunReport.from_json(report.to_json())
    assert parsed.cache == report.cache
    RunReport.validate(json.loads(report.to_json()))


def test_uncached_runs_omit_the_cache_block():
    result, tracer = _run()
    report = build_run_report(result, tracer=tracer)
    assert report.cache is None
    assert report.to_dict()["cache"] is None


def test_older_report_versions_remain_readable():
    """v1/v2 documents have no ``cache`` key; reading one must default
    the block to absent instead of failing."""
    result, tracer = _run()
    document = build_run_report(result, tracer=tracer).to_dict()
    for version in (1, 2):
        old = dict(document, version=version)
        old.pop("cache", None)
        if version == 1:
            old.pop("budget", None)
            old.pop("interruption", None)
        parsed = RunReport.from_dict(old)
        assert parsed.cache is None


def test_cache_block_survives_nonfinite_floats():
    """A cache_info carrying a non-finite timing (a defensive case: the
    sanitizer must treat the cache block like every other section) still
    yields standard JSON."""
    warm, tracer = _served_run()
    warm.cache_info["warm_wall_seconds"] = float("inf")
    report = build_run_report(warm, tracer=tracer)
    text = report.to_json()
    assert "Infinity" not in text
    document = json.loads(text)
    assert document["cache"]["warm_wall_seconds"] == "inf"


def test_explain_renders_cache_block():
    warm, __ = _served_run()
    explained = warm.explain()
    assert "cache: source result-cache" in explained
    assert "dataset fingerprint:" in explained
    assert "query fingerprint:" in explained
    assert "cold wall seconds:" in explained
    assert "warm wall seconds:" in explained
    assert "stats: " in explained
    assert "hits=" in explained


def test_explain_renders_cold_store_info():
    from repro.serve import QueryService

    workload = quickstart_workload(n_transactions=200)
    service = QueryService()
    cold = service.execute(workload.db, workload.cfq())
    explained = cold.explain()
    assert "cache: source cold" in explained
    assert "cold wall seconds:" in explained


# ----------------------------------------------------------------------
# v5: the serving layer's telemetry block
# ----------------------------------------------------------------------
def _served_run_with_telemetry():
    from repro.serve import QueryService

    workload = quickstart_workload(n_transactions=200)
    cfq = workload.cfq()
    service = QueryService()
    service.execute(workload.db, cfq)
    tracer = Tracer()
    warm = service.execute(workload.db, cfq, tracer=tracer)
    return warm, tracer, service


def test_telemetry_block_round_trips_in_v5_reports():
    warm, tracer, service = _served_run_with_telemetry()
    snapshot = service.telemetry.snapshot(service.stats)
    report = build_run_report(warm, tracer=tracer, telemetry=snapshot)
    document = report.to_dict()
    assert document["version"] == RUN_REPORT_VERSION == 5
    telemetry = document["telemetry"]
    assert telemetry["schema"] == "repro.serve.telemetry"
    assert telemetry["runs_merged"] == 0
    assert set(telemetry["outcomes"]) == {"cold", "warm-memory"}
    assert telemetry["journal"]["seq"] >= 2
    parsed = RunReport.from_json(report.to_json())
    assert parsed.telemetry == report.telemetry
    RunReport.validate(json.loads(report.to_json()))
    # The embedded metrics state is lossless: the registry rebuilds.
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry.from_state(parsed.telemetry["metrics"])
    assert registry.histogram("serve_seconds", outcome="cold").count == 1


def test_reports_without_telemetry_keep_the_block_absent():
    result, tracer = _run()
    report = build_run_report(result, tracer=tracer)
    assert report.telemetry is None
    assert report.to_dict()["telemetry"] is None


def test_v1_through_v4_documents_remain_readable():
    """The versioned reader path: each prior version's documents (which
    lack the keys later versions added) must parse without error."""
    warm, tracer, service = _served_run_with_telemetry()
    snapshot = service.telemetry.snapshot(service.stats)
    document = build_run_report(
        warm, tracer=tracer, telemetry=snapshot
    ).to_dict()
    removed_by_version = {
        4: ["telemetry"],
        3: ["telemetry", "delta"],
        2: ["telemetry", "delta", "cache"],
        1: ["telemetry", "delta", "cache", "budget", "interruption"],
    }
    for version, absent_keys in removed_by_version.items():
        old = dict(document, version=version)
        for key in absent_keys:
            old.pop(key, None)
        parsed = RunReport.from_dict(old)
        assert parsed.answers == document["answers"]
        assert parsed.telemetry is None
        if "cache" in absent_keys:
            assert parsed.cache is None
        RunReport.validate(json.loads(json.dumps(old, default=str)))
