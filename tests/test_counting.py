"""Support counting: correctness against the brute-force oracle and
work metering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.stats import OpCounters
from repro.mining.counting import count_candidates, count_singletons, frequent_only
from tests.conftest import brute_frequent


def test_count_singletons(market_db):
    counters = OpCounters()
    support = count_singletons(market_db.transactions, range(1, 8), counters, "S")
    assert support[1] == 7
    assert support[6] == 1
    assert support[7] == 0
    assert counters.support_counted[("S", 1)] == 7
    assert counters.subset_tests > 0


def test_count_candidates_matches_direct_support(market_db):
    candidates = [(1, 2), (4, 5), (1, 6), (2, 3)]
    support = count_candidates(market_db.transactions, candidates, 2)
    for candidate in candidates:
        assert support[candidate] == market_db.support(candidate)


def test_count_candidates_empty():
    assert count_candidates([(1, 2)], [], 2) == {}


def test_count_candidates_counts_work(market_db):
    counters = OpCounters()
    count_candidates(market_db.transactions, [(1, 2)], 2, counters, "T")
    assert counters.support_counted[("T", 2)] == 1
    assert counters.subset_tests > 0


def test_frequent_only():
    assert frequent_only({(1,): 5, (2,): 2}, 3) == {(1,): 5}


transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=6),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(raw=transactions_strategy, k=st.integers(min_value=2, max_value=4))
def test_count_candidates_matches_brute_force(raw, k):
    """Both counting strategies (subset enumeration and candidate scan)
    agree with the oracle for every candidate at every level."""
    from itertools import combinations

    transactions = [tuple(sorted(set(t))) for t in raw]
    universe = sorted({i for t in transactions for i in t})
    if len(universe) < k:
        return
    candidates = list(combinations(universe, k))
    support = count_candidates(transactions, candidates, k)
    frozen = [frozenset(t) for t in transactions]
    for candidate in candidates:
        expected = sum(1 for t in frozen if frozenset(candidate) <= t)
        assert support[candidate] == expected


@settings(max_examples=30, deadline=None)
@given(raw=transactions_strategy)
def test_singletons_match_brute_force(raw):
    transactions = [tuple(sorted(set(t))) for t in raw]
    universe = sorted({i for t in transactions for i in t})
    support = count_singletons(transactions, universe)
    oracle = brute_frequent(transactions, universe, 1, max_size=1)
    for item in universe:
        assert support[item] == oracle.get((item,), 0)
