"""Differential harness over every registered counting backend.

Every backend — hybrid, hash tree, vertical, and the sharded parallel
backend at 1, 2, and 4 workers — is run over randomized transaction
databases and must produce *identical* ``{itemset: support}`` results,
validated against the independent ``brute_frequent`` oracle.  The
parallel configurations use ``shard_threshold=0`` so worker counts above
one exercise the real ``multiprocessing.Pool`` path, not the in-process
fallback.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.db.stats import OpCounters
from repro.mining.apriori import mine_frequent
from repro.mining.backends import (
    BACKENDS,
    HashTreeBackend,
    HybridBackend,
    ParallelBackend,
    VerticalBackend,
)
from tests.conftest import brute_frequent

# name -> zero-argument factory; parallel variants pinned to explicit
# worker counts with the pool forced on for workers > 1.
BACKEND_FACTORIES = {
    "hybrid": HybridBackend,
    "hashtree": HashTreeBackend,
    "vertical": VerticalBackend,
    "parallel-w1": lambda: ParallelBackend(workers=1, shard_threshold=0),
    "parallel-w2": lambda: ParallelBackend(workers=2, shard_threshold=0),
    "parallel-w4": lambda: ParallelBackend(workers=4, shard_threshold=0),
}

SEEDS = (0, 1, 2, 3)


def random_database(seed: int):
    """A randomized transaction database (deterministic per seed)."""
    rng = random.Random(seed)
    n_transactions = rng.randint(20, 45)
    n_items = rng.randint(8, 14)
    transactions = [
        tuple(sorted(rng.sample(range(1, n_items + 1),
                                rng.randint(0, min(7, n_items)))))
        for __ in range(n_transactions)
    ]
    universe = sorted({i for t in transactions for i in t})
    min_count = max(2, n_transactions // 8)
    return transactions, universe, min_count


def test_every_registered_backend_is_covered():
    """The harness must not silently fall behind the registry."""
    assert set(BACKENDS) <= {name.split("-")[0] for name in BACKEND_FACTORIES}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(BACKEND_FACTORIES))
def test_full_mining_matches_oracle(name, seed):
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    oracle = brute_frequent(transactions, universe, min_count)
    result = mine_frequent(
        transactions, universe, min_count, backend=BACKEND_FACTORIES[name]()
    )
    assert result.all_sets() == oracle, (name, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_raw_counts_identical_across_backends(seed):
    """Per-level raw counts agree with the hybrid reference on every
    candidate — including infrequent ones, which full-mining comparisons
    never see."""
    transactions, universe, min_count = random_database(seed)
    for k in (2, 3):
        candidates = list(combinations(universe, k))[:60]
        if not candidates:
            continue
        reference = HybridBackend().count(transactions, candidates, k)
        for name, factory in sorted(BACKEND_FACTORIES.items()):
            support = factory().count(transactions, candidates, k)
            assert support == reference, (name, seed, k)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_parallel_is_bit_identical_to_hybrid(workers, seed):
    """The sharded backend must be indistinguishable from the serial
    hybrid: same supports, same key order, same counter totals."""
    transactions, universe, min_count = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    if not candidates:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    serial = HybridBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    parallel_counters = OpCounters()
    parallel = ParallelBackend(workers=workers, shard_threshold=0).count(
        transactions, candidates, 2, parallel_counters, "S"
    )
    assert parallel == serial
    assert list(parallel) == list(serial)  # same insertion order too
    assert parallel_counters.subset_tests == serial_counters.subset_tests
    assert parallel_counters.support_counted == serial_counters.support_counted


@pytest.mark.parametrize("seed", SEEDS)
def test_mining_counters_identical_serial_vs_parallel(seed):
    """Whole-run metering parity: a full levelwise mine with the parallel
    backend produces the same ccc cost as the hybrid run."""
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    mine_frequent(transactions, universe, min_count, counters=serial_counters)
    parallel_counters = OpCounters()
    mine_frequent(
        transactions,
        universe,
        min_count,
        counters=parallel_counters,
        backend=ParallelBackend(workers=2, shard_threshold=0),
    )
    assert parallel_counters.as_dict() == serial_counters.as_dict()
