"""Differential harness over every registered counting backend.

Every backend — hybrid, hash tree, vertical, bitmap, and the sharded
parallel backend (hybrid and bitmap kernels) at 1, 2, and 4 workers —
is run over randomized transaction databases and must produce
*identical* ``{itemset: support}`` results, validated against the
independent ``brute_frequent`` oracle.  The parallel configurations use
``shard_threshold=0`` so worker counts above one exercise the real
``multiprocessing.Pool`` path, not the in-process fallback.

The workload section widens the proof to whole optimizer runs: on the
quickstart, Figure 8(b), and Jmax workloads the bitmap backend (serial
and sharded) reproduces the hybrid baseline's frequent sets, supports,
dict insertion order, valid pairs, ``J^k_max`` bound histories, and
answer-bearing counters bit for bit.  ``subset_tests`` is the one
legitimately kernel-specific meter — each backend counts its own probe
currency — and the bitmap figure is pinned to its documented closed
form ``sum(len(c)) * N``, which (unlike the vertical TID-intersection
meter) is *exactly additive over transaction partitions*; that
additivity is what lets ``parallel:N:bitmap`` match serial bitmap on
the full counter dict, and it is asserted directly below.

The fault-injection section proves the fault-tolerance contract: under
injected worker crashes, hangs (timeouts), and hard kills, a run
completes via bounded retry or serial fallback with supports and full
:class:`OpCounters` bit-identical to the matching serial backend
(:class:`HybridBackend` for the hybrid kernel, :class:`BitmapBackend`
for the bitmap kernel), and the persistent pool is forked exactly once
per mining run.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.db.stats import OpCounters
from repro.mining.apriori import mine_frequent
from repro.mining.backends import (
    BACKENDS,
    BitmapBackend,
    FaultInjector,
    HashTreeBackend,
    HybridBackend,
    ParallelBackend,
    VerticalBackend,
    make_backend,
)
from repro.mining.bitmap import (
    bitmap_probe_cost,
    build_bitmap,
    count_with_bitmap,
)
from repro.mining.vertical import build_tidlists, count_with_tidlists
from tests.conftest import brute_frequent

# Long-running suite: excluded from the default fast run (see
# pyproject's addopts); CI's full job selects it explicitly.
pytestmark = pytest.mark.slow

# name -> zero-argument factory; parallel variants pinned to explicit
# worker counts with the pool forced on for workers > 1, and exercised
# over both shard kernels (hybrid and bitmap).
BACKEND_FACTORIES = {
    "hybrid": HybridBackend,
    "hashtree": HashTreeBackend,
    "vertical": VerticalBackend,
    "bitmap": BitmapBackend,
    "parallel-w1": lambda: ParallelBackend(workers=1, shard_threshold=0),
    "parallel-w2": lambda: ParallelBackend(workers=2, shard_threshold=0),
    "parallel-w4": lambda: ParallelBackend(workers=4, shard_threshold=0),
    "parallel-w2-bitmap": lambda: ParallelBackend(
        workers=2, shard_threshold=0, kernel="bitmap"
    ),
    "parallel-w4-bitmap": lambda: ParallelBackend(
        workers=4, shard_threshold=0, kernel="bitmap"
    ),
}

SEEDS = (0, 1, 2, 3)


def random_database(seed: int):
    """A randomized transaction database (deterministic per seed)."""
    rng = random.Random(seed)
    n_transactions = rng.randint(20, 45)
    n_items = rng.randint(8, 14)
    transactions = [
        tuple(sorted(rng.sample(range(1, n_items + 1),
                                rng.randint(0, min(7, n_items)))))
        for __ in range(n_transactions)
    ]
    universe = sorted({i for t in transactions for i in t})
    min_count = max(2, n_transactions // 8)
    return transactions, universe, min_count


def test_every_registered_backend_is_covered():
    """The harness must not silently fall behind the registry."""
    assert set(BACKENDS) <= {name.split("-")[0] for name in BACKEND_FACTORIES}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(BACKEND_FACTORIES))
def test_full_mining_matches_oracle(name, seed):
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    oracle = brute_frequent(transactions, universe, min_count)
    result = mine_frequent(
        transactions, universe, min_count, backend=BACKEND_FACTORIES[name]()
    )
    assert result.all_sets() == oracle, (name, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_raw_counts_identical_across_backends(seed):
    """Per-level raw counts agree with the hybrid reference on every
    candidate — including infrequent ones, which full-mining comparisons
    never see."""
    transactions, universe, min_count = random_database(seed)
    for k in (2, 3):
        candidates = list(combinations(universe, k))[:60]
        if not candidates:
            continue
        reference = HybridBackend().count(transactions, candidates, k)
        for name, factory in sorted(BACKEND_FACTORIES.items()):
            support = factory().count(transactions, candidates, k)
            assert support == reference, (name, seed, k)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_parallel_is_bit_identical_to_hybrid(workers, seed):
    """The sharded backend must be indistinguishable from the serial
    hybrid: same supports, same key order, same counter totals."""
    transactions, universe, min_count = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    if not candidates:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    serial = HybridBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    parallel_counters = OpCounters()
    parallel = ParallelBackend(workers=workers, shard_threshold=0).count(
        transactions, candidates, 2, parallel_counters, "S"
    )
    assert parallel == serial
    assert list(parallel) == list(serial)  # same insertion order too
    assert parallel_counters.subset_tests == serial_counters.subset_tests
    assert parallel_counters.support_counted == serial_counters.support_counted


@pytest.mark.parametrize("seed", SEEDS)
def test_mining_counters_identical_serial_vs_parallel(seed):
    """Whole-run metering parity: a full levelwise mine with the parallel
    backend produces the same ccc cost as the hybrid run."""
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    mine_frequent(transactions, universe, min_count, counters=serial_counters)
    parallel_counters = OpCounters()
    mine_frequent(
        transactions,
        universe,
        min_count,
        counters=parallel_counters,
        backend=ParallelBackend(workers=2, shard_threshold=0),
    )
    assert parallel_counters.as_dict() == serial_counters.as_dict()


# ----------------------------------------------------------------------
# Counter propagation (regression: the merge used to drop most fields)
# ----------------------------------------------------------------------
def test_count_propagates_every_merged_counter_field(monkeypatch):
    """`ParallelBackend.count` must forward ALL merged shard counters —
    scans, tuples_read, constraint checks, and pair_checks included —
    not just subset_tests and the support ledger."""
    import repro.mining.backends as backends_mod

    def fake_count_shard(shard, candidates, k, var):
        counters = OpCounters()
        counters.record_counted(var, k, len(candidates))
        counters.subset_tests = 11
        counters.scans = 1
        counters.tuples_read = 7
        counters.constraint_checks_singleton = 3
        counters.constraint_checks_larger = 2
        counters.pair_checks = 5
        return dict.fromkeys(candidates, 0), counters, 0.0

    monkeypatch.setattr(backends_mod, "count_shard", fake_count_shard)
    backend = ParallelBackend(workers=2, shard_threshold=10**9)  # in-process
    counters = OpCounters()
    backend.count([(1, 2)] * 4, [(1, 2), (1, 3)], 2, counters, "S")
    # Work-style fields sum across the two shards; the ledger is
    # recorded once (merge_shard_counters semantics).
    assert counters.subset_tests == 22
    assert counters.scans == 2
    assert counters.tuples_read == 14
    assert counters.constraint_checks_singleton == 6
    assert counters.constraint_checks_larger == 4
    assert counters.pair_checks == 10
    assert counters.support_counted == {("S", 2): 2}


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_vs_hybrid_full_counter_dict(seed):
    """Direct `count` calls agree with hybrid on the *entire*
    `OpCounters.as_dict()`, not just the two fields the old merge kept."""
    transactions, universe, min_count = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    if not candidates:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    HybridBackend().count(transactions, candidates, 2, serial_counters, "S")
    parallel_counters = OpCounters()
    ParallelBackend(workers=2, shard_threshold=0).count(
        transactions, candidates, 2, parallel_counters, "S"
    )
    assert parallel_counters.as_dict() == serial_counters.as_dict()


# ----------------------------------------------------------------------
# Pool lifecycle: one fork per mining run
# ----------------------------------------------------------------------
def deep_database():
    """A database whose lattice reaches level 5 (many pooled levels)."""
    rng = random.Random(99)
    core = tuple(range(1, 6))
    noise = [
        tuple(sorted(rng.sample(range(6, 16), 3))) for __ in range(12)
    ]
    transactions = [core] * 30 + noise
    universe = sorted({i for t in transactions for i in t})
    return transactions, universe, 10


def test_one_pool_fork_per_mining_run(monkeypatch):
    """The pool must be created once per run and reused across levels —
    asserted by counting actual multiprocessing.Pool constructions."""
    import repro.mining.backends as backends_mod

    forks = []
    real_pool = backends_mod.multiprocessing.Pool

    def counting_pool(*args, **kwargs):
        forks.append(args)
        return real_pool(*args, **kwargs)

    monkeypatch.setattr(backends_mod.multiprocessing, "Pool", counting_pool)
    transactions, universe, min_count = deep_database()
    backend = ParallelBackend(workers=2, shard_threshold=0)
    result = mine_frequent(
        transactions, universe, min_count, backend=backend
    )
    pooled_levels = sum(1 for lvl in backend.stats.levels if not lvl.in_process)
    assert pooled_levels >= 2  # the reuse claim needs several levels
    assert len(forks) == 1
    assert backend.stats.pool_forks == 1
    assert not backend.pool_open  # the run's scope tore the pool down
    reference = mine_frequent(transactions, universe, min_count)
    assert result.all_sets() == reference.all_sets()


# ----------------------------------------------------------------------
# Fault injection: crashes, timeouts, kills, fallbacks
# ----------------------------------------------------------------------
def faulty_backend(injector, **overrides):
    options = dict(
        workers=2, shard_threshold=0, shard_timeout=15.0, max_retries=2
    )
    options.update(overrides)
    return ParallelBackend(fault_injector=injector, **options)


def assert_identical_to_hybrid(backend, seed=1):
    """Count one level with `backend` and with hybrid; everything —
    supports, key order, full counters — must match."""
    transactions, universe, __ = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    serial_counters = OpCounters()
    serial = HybridBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    counters = OpCounters()
    with backend:
        supports = backend.count(transactions, candidates, 2, counters, "S")
    assert supports == serial
    assert list(supports) == list(serial)
    assert counters.as_dict() == serial_counters.as_dict()


def test_injected_crash_is_retried():
    backend = faulty_backend(FaultInjector("crash", {0}))
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures == 1
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 0
    assert not backend.stats.pool_broken
    assert any("RuntimeError" in line for line in backend.stats.failure_log)


def test_injected_hang_times_out_and_retries():
    backend = faulty_backend(
        FaultInjector("hang", {0}, hang_seconds=20.0), shard_timeout=0.75
    )
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures == 1
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 0


def test_injected_worker_kill_is_recovered():
    """A hard-killed worker loses its task; the timeout surfaces it and
    the retry (on a repopulated pool) completes the shard."""
    backend = faulty_backend(FaultInjector("kill", {0}), shard_timeout=1.5)
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures >= 1
    assert backend.stats.total_retries >= 1
    assert backend.stats.total_fallback_shards == 0


def test_exhausted_retries_fall_back_to_serial():
    # Initial tasks take seqs 0 and 1; shard 0's single retry takes seq
    # 2 — failing 0 and 2 exhausts its retries and forces the fallback.
    backend = faulty_backend(
        FaultInjector("crash", {0, 2}), max_retries=1
    )
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures == 2
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 1
    assert not backend.stats.pool_broken  # one healthy shard remained


def test_whole_level_fallback_marks_pool_broken():
    """When every shard of a level degrades, the pool is torn down and
    later levels run in-process — the run still completes correctly."""
    transactions, universe, min_count = deep_database()
    backend = ParallelBackend(
        workers=2,
        shard_threshold=0,
        shard_timeout=15.0,
        max_retries=0,
        fault_injector=FaultInjector("crash", {0, 1}),
    )
    result = mine_frequent(transactions, universe, min_count, backend=backend)
    reference = mine_frequent(transactions, universe, min_count)
    assert result.all_sets() == reference.all_sets()
    assert backend.stats.pool_broken
    assert backend.stats.total_fallback_shards == 2
    assert not backend.pool_open
    # Every level after the broken one ran in-process.
    levels = backend.stats.levels
    broken_at = next(
        i for i, lvl in enumerate(levels) if lvl.fallback_shards
    )
    assert all(lvl.in_process for lvl in levels[broken_at + 1:])


@pytest.mark.parametrize(
    "injector",
    [
        FaultInjector("crash", {0}),
        FaultInjector("hang", {0}, hang_seconds=20.0),
    ],
    ids=["crash", "hang"],
)
def test_full_mining_run_survives_injected_fault(injector):
    """End-to-end: a levelwise mine with a fault at the first pooled
    level finishes with supports AND counters bit-identical to hybrid."""
    transactions, universe, min_count = deep_database()
    serial_counters = OpCounters()
    reference = mine_frequent(
        transactions, universe, min_count, counters=serial_counters
    )
    backend = ParallelBackend(
        workers=2,
        shard_threshold=0,
        shard_timeout=0.75 if injector.mode == "hang" else 15.0,
        max_retries=2,
        fault_injector=injector,
    )
    counters = OpCounters()
    result = mine_frequent(
        transactions, universe, min_count, counters=counters, backend=backend
    )
    assert result.all_sets() == reference.all_sets()
    assert counters.as_dict() == serial_counters.as_dict()
    assert backend.stats.total_failures >= 1
    assert backend.stats.pool_forks == 1


def test_optimizer_run_forks_once_and_reports_stats():
    """A dovetailed 2-variable CFQ shares ONE pool across both lattices
    and all levels, and `explain()` surfaces the pool stats."""
    from repro.core.cfq_parser import parse_cfq
    from repro.core.optimizer import CFQOptimizer
    from repro.datagen.workloads import quickstart_workload

    workload = quickstart_workload(n_transactions=200, seed=3)
    cfq = parse_cfq(
        "{(S, T) | max(S.Price) <= min(T.Price)}",
        workload.domains,
        default_minsup=0.02,
    )
    backend = ParallelBackend(workers=2, shard_threshold=0)
    result = CFQOptimizer(cfq).execute(workload.db, backend=backend)
    assert result.backend is backend
    assert backend.stats.pool_forks == 1
    assert "parallel counting:" in result.explain()
    assert "1 pool fork(s)" in result.explain()


# ----------------------------------------------------------------------
# Bitmap kernel: bit-identity and shard-additive metering
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_bitmap_matches_hybrid_with_documented_metering(seed):
    """Bitmap agrees with hybrid on everything answer-bearing — supports,
    key order, the counting ledger — while its ``subset_tests`` meter is
    the documented bit-probe closed form ``sum(len(c)) * N``."""
    transactions, universe, __ = random_database(seed)
    for k in (2, 3):
        candidates = list(combinations(universe, k))[:60]
        if not candidates:
            continue
        hybrid_counters = OpCounters()
        hybrid = HybridBackend().count(
            transactions, candidates, k, hybrid_counters, "S"
        )
        bitmap_counters = OpCounters()
        bitmap = BitmapBackend().count(
            transactions, candidates, k, bitmap_counters, "S"
        )
        assert bitmap == hybrid, (seed, k)
        assert list(bitmap) == list(hybrid), (seed, k)
        assert bitmap_counters.support_counted == hybrid_counters.support_counted
        assert bitmap_counters.total_counted == hybrid_counters.total_counted
        # The one kernel-specific meter, pinned to its closed form.
        assert bitmap_counters.subset_tests == bitmap_probe_cost(
            candidates, len(transactions)
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_parallel_bitmap_vs_serial_bitmap_full_counter_dict(workers, seed):
    """Sharding the bitmap kernel is invisible: supports, key order, and
    the ENTIRE counter dict (``subset_tests`` included — the additivity
    claim) match the serial bitmap backend."""
    transactions, universe, __ = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    if not candidates:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    serial = BitmapBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    parallel_counters = OpCounters()
    parallel = ParallelBackend(
        workers=workers, shard_threshold=0, kernel="bitmap"
    ).count(transactions, candidates, 2, parallel_counters, "S")
    assert parallel == serial
    assert list(parallel) == list(serial)
    assert parallel_counters.as_dict() == serial_counters.as_dict()


@pytest.mark.parametrize("seed", SEEDS)
def test_bitmap_mining_counters_identical_serial_vs_parallel(seed):
    """Whole-run metering parity for the bitmap kernel: a full levelwise
    mine through ``parallel:2:bitmap`` reproduces the serial bitmap
    backend's counter dict exactly."""
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    serial = mine_frequent(
        transactions,
        universe,
        min_count,
        counters=serial_counters,
        backend=BitmapBackend(),
    )
    parallel_counters = OpCounters()
    parallel = mine_frequent(
        transactions,
        universe,
        min_count,
        counters=parallel_counters,
        backend=ParallelBackend(workers=2, shard_threshold=0, kernel="bitmap"),
    )
    assert parallel.all_sets() == serial.all_sets()
    assert parallel_counters.as_dict() == serial_counters.as_dict()


@pytest.mark.parametrize("seed", SEEDS)
def test_bitmap_supports_and_metering_additive_over_partitions(seed):
    """Kernel-level additivity: for an arbitrary transaction partition,
    per-candidate supports AND the bit-probe meter sum exactly to the
    whole-database figures."""
    transactions, universe, __ = random_database(seed)
    candidates = list(combinations(universe, 2))[:40]
    if not candidates or len(transactions) < 2:
        pytest.skip("degenerate database")

    def one_pass(txns):
        counters = OpCounters()
        support = count_with_bitmap(
            build_bitmap(txns), candidates, counters, "S", 2
        )
        return support, counters.subset_tests

    whole, whole_probes = one_pass(transactions)
    cut = len(transactions) // 2
    left, left_probes = one_pass(transactions[:cut])
    right, right_probes = one_pass(transactions[cut:])
    assert left_probes + right_probes == whole_probes
    for candidate in candidates:
        assert left[candidate] + right[candidate] == whole[candidate]


def test_bitmap_shard_metering_is_additive_unlike_vertical():
    """The satellite contrast pinned as an executable example: vertical's
    TID-intersection meter depends on list *sizes*, which a split
    changes, so sharded vertical work does not sum to the serial figure
    — while the bitmap meter does, exactly.  (This is why
    ``ParallelBackend`` shards hybrid and bitmap but never vertical; see
    the note in ``repro/mining/vertical.py``.)"""
    transactions = [(1, 2)] * 10
    candidates = [(1, 2)]

    def vertical_work(txns):
        counters = OpCounters()
        count_with_tidlists(build_tidlists(txns), candidates, counters, "S", 2)
        return counters.subset_tests

    def bitmap_work(txns):
        counters = OpCounters()
        count_with_bitmap(build_bitmap(txns), candidates, counters, "S", 2)
        return counters.subset_tests

    # Vertical: whole = 10 + (min(10, 10) + 1) = 21, but each 5-row
    # shard costs 5 + (min(5, 5) + 1) = 11, and 11 + 11 != 21.
    assert vertical_work(transactions) == 21
    assert vertical_work(transactions[:5]) + vertical_work(transactions[5:]) == 22
    # Bitmap: 2 item rows * N bits, linear in N, so any split sums back.
    assert bitmap_work(transactions) == bitmap_probe_cost(candidates, 10) == 20
    assert bitmap_work(transactions[:5]) + bitmap_work(transactions[5:]) == 20


# ----------------------------------------------------------------------
# Workload-level bit-identity: whole optimizer runs, three workloads
# ----------------------------------------------------------------------
def _workload(name):
    from repro.datagen.workloads import (
        fig8b_workload,
        jmax_workload,
        quickstart_workload,
    )

    return {
        "quickstart": lambda: quickstart_workload(n_transactions=300),
        "fig8b": lambda: fig8b_workload(40.0, n_items=120, n_transactions=300),
        "jmax": lambda: jmax_workload(600.0, n_transactions=200, core_size=8),
    }[name]()


#: OpCounters fields every backend must reproduce exactly — they define
#: the answer (what was counted, checked, and paired), independent of
#: which kernel did the counting.  ``subset_tests``/``scans`` are the
#: kernel-specific work meters and are excluded by design.
ANSWER_COUNTERS = (
    "sets_counted",
    "constraint_checks_singleton",
    "constraint_checks_larger",
    "pair_checks",
)


def _workload_answers(result):
    """Everything answer-bearing, with dict order made explicit (pair
    formation iterates support dicts, so order is answer-bearing).
    Calls ``result.pairs`` exactly once — it meters ``pair_checks``
    lazily, so each result must enumerate pairs the same number of
    times for the counter comparison to be meaningful."""
    lattices = {}
    for var, lattice in result.raw.lattices.items():
        lattices[var] = {
            "frequent": {
                level: list(sets.items())
                for level, sets in lattice.frequent.items()
            },
            "level1": list(lattice.level1_supports.items()),
            "counted": list(lattice.counted_per_level.items()),
        }
    return {
        "lattices": lattices,
        "frequent_valid": {
            var: list(result.frequent_valid(var).items())
            for var in result.cfq.variables
        },
        "pairs": result.pairs(limit=40),
        "bounds": dict(result.raw.bound_histories),
        "disabled_jmax": list(result.raw.disabled_jmax),
    }


@pytest.mark.parametrize("spec", ["bitmap", "parallel:2:bitmap"])
@pytest.mark.parametrize("name", ["quickstart", "fig8b", "jmax"])
def test_workload_bitmap_bit_identical_to_hybrid(name, spec):
    """Whole optimizer runs on the three reference workloads: the bitmap
    backend (serial and sharded via ``make_backend``) reproduces the
    hybrid baseline's frequent sets, supports, insertion order, pairs,
    bound histories, and answer-bearing counters bit for bit."""
    from repro.core.optimizer import CFQOptimizer

    workload = _workload(name)
    cfq = workload.cfq()
    baseline = CFQOptimizer(cfq).execute(workload.db)
    run = CFQOptimizer(cfq).execute(
        workload.db, backend=make_backend(spec)
    )
    assert _workload_answers(run) == _workload_answers(baseline), (name, spec)
    base_counters = baseline.counters.as_dict()
    run_counters = run.counters.as_dict()
    for fld in ANSWER_COUNTERS:
        assert run_counters[fld] == base_counters[fld], (name, spec, fld)
    assert (
        run.counters.support_counted == baseline.counters.support_counted
    ), (name, spec)


@pytest.mark.parametrize("name", ["quickstart", "fig8b", "jmax"])
def test_workload_parallel_bitmap_full_counters_match_serial_bitmap(name):
    """On whole workload runs the sharded bitmap backend matches serial
    bitmap on the FULL counter dict — the end-to-end form of the
    metering-additivity claim."""
    from repro.core.optimizer import CFQOptimizer

    workload = _workload(name)
    cfq = workload.cfq()
    serial = CFQOptimizer(cfq).execute(workload.db, backend=BitmapBackend())
    sharded = CFQOptimizer(cfq).execute(
        workload.db,
        backend=ParallelBackend(workers=2, shard_threshold=0, kernel="bitmap"),
    )
    assert _workload_answers(sharded) == _workload_answers(serial), name
    assert sharded.counters.as_dict() == serial.counters.as_dict(), name


# ----------------------------------------------------------------------
# Fault injection over the bitmap kernel: degraded != different
# ----------------------------------------------------------------------
def assert_identical_to_serial_bitmap(backend, seed=1):
    """Count one level with `backend` and with the serial bitmap
    backend; everything — supports, key order, full counters — must
    match.  (The bitmap analogue of ``assert_identical_to_hybrid``:
    fault recovery may reroute shards through retries or the serial
    fallback, all of which run the same bitmap kernel, and the
    additive meter makes every rerouting invisible.)"""
    transactions, universe, __ = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    serial_counters = OpCounters()
    serial = BitmapBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    counters = OpCounters()
    with backend:
        supports = backend.count(transactions, candidates, 2, counters, "S")
    assert supports == serial
    assert list(supports) == list(serial)
    assert counters.as_dict() == serial_counters.as_dict()


def test_injected_crash_bitmap_kernel_is_retried():
    backend = faulty_backend(FaultInjector("crash", {0}), kernel="bitmap")
    assert_identical_to_serial_bitmap(backend)
    assert backend.stats.total_failures == 1
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 0
    assert not backend.stats.pool_broken


def test_injected_hang_bitmap_kernel_times_out_and_retries():
    backend = faulty_backend(
        FaultInjector("hang", {0}, hang_seconds=20.0),
        shard_timeout=0.75,
        kernel="bitmap",
    )
    assert_identical_to_serial_bitmap(backend)
    assert backend.stats.total_failures == 1
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 0


def test_exhausted_retries_bitmap_falls_back_to_serial_bitmap():
    """When retries run out, the failed shard is recounted in-process —
    with the same bitmap kernel, so the degraded level is still
    bit-identical to serial bitmap, full counters included."""
    backend = faulty_backend(
        FaultInjector("crash", {0, 2}), max_retries=1, kernel="bitmap"
    )
    assert_identical_to_serial_bitmap(backend)
    assert backend.stats.total_failures == 2
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 1
    assert not backend.stats.pool_broken


def test_whole_level_broken_pool_degrades_to_serial_bitmap():
    """Every shard of a level failing tears the pool down; the rest of
    the mine runs in-process — still through the bitmap kernel, so the
    whole run matches serial bitmap on answers AND the counter dict."""
    transactions, universe, min_count = deep_database()
    serial_counters = OpCounters()
    reference = mine_frequent(
        transactions,
        universe,
        min_count,
        counters=serial_counters,
        backend=BitmapBackend(),
    )
    backend = ParallelBackend(
        workers=2,
        shard_threshold=0,
        shard_timeout=15.0,
        max_retries=0,
        kernel="bitmap",
        fault_injector=FaultInjector("crash", {0, 1}),
    )
    counters = OpCounters()
    result = mine_frequent(
        transactions, universe, min_count, counters=counters, backend=backend
    )
    assert result.all_sets() == reference.all_sets()
    assert counters.as_dict() == serial_counters.as_dict()
    assert backend.stats.pool_broken
    assert backend.stats.total_fallback_shards == 2
    assert not backend.pool_open


# ----------------------------------------------------------------------
# Explain output: each backend reports under its own label
# ----------------------------------------------------------------------
def test_bitmap_optimizer_reports_stats():
    """A dovetailed 2-variable CFQ over the bitmap backend packs the
    matrix ONCE (the second lattice hits the digest cache) and
    ``explain()`` reports under the bitmap label."""
    from repro.core.cfq_parser import parse_cfq
    from repro.core.optimizer import CFQOptimizer
    from repro.datagen.workloads import quickstart_workload

    workload = quickstart_workload(n_transactions=200, seed=3)
    cfq = parse_cfq(
        "{(S, T) | max(S.Price) <= min(T.Price)}",
        workload.domains,
        default_minsup=0.02,
    )
    backend = BitmapBackend()
    result = CFQOptimizer(cfq).execute(workload.db, backend=backend)
    assert result.backend is backend
    assert backend.stats.builds == 1
    assert backend.stats.cache_hits >= 1
    explain = result.explain()
    assert "bitmap counting:" in explain
    assert "1 matrix build(s)" in explain


def test_parallel_bitmap_explain_names_the_kernel():
    from repro.core.cfq_parser import parse_cfq
    from repro.core.optimizer import CFQOptimizer
    from repro.datagen.workloads import quickstart_workload

    workload = quickstart_workload(n_transactions=200, seed=3)
    cfq = parse_cfq(
        "{(S, T) | max(S.Price) <= min(T.Price)}",
        workload.domains,
        default_minsup=0.02,
    )
    backend = ParallelBackend(workers=2, shard_threshold=0, kernel="bitmap")
    result = CFQOptimizer(cfq).execute(workload.db, backend=backend)
    explain = result.explain()
    assert "parallel counting:" in explain
    assert "(bitmap kernel," in explain
    assert backend.stats.pool_forks == 1
