"""Differential harness over every registered counting backend.

Every backend — hybrid, hash tree, vertical, and the sharded parallel
backend at 1, 2, and 4 workers — is run over randomized transaction
databases and must produce *identical* ``{itemset: support}`` results,
validated against the independent ``brute_frequent`` oracle.  The
parallel configurations use ``shard_threshold=0`` so worker counts above
one exercise the real ``multiprocessing.Pool`` path, not the in-process
fallback.

The fault-injection section proves the fault-tolerance contract: under
injected worker crashes, hangs (timeouts), and hard kills, a run
completes via bounded retry or serial fallback with supports and full
:class:`OpCounters` bit-identical to :class:`HybridBackend`, and the
persistent pool is forked exactly once per mining run.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.db.stats import OpCounters
from repro.mining.apriori import mine_frequent
from repro.mining.backends import (
    BACKENDS,
    FaultInjector,
    HashTreeBackend,
    HybridBackend,
    ParallelBackend,
    VerticalBackend,
)
from tests.conftest import brute_frequent

# Long-running suite: excluded from the default fast run (see
# pyproject's addopts); CI's full job selects it explicitly.
pytestmark = pytest.mark.slow

# name -> zero-argument factory; parallel variants pinned to explicit
# worker counts with the pool forced on for workers > 1.
BACKEND_FACTORIES = {
    "hybrid": HybridBackend,
    "hashtree": HashTreeBackend,
    "vertical": VerticalBackend,
    "parallel-w1": lambda: ParallelBackend(workers=1, shard_threshold=0),
    "parallel-w2": lambda: ParallelBackend(workers=2, shard_threshold=0),
    "parallel-w4": lambda: ParallelBackend(workers=4, shard_threshold=0),
}

SEEDS = (0, 1, 2, 3)


def random_database(seed: int):
    """A randomized transaction database (deterministic per seed)."""
    rng = random.Random(seed)
    n_transactions = rng.randint(20, 45)
    n_items = rng.randint(8, 14)
    transactions = [
        tuple(sorted(rng.sample(range(1, n_items + 1),
                                rng.randint(0, min(7, n_items)))))
        for __ in range(n_transactions)
    ]
    universe = sorted({i for t in transactions for i in t})
    min_count = max(2, n_transactions // 8)
    return transactions, universe, min_count


def test_every_registered_backend_is_covered():
    """The harness must not silently fall behind the registry."""
    assert set(BACKENDS) <= {name.split("-")[0] for name in BACKEND_FACTORIES}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(BACKEND_FACTORIES))
def test_full_mining_matches_oracle(name, seed):
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    oracle = brute_frequent(transactions, universe, min_count)
    result = mine_frequent(
        transactions, universe, min_count, backend=BACKEND_FACTORIES[name]()
    )
    assert result.all_sets() == oracle, (name, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_raw_counts_identical_across_backends(seed):
    """Per-level raw counts agree with the hybrid reference on every
    candidate — including infrequent ones, which full-mining comparisons
    never see."""
    transactions, universe, min_count = random_database(seed)
    for k in (2, 3):
        candidates = list(combinations(universe, k))[:60]
        if not candidates:
            continue
        reference = HybridBackend().count(transactions, candidates, k)
        for name, factory in sorted(BACKEND_FACTORIES.items()):
            support = factory().count(transactions, candidates, k)
            assert support == reference, (name, seed, k)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_parallel_is_bit_identical_to_hybrid(workers, seed):
    """The sharded backend must be indistinguishable from the serial
    hybrid: same supports, same key order, same counter totals."""
    transactions, universe, min_count = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    if not candidates:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    serial = HybridBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    parallel_counters = OpCounters()
    parallel = ParallelBackend(workers=workers, shard_threshold=0).count(
        transactions, candidates, 2, parallel_counters, "S"
    )
    assert parallel == serial
    assert list(parallel) == list(serial)  # same insertion order too
    assert parallel_counters.subset_tests == serial_counters.subset_tests
    assert parallel_counters.support_counted == serial_counters.support_counted


@pytest.mark.parametrize("seed", SEEDS)
def test_mining_counters_identical_serial_vs_parallel(seed):
    """Whole-run metering parity: a full levelwise mine with the parallel
    backend produces the same ccc cost as the hybrid run."""
    transactions, universe, min_count = random_database(seed)
    if not universe:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    mine_frequent(transactions, universe, min_count, counters=serial_counters)
    parallel_counters = OpCounters()
    mine_frequent(
        transactions,
        universe,
        min_count,
        counters=parallel_counters,
        backend=ParallelBackend(workers=2, shard_threshold=0),
    )
    assert parallel_counters.as_dict() == serial_counters.as_dict()


# ----------------------------------------------------------------------
# Counter propagation (regression: the merge used to drop most fields)
# ----------------------------------------------------------------------
def test_count_propagates_every_merged_counter_field(monkeypatch):
    """`ParallelBackend.count` must forward ALL merged shard counters —
    scans, tuples_read, constraint checks, and pair_checks included —
    not just subset_tests and the support ledger."""
    import repro.mining.backends as backends_mod

    def fake_count_shard(shard, candidates, k, var):
        counters = OpCounters()
        counters.record_counted(var, k, len(candidates))
        counters.subset_tests = 11
        counters.scans = 1
        counters.tuples_read = 7
        counters.constraint_checks_singleton = 3
        counters.constraint_checks_larger = 2
        counters.pair_checks = 5
        return dict.fromkeys(candidates, 0), counters, 0.0

    monkeypatch.setattr(backends_mod, "count_shard", fake_count_shard)
    backend = ParallelBackend(workers=2, shard_threshold=10**9)  # in-process
    counters = OpCounters()
    backend.count([(1, 2)] * 4, [(1, 2), (1, 3)], 2, counters, "S")
    # Work-style fields sum across the two shards; the ledger is
    # recorded once (merge_shard_counters semantics).
    assert counters.subset_tests == 22
    assert counters.scans == 2
    assert counters.tuples_read == 14
    assert counters.constraint_checks_singleton == 6
    assert counters.constraint_checks_larger == 4
    assert counters.pair_checks == 10
    assert counters.support_counted == {("S", 2): 2}


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_vs_hybrid_full_counter_dict(seed):
    """Direct `count` calls agree with hybrid on the *entire*
    `OpCounters.as_dict()`, not just the two fields the old merge kept."""
    transactions, universe, min_count = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    if not candidates:
        pytest.skip("degenerate empty database")
    serial_counters = OpCounters()
    HybridBackend().count(transactions, candidates, 2, serial_counters, "S")
    parallel_counters = OpCounters()
    ParallelBackend(workers=2, shard_threshold=0).count(
        transactions, candidates, 2, parallel_counters, "S"
    )
    assert parallel_counters.as_dict() == serial_counters.as_dict()


# ----------------------------------------------------------------------
# Pool lifecycle: one fork per mining run
# ----------------------------------------------------------------------
def deep_database():
    """A database whose lattice reaches level 5 (many pooled levels)."""
    rng = random.Random(99)
    core = tuple(range(1, 6))
    noise = [
        tuple(sorted(rng.sample(range(6, 16), 3))) for __ in range(12)
    ]
    transactions = [core] * 30 + noise
    universe = sorted({i for t in transactions for i in t})
    return transactions, universe, 10


def test_one_pool_fork_per_mining_run(monkeypatch):
    """The pool must be created once per run and reused across levels —
    asserted by counting actual multiprocessing.Pool constructions."""
    import repro.mining.backends as backends_mod

    forks = []
    real_pool = backends_mod.multiprocessing.Pool

    def counting_pool(*args, **kwargs):
        forks.append(args)
        return real_pool(*args, **kwargs)

    monkeypatch.setattr(backends_mod.multiprocessing, "Pool", counting_pool)
    transactions, universe, min_count = deep_database()
    backend = ParallelBackend(workers=2, shard_threshold=0)
    result = mine_frequent(
        transactions, universe, min_count, backend=backend
    )
    pooled_levels = sum(1 for lvl in backend.stats.levels if not lvl.in_process)
    assert pooled_levels >= 2  # the reuse claim needs several levels
    assert len(forks) == 1
    assert backend.stats.pool_forks == 1
    assert not backend.pool_open  # the run's scope tore the pool down
    reference = mine_frequent(transactions, universe, min_count)
    assert result.all_sets() == reference.all_sets()


# ----------------------------------------------------------------------
# Fault injection: crashes, timeouts, kills, fallbacks
# ----------------------------------------------------------------------
def faulty_backend(injector, **overrides):
    options = dict(
        workers=2, shard_threshold=0, shard_timeout=15.0, max_retries=2
    )
    options.update(overrides)
    return ParallelBackend(fault_injector=injector, **options)


def assert_identical_to_hybrid(backend, seed=1):
    """Count one level with `backend` and with hybrid; everything —
    supports, key order, full counters — must match."""
    transactions, universe, __ = random_database(seed)
    candidates = list(combinations(universe, 2))[:60]
    serial_counters = OpCounters()
    serial = HybridBackend().count(
        transactions, candidates, 2, serial_counters, "S"
    )
    counters = OpCounters()
    with backend:
        supports = backend.count(transactions, candidates, 2, counters, "S")
    assert supports == serial
    assert list(supports) == list(serial)
    assert counters.as_dict() == serial_counters.as_dict()


def test_injected_crash_is_retried():
    backend = faulty_backend(FaultInjector("crash", {0}))
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures == 1
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 0
    assert not backend.stats.pool_broken
    assert any("RuntimeError" in line for line in backend.stats.failure_log)


def test_injected_hang_times_out_and_retries():
    backend = faulty_backend(
        FaultInjector("hang", {0}, hang_seconds=20.0), shard_timeout=0.75
    )
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures == 1
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 0


def test_injected_worker_kill_is_recovered():
    """A hard-killed worker loses its task; the timeout surfaces it and
    the retry (on a repopulated pool) completes the shard."""
    backend = faulty_backend(FaultInjector("kill", {0}), shard_timeout=1.5)
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures >= 1
    assert backend.stats.total_retries >= 1
    assert backend.stats.total_fallback_shards == 0


def test_exhausted_retries_fall_back_to_serial():
    # Initial tasks take seqs 0 and 1; shard 0's single retry takes seq
    # 2 — failing 0 and 2 exhausts its retries and forces the fallback.
    backend = faulty_backend(
        FaultInjector("crash", {0, 2}), max_retries=1
    )
    assert_identical_to_hybrid(backend)
    assert backend.stats.total_failures == 2
    assert backend.stats.total_retries == 1
    assert backend.stats.total_fallback_shards == 1
    assert not backend.stats.pool_broken  # one healthy shard remained


def test_whole_level_fallback_marks_pool_broken():
    """When every shard of a level degrades, the pool is torn down and
    later levels run in-process — the run still completes correctly."""
    transactions, universe, min_count = deep_database()
    backend = ParallelBackend(
        workers=2,
        shard_threshold=0,
        shard_timeout=15.0,
        max_retries=0,
        fault_injector=FaultInjector("crash", {0, 1}),
    )
    result = mine_frequent(transactions, universe, min_count, backend=backend)
    reference = mine_frequent(transactions, universe, min_count)
    assert result.all_sets() == reference.all_sets()
    assert backend.stats.pool_broken
    assert backend.stats.total_fallback_shards == 2
    assert not backend.pool_open
    # Every level after the broken one ran in-process.
    levels = backend.stats.levels
    broken_at = next(
        i for i, lvl in enumerate(levels) if lvl.fallback_shards
    )
    assert all(lvl.in_process for lvl in levels[broken_at + 1:])


@pytest.mark.parametrize(
    "injector",
    [
        FaultInjector("crash", {0}),
        FaultInjector("hang", {0}, hang_seconds=20.0),
    ],
    ids=["crash", "hang"],
)
def test_full_mining_run_survives_injected_fault(injector):
    """End-to-end: a levelwise mine with a fault at the first pooled
    level finishes with supports AND counters bit-identical to hybrid."""
    transactions, universe, min_count = deep_database()
    serial_counters = OpCounters()
    reference = mine_frequent(
        transactions, universe, min_count, counters=serial_counters
    )
    backend = ParallelBackend(
        workers=2,
        shard_threshold=0,
        shard_timeout=0.75 if injector.mode == "hang" else 15.0,
        max_retries=2,
        fault_injector=injector,
    )
    counters = OpCounters()
    result = mine_frequent(
        transactions, universe, min_count, counters=counters, backend=backend
    )
    assert result.all_sets() == reference.all_sets()
    assert counters.as_dict() == serial_counters.as_dict()
    assert backend.stats.total_failures >= 1
    assert backend.stats.pool_forks == 1


def test_optimizer_run_forks_once_and_reports_stats():
    """A dovetailed 2-variable CFQ shares ONE pool across both lattices
    and all levels, and `explain()` surfaces the pool stats."""
    from repro.core.cfq_parser import parse_cfq
    from repro.core.optimizer import CFQOptimizer
    from repro.datagen.workloads import quickstart_workload

    workload = quickstart_workload(n_transactions=200, seed=3)
    cfq = parse_cfq(
        "{(S, T) | max(S.Price) <= min(T.Price)}",
        workload.domains,
        default_minsup=0.02,
    )
    backend = ParallelBackend(workers=2, shard_threshold=0)
    result = CFQOptimizer(cfq).execute(workload.db, backend=backend)
    assert result.backend is backend
    assert backend.stats.pool_forks == 1
    assert "parallel counting:" in result.explain()
    assert "1 pool fork(s)" in result.explain()
