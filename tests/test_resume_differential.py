"""Differential proof of the checkpoint/resume contract.

The claim (``docs/run-lifecycle.md``): interrupt a run at any completed
level boundary, resume it from the checkpoint, and the resumed run is
**bit-identical** to an uninterrupted one — same frequent sets, same
supports, same answers, same operation counters.  This file proves it on
three workload families (quickstart, Figure 8(b), and the Section 7.3
Jmax query) at several interruption points, including chained
interrupt-resume-interrupt-resume sequences.
"""

import pytest

from repro.core.optimizer import CFQOptimizer
from repro.datagen.workloads import (
    fig8b_workload,
    jmax_workload,
    quickstart_workload,
)
from repro.errors import ExecutionError
from repro.runtime.guard import RunGuard

# Long-running suite: excluded from the default fast run (see
# pyproject's addopts); CI's full job selects it explicitly.
pytestmark = pytest.mark.slow

WORKLOADS = {
    "quickstart": lambda: quickstart_workload(n_transactions=300),
    "fig8b": lambda: fig8b_workload(40.0, n_items=120, n_transactions=300),
    "jmax": lambda: jmax_workload(600.0, n_transactions=200, core_size=8),
}


class TripAfterLevels(RunGuard):
    """Deterministic interruption: cancel after N completed levels."""

    def __init__(self, n_levels: int):
        super().__init__()
        self.remaining = n_levels

    def level_completed(self, var, level):
        super().level_completed(var, level)
        self.remaining -= 1
        if self.remaining <= 0:
            self.request_cancel("cancelled", "test interruption")
            self.check("level")


def _execute(workload, **kwargs):
    return CFQOptimizer(workload.cfq()).execute(workload.db, **kwargs)


def _assert_identical(resumed, baseline, cfq_vars):
    """Bit-identical contract: sets, supports, answers, counters."""
    for var in cfq_vars:
        base_levels = baseline.raw.result_for(var).frequent
        res_levels = resumed.raw.result_for(var).frequent
        # Dict equality covers itemsets AND their exact supports; compare
        # list-ified items to also pin the (deterministic) ordering.
        assert res_levels == base_levels
        for level in base_levels:
            assert (list(res_levels[level].items())
                    == list(base_levels[level].items()))
        assert resumed.frequent_valid(var) == baseline.frequent_valid(var)
    assert resumed.pairs() == baseline.pairs()
    assert resumed.counters.as_dict() == baseline.counters.as_dict()
    assert resumed.raw.bound_histories == baseline.raw.bound_histories
    assert resumed.status == "complete"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("trip_after", [1, 3, 5])
def test_resumed_run_is_bit_identical(name, trip_after, tmp_path):
    workload = WORKLOADS[name]()
    baseline = _execute(workload)

    interrupted = _execute(
        workload,
        guard=TripAfterLevels(trip_after),
        checkpoint_dir=str(tmp_path),
    )
    assert interrupted.is_partial, "workload finished before the trip point"
    assert interrupted.interruption is not None

    resumed = _execute(workload, checkpoint_dir=str(tmp_path), resume=True)
    _assert_identical(resumed, baseline, workload.cfq().variables)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_chained_interruptions_still_converge(name, tmp_path):
    """Interrupt, resume-and-interrupt-again, then resume to completion."""
    workload = WORKLOADS[name]()
    baseline = _execute(workload)

    first = _execute(workload, guard=TripAfterLevels(1),
                     checkpoint_dir=str(tmp_path))
    assert first.is_partial
    second = _execute(workload, guard=TripAfterLevels(2),
                      checkpoint_dir=str(tmp_path), resume=True)
    assert second.is_partial
    final = _execute(workload, checkpoint_dir=str(tmp_path), resume=True)
    _assert_identical(final, baseline, workload.cfq().variables)


def test_resume_without_checkpoint_starts_fresh(tmp_path):
    workload = WORKLOADS["quickstart"]()
    baseline = _execute(workload)
    resumed = _execute(workload, checkpoint_dir=str(tmp_path), resume=True)
    _assert_identical(resumed, baseline, workload.cfq().variables)


def test_resume_after_complete_run_replays_fully(tmp_path):
    """A checkpoint written by a run that finished replays to the same
    answer without re-counting (no new scans during replay)."""
    workload = WORKLOADS["quickstart"]()
    baseline = _execute(workload, checkpoint_dir=str(tmp_path))
    assert not baseline.is_partial
    resumed = _execute(workload, checkpoint_dir=str(tmp_path), resume=True)
    _assert_identical(resumed, baseline, workload.cfq().variables)


def _interrupt_past_first_boundary(workload, tmp_path):
    """Interrupt late enough that at least one checkpoint was written."""
    interrupted = _execute(workload, guard=TripAfterLevels(5),
                           checkpoint_dir=str(tmp_path))
    assert interrupted.is_partial
    assert (tmp_path / "checkpoint.json").exists()
    return interrupted


def test_resume_refuses_mismatched_dataset(tmp_path):
    workload = WORKLOADS["quickstart"]()
    _interrupt_past_first_boundary(workload, tmp_path)
    other = quickstart_workload(n_transactions=301)
    with pytest.raises(ExecutionError, match="different run"):
        _execute(other, checkpoint_dir=str(tmp_path), resume=True)


def test_resume_refuses_mismatched_options(tmp_path):
    workload = WORKLOADS["quickstart"]()
    _interrupt_past_first_boundary(workload, tmp_path)
    with pytest.raises(ExecutionError, match="different run"):
        _execute(workload, checkpoint_dir=str(tmp_path), resume=True,
                 dovetail=False)


def test_resume_requires_checkpoint_dir():
    workload = WORKLOADS["quickstart"]()
    with pytest.raises(ValueError, match="checkpoint_dir"):
        _execute(workload, resume=True)
