"""Dataset churn as first-class deltas: append/delete semantics.

Databases are immutable content — churn returns a *new*
:class:`~repro.db.transactions.TransactionDatabase` plus a
:class:`~repro.db.delta.DatasetDelta` that downstream incremental
maintenance validates against content digests.  This file pins those
semantics; what consumers *do* with a delta is proven in
``test_delta_differential.py``.
"""

import pytest

from repro.db import DatasetDelta, transactions_digest
from repro.db.delta import make_delta
from repro.db.transactions import TransactionDatabase
from repro.errors import DataError


@pytest.fixture()
def db():
    return TransactionDatabase([[1, 2, 3], [2, 3], [1, 4], [3, 4, 5]])


# ----------------------------------------------------------------------
# append
# ----------------------------------------------------------------------
def test_append_returns_new_versioned_database(db):
    new_db, delta = db.append([[5, 6], [1, 6]])
    assert len(db) == 4 and len(new_db) == 6
    assert db.version == 0 and new_db.version == 1
    assert new_db[4] == (5, 6) and new_db[5] == (1, 6)
    # The receiver's content is untouched.
    assert db.transactions == new_db.transactions[:4]


def test_append_normalizes_like_the_constructor(db):
    new_db, delta = db.append([[6, 5, 6]])
    assert new_db[4] == (5, 6)
    assert delta.added == ((5, 6),)
    rebuilt = TransactionDatabase(list(db.transactions) + [[6, 5, 6]])
    assert new_db.transactions == rebuilt.transactions


def test_append_delta_describes_the_step(db):
    new_db, delta = db.append([[5, 6]])
    assert delta.describes(
        transactions_digest(db.transactions),
        transactions_digest(new_db.transactions),
    )
    assert delta.base_size == 4 and delta.new_size == 5
    assert delta.added_tids == (4,)
    assert delta.removed == () and delta.removed_tids == ()
    assert delta.touched_items == frozenset({5, 6})
    assert delta.churn_fraction == pytest.approx(0.25)
    assert not delta.is_empty


def test_empty_append_is_an_empty_delta_with_same_digest(db):
    new_db, delta = db.append([])
    assert delta.is_empty
    assert delta.base_digest == delta.new_digest
    assert new_db.transactions == db.transactions
    assert new_db.version == 1  # still a new version of the same content


# ----------------------------------------------------------------------
# delete
# ----------------------------------------------------------------------
def test_delete_renumbers_survivors_densely(db):
    new_db, delta = db.delete([1, 3])
    assert new_db.transactions == ((1, 2, 3), (1, 4))
    assert delta.removed == ((2, 3), (3, 4, 5))
    assert delta.removed_tids == (1, 3)
    assert delta.added == ()
    assert delta.touched_items == frozenset({2, 3, 4, 5})
    assert new_db.version == db.version + 1


def test_delete_accepts_any_tid_order_and_dedups(db):
    forward, delta_f = db.delete([1, 3])
    backward, delta_b = db.delete([3, 1, 3])
    assert forward.transactions == backward.transactions
    assert delta_f.removed_tids == delta_b.removed_tids == (1, 3)


@pytest.mark.parametrize("bad", [[-1], [4], [0, 99]])
def test_delete_rejects_out_of_range_tids(db, bad):
    with pytest.raises(DataError):
        db.delete(bad)


def test_delete_everything_leaves_an_empty_database(db):
    new_db, delta = db.delete(range(len(db)))
    assert len(new_db) == 0
    assert delta.new_size == 0
    assert len(delta.removed) == 4


# ----------------------------------------------------------------------
# digests and chaining
# ----------------------------------------------------------------------
def test_digests_chain_across_churn_steps(db):
    db2, delta1 = db.append([[5, 6]])
    db3, delta2 = db2.delete([0])
    assert delta1.new_digest == delta2.base_digest
    assert delta2.new_digest == transactions_digest(db3.transactions)
    # Content digests are order-sensitive: a churned database never
    # collides with a differently-ordered equal multiset.
    assert delta1.base_digest != delta1.new_digest


def test_churned_content_equals_cold_construction(db):
    """A database reached via churn is indistinguishable (content and
    digest) from one built directly from the final transactions."""
    db2, _ = db.append([[2, 5], [1, 2, 4]])
    db3, _ = db2.delete([0, 4])
    direct = TransactionDatabase([list(t) for t in db3.transactions])
    assert db3.transactions == direct.transactions
    assert (transactions_digest(db3.transactions)
            == transactions_digest(direct.transactions))


def test_make_delta_derives_transactions_from_tids(db):
    new_db, _ = db.append([[5, 6]])
    delta = make_delta(
        db.transactions, new_db.transactions,
        base_digest="b", new_digest="n", added_tids=(4,),
    )
    assert delta.added == ((5, 6),)
    assert delta.touched_items == frozenset({5, 6})


def test_as_dict_is_flat_and_json_safe(db):
    _, delta = db.append([[5, 6]])
    doc = delta.as_dict()
    assert doc["added"] == 1 and doc["removed"] == 0
    assert doc["base_size"] == 4 and doc["new_size"] == 5
    assert isinstance(doc["churn_fraction"], float)
    assert isinstance(DatasetDelta(**{
        "base_digest": "b", "new_digest": "n",
        "base_size": 0, "new_size": 0,
    }).churn_fraction, float)


# ----------------------------------------------------------------------
# Immutability of served content (regression: the transactions property
# used to hand out the internal mutable list)
# ----------------------------------------------------------------------
def test_transactions_property_is_an_immutable_tuple(db):
    fetched = db.transactions
    assert isinstance(fetched, tuple)
    with pytest.raises(TypeError):
        fetched[0] = (9, 9)


def test_transactions_property_is_identity_stable(db):
    # Caching layers key prepared state by id(db.transactions); the
    # property must return the same stored object every call.
    assert db.transactions is db.transactions


def test_mutating_a_fetched_copy_cannot_change_answers(db):
    before = db.support((2, 3))
    fetched = list(db.transactions)
    fetched.clear()
    assert db.support((2, 3)) == before
    assert len(db) == 4
