"""The empirical checkers themselves (oracles must be trustworthy)."""

import pytest

from repro.constraints.parser import parse_constraint
from repro.constraints.twovar import TwoVarView
from repro.core.empirical import (
    anti_monotone_counterexample,
    def3_valid_sets,
    pairwise_anti_monotone_counterexample,
    reduction_soundness_tightness,
)
from repro.db.catalog import ItemCatalog
from repro.db.domain import Domain
from repro.errors import ExecutionError


def two_domains(s_values, t_values):
    s_catalog = ItemCatalog({"A": {i: v for i, v in enumerate(s_values)}})
    t_catalog = ItemCatalog({"B": {100 + i: v for i, v in enumerate(t_values)}})
    return {"S": Domain.items(s_catalog), "T": Domain.items(t_catalog)}


def test_def3_valid_sets_hand_checked():
    domains = two_domains([1, 5], [3, 4])
    view = TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)"))
    valid = def3_valid_sets(view, "S", domains, [(100,), (101,)])
    # max(S.A) must be <= 4 (the best frequent partner min): {0} (A=1)
    # qualifies, anything containing element 1 (A=5) does not.
    assert valid == {(0,)}


def test_def3_requires_frequent_partner():
    domains = two_domains([1], [9])
    view = TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)"))
    assert def3_valid_sets(view, "S", domains, []) == set()


def test_pairwise_checker_finds_known_counterexample():
    # min(S.A) <= min(T.B): S0={A=9} vs T0={B=5} violates; adding the A=1
    # element to S repairs it.
    domains = two_domains([9, 1], [5])
    view = TwoVarView.of(parse_constraint("min(S.A) <= min(T.B)"))
    witness = pairwise_anti_monotone_counterexample(view, domains)
    assert witness is not None
    (s0, t0), (s1, t1) = witness
    assert set(s0) <= set(s1) and set(t0) <= set(t1)


def test_pairwise_checker_confirms_anti_monotone():
    domains = two_domains([1, 9], [5, 7])
    view = TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)"))
    assert pairwise_anti_monotone_counterexample(view, domains) is None


def test_def4_checker_on_disjoint_is_clean():
    domains = two_domains([1, 2], [1, 3])
    view = TwoVarView.of(parse_constraint("S.A ∩ T.B = ∅"))
    frequent_t = {1: [(100,), (101,)], 2: [(100, 101)]}
    assert anti_monotone_counterexample(view, "S", domains, frequent_t) is None


def test_def4_checker_finds_min_counterexample():
    domains = two_domains([9, 1], [5])
    view = TwoVarView.of(parse_constraint("min(S.A) <= min(T.B)"))
    witness = anti_monotone_counterexample(view, "S", domains, {1: [(100,)]})
    assert witness is not None


def test_reduction_checker_reports_sound_and_tight():
    domains = two_domains([1, 5], [3, 4])
    view = TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)"))
    sound, tight, valid, passing = reduction_soundness_tightness(
        view, "S", domains, [(100,), (101,)]
    )
    assert sound and tight
    assert valid == passing == {(0,)}


def test_universe_limit_enforced():
    domains = two_domains(list(range(15)), [1])
    view = TwoVarView.of(parse_constraint("max(S.A) <= min(T.B)"))
    with pytest.raises(ExecutionError):
        def3_valid_sets(view, "S", domains, [(100,)])
